//! Online guideline adaptation for GNNavigator.
//!
//! The base pipeline is feed-forward: profile → fit the gray-box
//! estimator → explore → run one frozen guideline. This crate closes
//! the loop. A [`DriftDetector`] watches each epoch's observed
//! simulated time, cache hit rate, and peak memory against the
//! estimator's predictions through an EWMA band; on sustained drift
//! (or a recovery-ladder degradation) an [`AdaptiveRunner`] performs an
//! *incremental re-exploration* — it refreshes the estimator's
//! coefficient fits with the observed epochs as extra profile records
//! (warm start, no new sweep), re-runs the explorer seeded from the
//! current Pareto front under the remaining budget, and switches the
//! running guideline mid-training with an explicit [`SwitchPlan`]
//! (cache migration charged in simulated time, model weights
//! preserved).
//!
//! Everything is deterministic: the same seed, fault plan, and options
//! reproduce the same switches bit for bit, and an adaptive run that
//! never triggers is byte-identical to the static run.
#![warn(missing_docs)]

pub mod drift;
pub mod durable;
pub mod runner;

pub use drift::{DriftConfig, DriftDetector, DriftVerdict};
pub use durable::AdaptiveCheckpoint;
pub use runner::{AdaptOptions, AdaptiveReport, AdaptiveRunner, SwitchPlan};

use std::error::Error;
use std::fmt;

/// Errors from adaptive execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdaptError {
    /// The backend failed (fault budgets exhausted, invalid config).
    Runtime(gnnav_runtime::RuntimeError),
    /// The warm-start refit failed.
    Estimator(gnnav_estimator::EstimatorError),
    /// The incremental re-exploration failed.
    Explorer(gnnav_explorer::ExplorerError),
    /// Inconsistent adaptive options.
    InvalidOptions(String),
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::Runtime(e) => write!(f, "runtime error: {e}"),
            AdaptError::Estimator(e) => write!(f, "estimator refit error: {e}"),
            AdaptError::Explorer(e) => write!(f, "re-exploration error: {e}"),
            AdaptError::InvalidOptions(msg) => write!(f, "invalid adaptive options: {msg}"),
        }
    }
}

impl Error for AdaptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdaptError::Runtime(e) => Some(e),
            AdaptError::Estimator(e) => Some(e),
            AdaptError::Explorer(e) => Some(e),
            AdaptError::InvalidOptions(_) => None,
        }
    }
}

impl From<gnnav_runtime::RuntimeError> for AdaptError {
    fn from(e: gnnav_runtime::RuntimeError) -> Self {
        AdaptError::Runtime(e)
    }
}

impl From<gnnav_estimator::EstimatorError> for AdaptError {
    fn from(e: gnnav_estimator::EstimatorError) -> Self {
        AdaptError::Estimator(e)
    }
}

impl From<gnnav_explorer::ExplorerError> for AdaptError {
    fn from(e: gnnav_explorer::ExplorerError) -> Self {
        AdaptError::Explorer(e)
    }
}
