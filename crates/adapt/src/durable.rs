//! Crash-safe durability for the adaptive loop.
//!
//! [`AdaptiveRunner::run_durable`] mirrors the runtime backend's
//! `execute_durable`: it checkpoints the *entire* adaptive state (the
//! wrapped [`SessionCheckpoint`] plus the drift detector, the observed
//! warm-start records, the re-exploration seeds, and every switch
//! already taken) after every K completed epochs, honors injected
//! `ProcessKill` / `TornWrite` / `BitFlip` faults, and resumes from
//! the newest verifiable checkpoint. A killed adaptive run re-invoked
//! with the same arguments finishes with a report byte-identical to
//! the uninterrupted run — including the same switches at the same
//! epochs.

use crate::runner::AdaptState;
use crate::{AdaptError, AdaptiveReport, AdaptiveRunner, DriftDetector};
use gnnav_estimator::{Context, PerfEstimate, ProfileDb, ProfileRecord};
use gnnav_explorer::{AuditAction, AuditRecord, ExplorationResult, RuntimeConstraints};
use gnnav_faults::{FaultInjector, FaultKind};
use gnnav_graph::Dataset;
use gnnav_obs::names as metric;
use gnnav_runtime::checkpoint::{get_config, put_config, LINEAGE_WAL};
use gnnav_runtime::{
    DurabilityOptions, ExecutionOptions, ExecutionSession, RuntimeError, SessionCheckpoint,
    TrainingConfig,
};
use gnnav_store::{ByteReader, ByteWriter, CheckpointDir, StoreError, Wal};

/// Leading payload byte of an adaptive checkpoint — distinct from the
/// runtime session tag so neither layer resumes from the other's file.
pub const ADAPT_PAYLOAD_TAG: u8 = 2;

/// One observed epoch, stored as its config plus measurements; the
/// [`Context`] is rebuilt from the dataset and platform at resume.
#[derive(Debug, Clone)]
struct ObservedEpoch {
    config: TrainingConfig,
    epoch_time_s: f64,
    mem_bytes: f64,
    accuracy: f64,
    hit_rate: f64,
    avg_batch_nodes: f64,
    avg_batch_edges: f64,
    phase_s: [f64; 4],
    n_iter: f64,
}

/// Everything the adaptive loop needs to continue after a crash.
///
/// Wraps the runtime's [`SessionCheckpoint`] (model weights, optimizer
/// and RNG state, cache contents, simulated clock) and adds the
/// adaptive layer's own state: the drift detector's EWMA band, the
/// observed epochs that feed the warm-start refit, the re-exploration
/// seed set, the current prediction baseline, and the accumulated
/// switches/audit/drift history that the final [`AdaptiveReport`]
/// reproduces verbatim.
#[derive(Debug, Clone)]
pub struct AdaptiveCheckpoint {
    session: SessionCheckpoint,
    predicted: PerfEstimate,
    seeds: Vec<TrainingConfig>,
    detector: (Option<f64>, u32, u64),
    observed: Vec<ObservedEpoch>,
    switches: Vec<crate::SwitchPlan>,
    drift_scores: Vec<f64>,
    audit: Vec<AuditRecord>,
    reexplorations: u32,
    seen_degradations: usize,
}

fn put_estimate(w: &mut ByteWriter, e: &PerfEstimate) {
    w.put_f64(e.time_s);
    w.put_f64(e.mem_bytes);
    w.put_f64(e.accuracy);
    w.put_f64(e.batch_nodes);
    w.put_f64(e.hit_rate);
}

fn get_estimate(r: &mut ByteReader) -> Result<PerfEstimate, StoreError> {
    Ok(PerfEstimate {
        time_s: r.get_f64()?,
        mem_bytes: r.get_f64()?,
        accuracy: r.get_f64()?,
        batch_nodes: r.get_f64()?,
        hit_rate: r.get_f64()?,
    })
}

fn action_tag(a: AuditAction) -> u8 {
    match a {
        AuditAction::Accepted => 0,
        AuditAction::Rejected => 1,
        AuditAction::PrunedSubtree => 2,
        AuditAction::Selected => 3,
        AuditAction::Fallback => 4,
        AuditAction::Switched => 5,
    }
}

fn action_from_tag(t: u8) -> Result<AuditAction, StoreError> {
    Ok(match t {
        0 => AuditAction::Accepted,
        1 => AuditAction::Rejected,
        2 => AuditAction::PrunedSubtree,
        3 => AuditAction::Selected,
        4 => AuditAction::Fallback,
        5 => AuditAction::Switched,
        t => return Err(StoreError::decode(format!("unknown audit-action tag {t}"))),
    })
}

impl AdaptiveCheckpoint {
    /// Captures the adaptive loop's full state.
    pub(crate) fn capture(state: &mut AdaptState<'_>) -> AdaptiveCheckpoint {
        AdaptiveCheckpoint {
            session: state.session.checkpoint(),
            predicted: state.predicted,
            seeds: state.seeds.clone(),
            detector: state.detector.state(),
            observed: state
                .observed
                .iter()
                .map(|r| ObservedEpoch {
                    config: r.context.config.clone(),
                    epoch_time_s: r.epoch_time_s,
                    mem_bytes: r.mem_bytes,
                    accuracy: r.accuracy,
                    hit_rate: r.hit_rate,
                    avg_batch_nodes: r.avg_batch_nodes,
                    avg_batch_edges: r.avg_batch_edges,
                    phase_s: r.phase_s,
                    n_iter: r.n_iter,
                })
                .collect(),
            switches: state.switches.clone(),
            drift_scores: state.drift_scores.clone(),
            audit: state.audit.clone(),
            reexplorations: state.reexplorations,
            seen_degradations: state.seen_degradations,
        }
    }

    /// Serializes to the versioned binary payload (tag
    /// [`ADAPT_PAYLOAD_TAG`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(ADAPT_PAYLOAD_TAG);
        let session = self.session.encode();
        w.put_usize(session.len());
        w.put_raw(&session);
        put_estimate(&mut w, &self.predicted);
        w.put_usize(self.seeds.len());
        for c in &self.seeds {
            put_config(&mut w, c);
        }
        let (ewma, streak, observed_epochs) = self.detector;
        match ewma {
            Some(v) => {
                w.put_bool(true);
                w.put_f64(v);
            }
            None => w.put_bool(false),
        }
        w.put_u32(streak);
        w.put_u64(observed_epochs);
        w.put_usize(self.observed.len());
        for o in &self.observed {
            put_config(&mut w, &o.config);
            w.put_f64(o.epoch_time_s);
            w.put_f64(o.mem_bytes);
            w.put_f64(o.accuracy);
            w.put_f64(o.hit_rate);
            w.put_f64(o.avg_batch_nodes);
            w.put_f64(o.avg_batch_edges);
            for p in o.phase_s {
                w.put_f64(p);
            }
            w.put_f64(o.n_iter);
        }
        w.put_usize(self.switches.len());
        for s in &self.switches {
            w.put_usize(s.epoch);
            put_config(&mut w, &s.from);
            put_config(&mut w, &s.to);
            w.put_f64(s.migration_sim_s);
            put_estimate(&mut w, &s.predicted);
            w.put_f64(s.drift_ewma);
            w.put_f64(s.reexplore_wall_ms);
        }
        w.put_usize(self.drift_scores.len());
        for &d in &self.drift_scores {
            w.put_f64(d);
        }
        w.put_usize(self.audit.len());
        for a in &self.audit {
            w.put_str(&a.config);
            match &a.estimate {
                Some(e) => {
                    w.put_bool(true);
                    put_estimate(&mut w, e);
                }
                None => w.put_bool(false),
            }
            w.put_u8(action_tag(a.action));
            w.put_str(&a.reason);
            w.put_bool(a.seed_candidate);
        }
        w.put_u32(self.reexplorations);
        w.put_usize(self.seen_degradations);
        w.finish()
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`StoreError::Decode`] on a foreign tag, truncation, trailing
    /// bytes, or any unknown enum tag.
    pub fn decode(payload: &[u8]) -> Result<AdaptiveCheckpoint, StoreError> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        if tag != ADAPT_PAYLOAD_TAG {
            return Err(StoreError::decode(format!(
                "payload tag {tag} is not an adaptive checkpoint (want {ADAPT_PAYLOAD_TAG})"
            )));
        }
        let session_len = r.get_usize()?;
        let session = SessionCheckpoint::decode(r.get_raw(session_len)?)?;
        let predicted = get_estimate(&mut r)?;
        let n = r.get_usize()?;
        let mut seeds = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            seeds.push(get_config(&mut r)?);
        }
        let ewma = if r.get_bool()? { Some(r.get_f64()?) } else { None };
        let streak = r.get_u32()?;
        let observed_epochs = r.get_u64()?;
        let n = r.get_usize()?;
        let mut observed = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            observed.push(ObservedEpoch {
                config: get_config(&mut r)?,
                epoch_time_s: r.get_f64()?,
                mem_bytes: r.get_f64()?,
                accuracy: r.get_f64()?,
                hit_rate: r.get_f64()?,
                avg_batch_nodes: r.get_f64()?,
                avg_batch_edges: r.get_f64()?,
                phase_s: [r.get_f64()?, r.get_f64()?, r.get_f64()?, r.get_f64()?],
                n_iter: r.get_f64()?,
            });
        }
        let n = r.get_usize()?;
        let mut switches = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            switches.push(crate::SwitchPlan {
                epoch: r.get_usize()?,
                from: get_config(&mut r)?,
                to: get_config(&mut r)?,
                migration_sim_s: r.get_f64()?,
                predicted: get_estimate(&mut r)?,
                drift_ewma: r.get_f64()?,
                reexplore_wall_ms: r.get_f64()?,
            });
        }
        let n = r.get_usize()?;
        let mut drift_scores = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            drift_scores.push(r.get_f64()?);
        }
        let n = r.get_usize()?;
        let mut audit = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            audit.push(AuditRecord {
                config: r.get_str()?,
                estimate: if r.get_bool()? { Some(get_estimate(&mut r)?) } else { None },
                action: action_from_tag(r.get_u8()?)?,
                reason: r.get_str()?,
                seed_candidate: r.get_bool()?,
            });
        }
        let reexplorations = r.get_u32()?;
        let seen_degradations = r.get_usize()?;
        if !r.is_exhausted() {
            return Err(StoreError::decode(format!(
                "{} trailing bytes after adaptive checkpoint",
                r.remaining()
            )));
        }
        Ok(AdaptiveCheckpoint {
            session,
            predicted,
            seeds,
            detector: (ewma, streak, observed_epochs),
            observed,
            switches,
            drift_scores,
            audit,
            reexplorations,
            seen_degradations,
        })
    }
}

fn store_err(e: StoreError) -> AdaptError {
    AdaptError::Runtime(RuntimeError::from(e))
}

impl AdaptiveRunner {
    /// Rebuilds the adaptive loop from a checkpoint taken on this
    /// platform.
    fn restore_state<'d>(
        &self,
        dataset: &'d Dataset,
        exploration: &ExplorationResult,
        exec_opts: &ExecutionOptions,
        ckpt: AdaptiveCheckpoint,
    ) -> Result<AdaptState<'d>, AdaptError> {
        let metrics = gnnav_obs::global();
        if metrics.is_enabled() {
            metrics.add(metric::ADAPT_SWITCHES, 0);
        }
        let session =
            ExecutionSession::resume(self.platform.clone(), dataset, exec_opts, &ckpt.session)?;
        let mut detector = DriftDetector::new(self.opts.drift.clone());
        let (ewma, streak, observed_epochs) = ckpt.detector;
        detector.restore(ewma, streak, observed_epochs);
        let observed = ckpt
            .observed
            .into_iter()
            .map(|o| ProfileRecord {
                dataset_id: dataset.id(),
                context: Context::new(dataset, &self.platform, o.config),
                epoch_time_s: o.epoch_time_s,
                mem_bytes: o.mem_bytes,
                accuracy: o.accuracy,
                hit_rate: o.hit_rate,
                avg_batch_nodes: o.avg_batch_nodes,
                avg_batch_edges: o.avg_batch_edges,
                phase_s: o.phase_s,
                n_iter: o.n_iter,
            })
            .collect();
        Ok(AdaptState {
            session,
            priority: exploration.guideline.priority,
            predicted: ckpt.predicted,
            seeds: ckpt.seeds,
            detector,
            observed,
            switches: ckpt.switches,
            drift_scores: ckpt.drift_scores,
            audit: ckpt.audit,
            reexplorations: ckpt.reexplorations,
            seen_degradations: ckpt.seen_degradations,
        })
    }

    /// Runs the adaptive loop with crash-safe durability: resume from
    /// the newest verifiable checkpoint in `dur.dir` (when
    /// `dur.resume`), checkpoint every `dur.every` completed epochs,
    /// and honor the crash/corruption fault kinds in
    /// `exec_opts.fault_plan` exactly like the runtime backend's
    /// durable driver:
    ///
    /// - `ProcessKill` at epoch-boundary site `e` aborts with
    ///   [`RuntimeError::Killed`] before epoch `e` runs (the attempt
    ///   number is the lineage's persisted kill count, so
    ///   `duration_attempts` bounds kills per checkpoint directory).
    /// - `TornWrite` / `BitFlip` at site `e` corrupt the checkpoint
    ///   written after epoch `e`, exercising the resume fallback.
    ///
    /// A run killed at any boundary and re-invoked with the same
    /// arguments produces an [`AdaptiveReport`] whose report,
    /// switches, and drift history match the uninterrupted run
    /// (only the advisory `reexplore_wall_ms` wall-clock field may
    /// differ).
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) returns, plus
    /// [`RuntimeError::Killed`] and [`RuntimeError::Store`] wrapped in
    /// [`AdaptError::Runtime`].
    pub fn run_durable(
        &self,
        dataset: &Dataset,
        exploration: &ExplorationResult,
        profile_db: &ProfileDb,
        exec_opts: &ExecutionOptions,
        constraints: &RuntimeConstraints,
        dur: &DurabilityOptions,
    ) -> Result<AdaptiveReport, AdaptError> {
        self.opts.validate()?;
        let ckpts = CheckpointDir::create(&dur.dir, "adapt").map_err(store_err)?;
        let mut lineage = Wal::open(dur.dir.join(LINEAGE_WAL)).map_err(store_err)?;
        let kill_attempt = lineage.len() as u32;
        let every = dur.every.max(1);

        let mut state = None;
        if dur.resume {
            if let Some((_, payload)) = ckpts.load_latest().map_err(store_err)? {
                match AdaptiveCheckpoint::decode(&payload) {
                    Ok(ckpt) => {
                        state = Some(self.restore_state(dataset, exploration, exec_opts, ckpt)?);
                    }
                    Err(_) => {
                        // CRC-valid but undecodable (foreign tag or
                        // incompatible shape): reject like any other
                        // damaged checkpoint and cold-start.
                        let metrics = gnnav_obs::global();
                        if metrics.is_enabled() {
                            metrics.add(metric::STORE_CHECKPOINT_REJECTED, 1);
                        }
                    }
                }
            }
        }
        let mut state = match state {
            Some(s) => s,
            None => self.cold_state(dataset, exploration, exec_opts)?,
        };

        let kill_injector =
            exec_opts.fault_plan.as_ref().filter(|p| !p.is_empty()).map(FaultInjector::new);
        while state.session.epochs_run() < exec_opts.epochs {
            let epoch = state.session.epochs_run();
            if let Some(inj) = &kill_injector {
                if inj.inject(FaultKind::ProcessKill, epoch as u64, kill_attempt, None).is_some() {
                    // Record the kill in the lineage log so the next
                    // life sees attempt+1, then "die".
                    lineage.append(&(epoch as u64).to_le_bytes()).map_err(store_err)?;
                    let metrics = gnnav_obs::global();
                    let journal = metrics.journal();
                    if journal.is_enabled() {
                        journal.instant(
                            metric::EVENT_KILL,
                            metric::TRACK_STORE,
                            None,
                            vec![
                                ("epoch".into(), epoch.into()),
                                ("attempt".into(), (kill_attempt as u64).into()),
                            ],
                        );
                    }
                    return Err(AdaptError::Runtime(RuntimeError::Killed { epoch }));
                }
            }
            self.step_epoch(&mut state, dataset, profile_db, constraints, exec_opts.epochs)?;
            let done = state.session.epochs_run();
            if done % every == 0 && done < exec_opts.epochs {
                let payload = AdaptiveCheckpoint::capture(&mut state).encode();
                ckpts.write(done, &payload).map_err(store_err)?;
                let metrics = gnnav_obs::global();
                if metrics.is_enabled() {
                    metrics.gauge_set(metric::STORE_CHECKPOINT_BYTES, payload.len() as f64);
                }
                if let Some(inj) = &kill_injector {
                    let site = (done - 1) as u64;
                    let path = ckpts.path_for(done);
                    if let Some(m) = inj.inject(FaultKind::TornWrite, site, 0, None) {
                        gnnav_store::corrupt::torn_write(&path, m.max(1.0) as u64)
                            .map_err(store_err)?;
                    }
                    if let Some(m) = inj.inject(FaultKind::BitFlip, site, 0, None) {
                        gnnav_store::corrupt::bit_flip(&path, m.max(0.0) as u64, 3)
                            .map_err(store_err)?;
                    }
                }
            }
        }
        state.into_report()
    }
}
