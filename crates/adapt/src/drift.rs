//! EWMA drift detection over observed-vs-predicted epoch metrics.

/// Tuning knobs of the [`DriftDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// EWMA level above which an epoch counts as drifting (strict
    /// `>`: a series sitting exactly at the threshold never fires).
    pub threshold: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
    /// Consecutive drifting epochs required before the detector
    /// triggers a re-exploration.
    pub sustain: u32,
    /// Initial epochs ignored entirely (cold caches make the first
    /// epoch systematically unrepresentative).
    pub warmup: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { threshold: 0.75, alpha: 0.4, sustain: 2, warmup: 0 }
    }
}

/// What [`DriftDetector::observe`] concluded about one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftVerdict {
    /// Raw per-epoch score: the largest relative deviation among the
    /// finite observed/predicted pairs (0 when every pair was
    /// unusable).
    pub score: f64,
    /// The smoothed (EWMA) score.
    pub ewma: f64,
    /// Whether the EWMA exceeds the threshold this epoch.
    pub drifting: bool,
    /// Whether drift has been sustained long enough to act on.
    pub triggered: bool,
}

/// One epoch's predicted or observed metric triple, in the units the
/// estimator emits: per-epoch simulated seconds, hit rate in `[0, 1]`,
/// peak memory in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSignal {
    /// Per-epoch simulated time in seconds.
    pub time_s: f64,
    /// Cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Peak device memory in bytes.
    pub mem_bytes: f64,
}

/// Compares observed per-epoch metrics against estimator predictions
/// with an EWMA band and reports when the deviation is sustained.
///
/// The score is scale-free: time and memory contribute their relative
/// deviation `|obs − pred| / pred`, hit rate its absolute deviation
/// (it is already a ratio). Non-finite or non-positive components are
/// skipped rather than poisoning the average, so NaN inputs can never
/// trigger (or suppress) a re-exploration on their own.
///
/// # Example
///
/// ```
/// use gnnav_adapt::{DriftConfig, DriftDetector};
/// use gnnav_adapt::drift::EpochSignal;
///
/// let mut det = DriftDetector::new(DriftConfig {
///     threshold: 0.5, alpha: 1.0, sustain: 2, warmup: 0,
/// });
/// let pred = EpochSignal { time_s: 1.0, hit_rate: 0.5, mem_bytes: 1e9 };
/// let ok = EpochSignal { time_s: 1.1, hit_rate: 0.5, mem_bytes: 1e9 };
/// let slow = EpochSignal { time_s: 3.0, hit_rate: 0.5, mem_bytes: 1e9 };
///
/// assert!(!det.observe(&pred, &ok).drifting);      // within band
/// assert!(!det.observe(&pred, &slow).triggered);   // drifting, not sustained
/// assert!(det.observe(&pred, &slow).triggered);    // second in a row: act
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    ewma: Option<f64>,
    streak: u32,
    observed: u64,
}

impl DriftDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector { config, ewma: None, streak: 0, observed: 0 }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Epochs observed since creation or the last [`reset`](Self::reset).
    pub fn epochs_observed(&self) -> u64 {
        self.observed
    }

    /// The detector's mutable state `(ewma, streak, observed)`, for
    /// checkpointing.
    pub fn state(&self) -> (Option<f64>, u32, u64) {
        (self.ewma, self.streak, self.observed)
    }

    /// Restores state captured by [`DriftDetector::state`].
    pub fn restore(&mut self, ewma: Option<f64>, streak: u32, observed: u64) {
        self.ewma = ewma;
        self.streak = streak;
        self.observed = observed;
    }

    /// Clears the EWMA, streak, and warmup state — called after a
    /// guideline switch, when the prediction baseline changes.
    pub fn reset(&mut self) {
        self.ewma = None;
        self.streak = 0;
        self.observed = 0;
    }

    /// Scores one epoch. Returns the verdict; `triggered` stays false
    /// during warmup and until `sustain` consecutive drifting epochs
    /// accumulate.
    pub fn observe(&mut self, predicted: &EpochSignal, observed: &EpochSignal) -> DriftVerdict {
        let score = epoch_score(predicted, observed);
        self.observed += 1;
        if self.observed <= self.config.warmup as u64 {
            return DriftVerdict { score, ewma: 0.0, drifting: false, triggered: false };
        }
        let alpha = self.config.alpha.clamp(0.0, 1.0);
        let ewma = match self.ewma {
            None => score,
            Some(prev) => alpha * score + (1.0 - alpha) * prev,
        };
        self.ewma = Some(ewma);
        let drifting = ewma > self.config.threshold;
        self.streak = if drifting { self.streak + 1 } else { 0 };
        DriftVerdict { score, ewma, drifting, triggered: self.streak >= self.config.sustain.max(1) }
    }
}

/// Largest relative deviation among the usable components; 0 when no
/// component is usable.
fn epoch_score(predicted: &EpochSignal, observed: &EpochSignal) -> f64 {
    let mut score = 0.0f64;
    let rel = |pred: f64, obs: f64| -> Option<f64> {
        if pred.is_finite() && obs.is_finite() && pred > 0.0 && obs >= 0.0 {
            Some((obs - pred).abs() / pred)
        } else {
            None
        }
    };
    if let Some(d) = rel(predicted.time_s, observed.time_s) {
        score = score.max(d);
    }
    if predicted.hit_rate.is_finite() && observed.hit_rate.is_finite() {
        score = score.max((observed.hit_rate - predicted.hit_rate).abs());
    }
    if let Some(d) = rel(predicted.mem_bytes, observed.mem_bytes) {
        score = score.max(d);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(time_s: f64, hit_rate: f64, mem_bytes: f64) -> EpochSignal {
        EpochSignal { time_s, hit_rate, mem_bytes }
    }

    fn fast_config() -> DriftConfig {
        DriftConfig { threshold: 0.5, alpha: 1.0, sustain: 1, warmup: 0 }
    }

    #[test]
    fn zero_epochs_never_triggered() {
        let det = DriftDetector::new(DriftConfig::default());
        assert_eq!(det.epochs_observed(), 0);
        // A detector that never observed anything has no verdict to
        // act on; the runner only consults verdicts from observe().
    }

    #[test]
    fn matching_series_stays_quiet() {
        let mut det = DriftDetector::new(fast_config());
        let p = sig(1.0, 0.5, 1e9);
        for _ in 0..10 {
            let v = det.observe(&p, &p);
            assert_eq!(v.score, 0.0);
            assert!(!v.drifting && !v.triggered);
        }
    }

    #[test]
    fn constant_series_exactly_at_threshold_is_not_drift() {
        // threshold comparison is strict: a deviation pinned exactly
        // at the boundary must never fire.
        let mut det = DriftDetector::new(fast_config());
        let pred = sig(1.0, 0.0, 1e9);
        let obs = sig(1.5, 0.0, 1e9); // relative deviation exactly 0.5
        for _ in 0..20 {
            let v = det.observe(&pred, &obs);
            assert_eq!(v.ewma, 0.5);
            assert!(!v.drifting, "boundary value fired");
            assert!(!v.triggered);
        }
    }

    #[test]
    fn just_above_threshold_fires() {
        let mut det = DriftDetector::new(fast_config());
        let v = det.observe(&sig(1.0, 0.0, 1e9), &sig(1.5001, 0.0, 1e9));
        assert!(v.drifting && v.triggered);
    }

    #[test]
    fn sustain_requires_consecutive_epochs() {
        let mut det = DriftDetector::new(DriftConfig { sustain: 3, ..fast_config() });
        let pred = sig(1.0, 0.0, 1e9);
        let bad = sig(9.0, 0.0, 1e9);
        assert!(!det.observe(&pred, &bad).triggered);
        assert!(!det.observe(&pred, &bad).triggered);
        // An in-band epoch breaks the streak.
        assert!(!det.observe(&pred, &pred).triggered);
        assert!(!det.observe(&pred, &bad).triggered);
        assert!(!det.observe(&pred, &bad).triggered);
        assert!(det.observe(&pred, &bad).triggered);
    }

    #[test]
    fn nan_components_are_skipped_not_propagated() {
        let mut det = DriftDetector::new(fast_config());
        // NaN observed time, matching hit/mem: unusable component is
        // dropped, score is finite zero.
        let v = det.observe(&sig(1.0, 0.5, 1e9), &sig(f64::NAN, 0.5, 1e9));
        assert_eq!(v.score, 0.0);
        assert!(v.ewma.is_finite());
        assert!(!v.triggered);
        // All-NaN pair: still finite, still quiet.
        let nan = sig(f64::NAN, f64::NAN, f64::NAN);
        let v = det.observe(&nan, &nan);
        assert_eq!(v.score, 0.0);
        assert!(!v.triggered);
        // Zero/negative predictions are as unusable as NaN.
        let v = det.observe(&sig(0.0, f64::INFINITY, -5.0), &sig(3.0, 0.2, 1e9));
        assert_eq!(v.score, 0.0);
    }

    #[test]
    fn warmup_epochs_are_ignored() {
        let mut det = DriftDetector::new(DriftConfig { warmup: 2, ..fast_config() });
        let pred = sig(1.0, 0.0, 1e9);
        let bad = sig(9.0, 0.0, 1e9);
        assert!(!det.observe(&pred, &bad).drifting, "warmup epoch 1");
        assert!(!det.observe(&pred, &bad).drifting, "warmup epoch 2");
        assert!(det.observe(&pred, &bad).triggered, "post-warmup");
    }

    #[test]
    fn reset_clears_streak_and_warmup() {
        let mut det = DriftDetector::new(DriftConfig { sustain: 2, ..fast_config() });
        let pred = sig(1.0, 0.0, 1e9);
        let bad = sig(9.0, 0.0, 1e9);
        det.observe(&pred, &bad);
        det.reset();
        assert_eq!(det.epochs_observed(), 0);
        assert!(!det.observe(&pred, &bad).triggered, "streak must restart");
        assert!(det.observe(&pred, &bad).triggered);
    }

    #[test]
    fn ewma_smooths_single_spikes() {
        let mut det =
            DriftDetector::new(DriftConfig { threshold: 0.5, alpha: 0.2, sustain: 1, warmup: 0 });
        let pred = sig(1.0, 0.0, 1e9);
        det.observe(&pred, &pred);
        // One 4x spike against a calm history: EWMA 0.2*3.0 = 0.6...
        // wait, prior ewma is 0, so 0.2*3.0 = 0.6 > 0.5. Use a milder
        // spike that smoothing absorbs.
        let v = det.observe(&pred, &sig(3.0, 0.0, 1e9));
        assert_eq!(v.score, 2.0);
        assert!(v.ewma < v.score, "EWMA must damp the spike");
    }
}
