//! The adaptive execution loop: run, watch, re-explore, switch.

use crate::drift::{DriftConfig, DriftDetector, EpochSignal};
use crate::AdaptError;
use gnnav_estimator::{Context, GrayBoxEstimator, PerfEstimate, ProfileDb, ProfileRecord};
use gnnav_explorer::{
    decide, AuditAction, AuditRecord, EvaluatedCandidate, ExplorationResult, Explorer, Priority,
    RuntimeConstraints,
};
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_obs::names as metric;
use gnnav_runtime::{
    EpochStats, ExecutionOptions, ExecutionReport, ExecutionSession, TrainingConfig,
};
use std::time::Instant;

/// Knobs of the adaptive loop (drift detection plus re-exploration).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptOptions {
    /// Drift-detector configuration.
    pub drift: DriftConfig,
    /// Hard cap on mid-training guideline switches.
    pub max_switches: u32,
    /// How strongly each observed epoch pulls the warm-start refit:
    /// observed records are replicated until they carry roughly
    /// `observed_weight : 1` mass against the original profile sweep.
    pub observed_weight: usize,
    /// Leaf-evaluation budget of each incremental re-exploration
    /// (small: the search is seeded from the previous Pareto front).
    pub explore_budget: usize,
    /// Traversal seed of the re-exploration DFS.
    pub explore_seed: u64,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            drift: DriftConfig::default(),
            max_switches: 3,
            observed_weight: 4,
            explore_budget: 120,
            explore_seed: 0xDF5,
        }
    }
}

impl AdaptOptions {
    pub(crate) fn validate(&self) -> Result<(), AdaptError> {
        let d = &self.drift;
        if !(d.threshold.is_finite() && d.threshold > 0.0) {
            return Err(AdaptError::InvalidOptions(format!(
                "drift threshold {} must be finite and > 0",
                d.threshold
            )));
        }
        if !(d.alpha.is_finite() && d.alpha > 0.0 && d.alpha <= 1.0) {
            return Err(AdaptError::InvalidOptions(format!(
                "drift alpha {} must be in (0, 1]",
                d.alpha
            )));
        }
        if self.observed_weight == 0 {
            return Err(AdaptError::InvalidOptions("observed_weight must be >= 1".into()));
        }
        if self.explore_budget == 0 {
            return Err(AdaptError::InvalidOptions("explore_budget must be >= 1".into()));
        }
        Ok(())
    }
}

/// One executed mid-training guideline switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchPlan {
    /// Zero-based epoch after which the switch took effect.
    pub epoch: usize,
    /// The configuration being abandoned.
    pub from: TrainingConfig,
    /// The configuration adopted.
    pub to: TrainingConfig,
    /// Cache-migration cost charged to simulated time, in seconds.
    pub migration_sim_s: f64,
    /// The refreshed estimator's prediction for the new guideline.
    pub predicted: PerfEstimate,
    /// The drift EWMA that triggered the re-exploration.
    pub drift_ewma: f64,
    /// Wall-clock cost of the re-exploration (refit + search), in
    /// milliseconds. Advisory only — never charged to simulated time.
    pub reexplore_wall_ms: f64,
}

/// What one adaptive run produced.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The final execution report (perf averaged over all epochs,
    /// regardless of which guideline ran them).
    pub report: ExecutionReport,
    /// Every switch performed, in order.
    pub switches: Vec<SwitchPlan>,
    /// Per-epoch smoothed drift scores (EWMA), one per epoch run.
    pub drift_scores: Vec<f64>,
    /// Re-explorations performed (each may or may not have switched).
    pub reexplorations: u32,
    /// Audit records appended by the adaptive layer (one
    /// [`AuditAction::Switched`] entry per switch).
    pub audit: Vec<AuditRecord>,
}

/// Drives training epoch by epoch, watching for estimator drift and
/// re-exploring incrementally when it is sustained.
///
/// The loop is deterministic: identical dataset, guideline, options,
/// and fault plan reproduce the same switches bit for bit, and a run
/// that never triggers executes exactly the static code path (the
/// underlying [`ExecutionSession`] is the same one
/// `RuntimeBackend::execute` uses).
///
/// # Example
///
/// ```no_run
/// use gnnav_adapt::{AdaptOptions, AdaptiveRunner};
/// use gnnav_estimator::{GrayBoxEstimator, Profiler};
/// use gnnav_explorer::{Explorer, Priority, RuntimeConstraints};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
/// use gnnav_nn::ModelKind;
/// use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05)?;
/// let platform = Platform::default_rtx4090();
/// let profiler = Profiler::new(
///     RuntimeBackend::new(platform.clone()),
///     ExecutionOptions::timing_only(),
/// );
/// let configs = DesignSpace::reduced().sample(12, ModelKind::Sage, 5);
/// let db = profiler.profile(&dataset, &configs)?;
/// let mut estimator = GrayBoxEstimator::new();
/// estimator.fit(&db)?;
/// let exploration = Explorer::new(&estimator, 200).explore(
///     &dataset, &platform, ModelKind::Sage,
///     Priority::Balance, &RuntimeConstraints::none())?;
///
/// let runner = AdaptiveRunner::new(platform, AdaptOptions::default());
/// let outcome = runner.run(&dataset, &exploration, &db,
///                          &ExecutionOptions::default(),
///                          &RuntimeConstraints::none())?;
/// println!("switches: {}", outcome.switches.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveRunner {
    pub(crate) platform: Platform,
    pub(crate) opts: AdaptOptions,
}

impl AdaptiveRunner {
    /// Creates a runner bound to one simulated platform.
    pub fn new(platform: Platform, opts: AdaptOptions) -> Self {
        AdaptiveRunner { platform, opts }
    }

    /// The adaptive options in force.
    pub fn options(&self) -> &AdaptOptions {
        &self.opts
    }

    /// Runs `exec_opts.epochs` epochs of the explored guideline,
    /// adapting when drift is sustained.
    ///
    /// `exploration` supplies the initial guideline, its prediction
    /// (the drift baseline), and the Pareto front that seeds each
    /// re-exploration; `profile_db` is the sweep the estimator was
    /// fitted on, extended in place (on a copy) with observed epochs at
    /// refit time; `constraints` are re-evaluated against the
    /// *remaining* time budget before each re-exploration.
    ///
    /// # Errors
    ///
    /// [`AdaptError::Runtime`] when an epoch or switch fails,
    /// [`AdaptError::Estimator`] / [`AdaptError::Explorer`] when a
    /// refit or re-exploration fails, [`AdaptError::InvalidOptions`]
    /// for inconsistent adaptive options.
    pub fn run(
        &self,
        dataset: &Dataset,
        exploration: &ExplorationResult,
        profile_db: &ProfileDb,
        exec_opts: &ExecutionOptions,
        constraints: &RuntimeConstraints,
    ) -> Result<AdaptiveReport, AdaptError> {
        self.opts.validate()?;
        let mut state = self.cold_state(dataset, exploration, exec_opts)?;
        while state.session.epochs_run() < exec_opts.epochs {
            self.step_epoch(&mut state, dataset, profile_db, constraints, exec_opts.epochs)?;
        }
        state.into_report()
    }

    /// Opens a fresh adaptive loop on the explored guideline.
    pub(crate) fn cold_state<'d>(
        &self,
        dataset: &'d Dataset,
        exploration: &ExplorationResult,
        exec_opts: &ExecutionOptions,
    ) -> Result<AdaptState<'d>, AdaptError> {
        let metrics = gnnav_obs::global();
        if metrics.is_enabled() {
            // Register the switch counter at zero so clean adaptive
            // runs still expose the series.
            metrics.add(metric::ADAPT_SWITCHES, 0);
        }
        let session = ExecutionSession::new(
            self.platform.clone(),
            dataset,
            &exploration.guideline.config,
            exec_opts,
        )?;
        let seeds = front_configs(exploration, session.config());
        Ok(AdaptState {
            session,
            priority: exploration.guideline.priority,
            predicted: exploration.guideline.estimate,
            seeds,
            detector: DriftDetector::new(self.opts.drift.clone()),
            observed: Vec::with_capacity(exec_opts.epochs),
            switches: Vec::new(),
            drift_scores: Vec::with_capacity(exec_opts.epochs),
            audit: Vec::new(),
            reexplorations: 0,
            seen_degradations: 0,
        })
    }

    /// Runs one epoch of the adaptive loop: execute, score drift,
    /// re-explore and possibly switch. The epoch index is taken from
    /// the session itself so a resumed loop continues where the
    /// checkpoint left off.
    pub(crate) fn step_epoch(
        &self,
        state: &mut AdaptState<'_>,
        dataset: &Dataset,
        profile_db: &ProfileDb,
        constraints: &RuntimeConstraints,
        total_epochs: usize,
    ) -> Result<(), AdaptError> {
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let epoch = state.session.epochs_run();
        let stats = state.session.run_epoch()?;
        state.observed.push(observed_record(
            dataset,
            &self.platform,
            state.session.config(),
            &stats,
        ));

        let verdict = state.detector.observe(
            &EpochSignal {
                time_s: state.predicted.time_s,
                hit_rate: state.predicted.hit_rate,
                mem_bytes: state.predicted.mem_bytes,
            },
            &EpochSignal {
                time_s: stats.sim_s,
                hit_rate: stats.hit_rate,
                mem_bytes: stats.peak_mem_bytes as f64,
            },
        );
        state.drift_scores.push(verdict.ewma);
        if metrics.is_enabled() {
            metrics.gauge_set(metric::ADAPT_DRIFT_SCORE, verdict.ewma);
        }
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_DRIFT,
                metric::TRACK_ADAPT,
                Some(state.session.sim_time_total().as_secs() * 1e6),
                vec![
                    ("epoch".into(), (epoch as u64).into()),
                    ("score".into(), verdict.score.into()),
                    ("ewma".into(), verdict.ewma.into()),
                    ("triggered".into(), verdict.triggered.into()),
                ],
            );
        }

        // A recovery-ladder degradation means the config we are
        // executing is no longer the config we planned — re-explore
        // even if the drift band has not caught up yet.
        let degradations = state.session.recovery().degradations.len();
        let degraded = degradations > state.seen_degradations;
        state.seen_degradations = degradations;

        let remaining = total_epochs - (epoch + 1);
        if (verdict.triggered || degraded)
            && remaining > 0
            && (state.switches.len() as u32) < self.opts.max_switches
        {
            state.reexplorations += 1;
            let switched = self.reexplore(
                dataset,
                &mut state.session,
                profile_db,
                &state.observed,
                &mut state.seeds,
                state.priority,
                constraints,
                total_epochs,
                remaining,
                epoch,
                verdict.ewma,
                &mut state.audit,
            )?;
            if let Some(plan) = switched {
                state.predicted = plan.predicted;
                state.switches.push(plan);
            }
            // Whether we switched (new baseline) or stayed (the
            // refreshed search endorsed the current config), the
            // drift band restarts: a cooldown against thrashing.
            state.detector.reset();
        }
        Ok(())
    }

    /// One incremental re-exploration: warm-start refit on observed
    /// epochs, seeded DFS under the remaining budget, compatibility
    /// filter, switch if the decision differs from the running config.
    #[allow(clippy::too_many_arguments)]
    fn reexplore(
        &self,
        dataset: &Dataset,
        session: &mut ExecutionSession<'_>,
        profile_db: &ProfileDb,
        observed: &[ProfileRecord],
        seeds: &mut Vec<TrainingConfig>,
        priority: Priority,
        constraints: &RuntimeConstraints,
        total_epochs: usize,
        remaining_epochs: usize,
        epoch: usize,
        drift_ewma: f64,
        audit: &mut Vec<AuditRecord>,
    ) -> Result<Option<SwitchPlan>, AdaptError> {
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let started = Instant::now();

        // Warm-start refit: replicate the observed epochs until they
        // carry ~observed_weight:1 mass against the original sweep, so
        // the ridge coefficients are pulled toward what the hardware is
        // actually doing without discarding the sweep's coverage.
        let mut db = profile_db.clone();
        let weight = (self.opts.observed_weight * db.len().div_ceil(observed.len().max(1))).max(1);
        db.merge_weighted(observed, weight);
        let mut estimator = GrayBoxEstimator::new();
        estimator.fit(&db)?;

        // The time constraint applies to the epochs still ahead: spend
        // of the epochs already run shrinks the per-epoch allowance.
        let tightened = remaining_budget(
            constraints,
            total_epochs,
            remaining_epochs,
            session.sim_time_total().as_secs(),
        );

        let explorer =
            Explorer::new(&estimator, self.opts.explore_budget).with_seed(self.opts.explore_seed);
        let result = explorer.explore_from(
            dataset,
            &self.platform,
            session.config().model,
            priority,
            &tightened,
            seeds,
        )?;

        // Mid-training we can only adopt configs that preserve the
        // model weights (same architecture/precision); re-decide over
        // the compatible survivors rather than trusting the global pick.
        let compatible: Vec<EvaluatedCandidate> =
            result.evaluated.iter().filter(|c| session.compatible(&c.config)).cloned().collect();
        let reexplore_wall_ms = started.elapsed().as_secs_f64() * 1e3;
        if metrics.is_enabled() {
            metrics.gauge_set(metric::ADAPT_REEXPLORE_MS, reexplore_wall_ms);
        }

        let pick = match decide(&compatible, priority) {
            Some(g) if g.config != *session.config() => g,
            _ => {
                *seeds = front_configs(&result, session.config());
                return Ok(None);
            }
        };

        let from = session.config().clone();
        let migration = session.switch_config(&pick.config)?;
        *seeds = front_configs(&result, session.config());

        let reason = format!(
            "drift EWMA {drift_ewma:.3} after epoch {epoch}; re-explored {} candidates \
             ({} weight-compatible) under the remaining budget",
            result.evaluated.len(),
            compatible.len(),
        );
        audit.push(AuditRecord {
            config: pick.config.summary(),
            estimate: Some(pick.estimate),
            action: AuditAction::Switched,
            reason,
            seed_candidate: false,
        });
        if metrics.is_enabled() {
            metrics.add(metric::ADAPT_SWITCHES, 1);
        }
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_SWITCH,
                metric::TRACK_ADAPT,
                Some(session.sim_time_total().as_secs() * 1e6),
                vec![
                    ("epoch".into(), (epoch as u64).into()),
                    ("from".into(), from.summary().into()),
                    ("to".into(), pick.config.summary().into()),
                    ("migration_s".into(), migration.as_secs().into()),
                ],
            );
        }

        Ok(Some(SwitchPlan {
            epoch,
            from,
            to: pick.config,
            migration_sim_s: migration.as_secs(),
            predicted: pick.estimate,
            drift_ewma,
            reexplore_wall_ms,
        }))
    }
}

/// The adaptive loop's full mutable state, shared between the plain
/// and durable drivers. Everything here (minus the borrowed session's
/// dataset) is captured by an adaptive checkpoint.
pub(crate) struct AdaptState<'d> {
    /// The running (possibly switched/degraded) training session.
    pub session: ExecutionSession<'d>,
    /// The exploration priority, fixed for the run.
    pub priority: Priority,
    /// Prediction for the currently running guideline (drift baseline).
    pub predicted: PerfEstimate,
    /// Seed configs of the next re-exploration.
    pub seeds: Vec<TrainingConfig>,
    /// The EWMA drift detector.
    pub detector: DriftDetector,
    /// Observed epochs, as warm-start profile records.
    pub observed: Vec<ProfileRecord>,
    /// Switches performed so far.
    pub switches: Vec<SwitchPlan>,
    /// Per-epoch drift EWMAs.
    pub drift_scores: Vec<f64>,
    /// Audit records appended by the adaptive layer.
    pub audit: Vec<AuditRecord>,
    /// Re-explorations performed.
    pub reexplorations: u32,
    /// Degradation count already accounted for.
    pub seen_degradations: usize,
}

impl AdaptState<'_> {
    /// Finishes the session and assembles the adaptive report.
    pub(crate) fn into_report(self) -> Result<AdaptiveReport, AdaptError> {
        let report = self.session.finish()?;
        Ok(AdaptiveReport {
            report,
            switches: self.switches,
            drift_scores: self.drift_scores,
            reexplorations: self.reexplorations,
            audit: self.audit,
        })
    }
}

/// The Pareto-front configurations of `result`, with `current`
/// prepended — the seed set of the next re-exploration.
fn front_configs(result: &ExplorationResult, current: &TrainingConfig) -> Vec<TrainingConfig> {
    let mut seeds = vec![current.clone()];
    for &i in &result.front {
        let c = &result.evaluated[i].config;
        if c != current {
            seeds.push(c.clone());
        }
    }
    seeds
}

/// Converts one observed epoch into a profile record in the profiler's
/// units (phase times per iteration; accuracy 0 so the accuracy fit,
/// which filters on `accuracy > 0`, ignores it).
fn observed_record(
    dataset: &Dataset,
    platform: &Platform,
    config: &TrainingConfig,
    stats: &EpochStats,
) -> ProfileRecord {
    let n_iter = stats.n_iter.max(1) as f64;
    let batches = stats.batches.max(1) as f64;
    ProfileRecord {
        dataset_id: dataset.id(),
        context: Context::new(dataset, platform, config.clone()),
        epoch_time_s: stats.sim_s,
        mem_bytes: stats.peak_mem_bytes as f64,
        accuracy: 0.0,
        hit_rate: stats.hit_rate,
        avg_batch_nodes: stats.nodes as f64 / batches,
        avg_batch_edges: stats.edges as f64 / batches,
        phase_s: [
            stats.phase_s[0] / n_iter,
            stats.phase_s[1] / n_iter,
            stats.phase_s[2] / n_iter,
            stats.phase_s[3] / n_iter,
        ],
        n_iter,
    }
}

/// Splits the remaining time budget evenly over the remaining epochs:
/// per-epoch allowance `min(max_t, (total − spent) / remaining)`,
/// floored at zero so an overspent run asks for the fastest feasible
/// config instead of a negative-time one.
fn remaining_budget(
    constraints: &RuntimeConstraints,
    total_epochs: usize,
    remaining_epochs: usize,
    sim_spent_s: f64,
) -> RuntimeConstraints {
    let mut tightened = *constraints;
    if let Some(max_t) = constraints.max_time_s {
        let total = max_t * total_epochs as f64;
        let left = (total - sim_spent_s).max(0.0);
        tightened.max_time_s = Some((left / remaining_epochs.max(1) as f64).min(max_t));
    }
    tightened
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        assert!(AdaptOptions::default().validate().is_ok());
    }

    #[test]
    fn bad_options_are_rejected() {
        let mut o = AdaptOptions::default();
        o.drift.threshold = f64::NAN;
        assert!(matches!(o.validate(), Err(AdaptError::InvalidOptions(_))));
        let mut o = AdaptOptions::default();
        o.drift.alpha = 0.0;
        assert!(o.validate().is_err());
        let o = AdaptOptions { observed_weight: 0, ..Default::default() };
        assert!(o.validate().is_err());
        let o = AdaptOptions { explore_budget: 0, ..Default::default() };
        assert!(o.validate().is_err());
    }

    #[test]
    fn remaining_budget_tightens_with_spend() {
        let c = RuntimeConstraints { max_time_s: Some(2.0), ..RuntimeConstraints::none() };
        // 10 epochs * 2 s = 20 s total; 12 s spent after 4 epochs
        // leaves 8 s over 6 epochs.
        let t = remaining_budget(&c, 10, 6, 12.0);
        assert!((t.max_time_s.unwrap() - 8.0 / 6.0).abs() < 1e-12);
        // Underspend never loosens beyond the original per-epoch cap.
        let t = remaining_budget(&c, 10, 6, 1.0);
        assert_eq!(t.max_time_s, Some(2.0));
        // Overspend floors at zero rather than going negative.
        let t = remaining_budget(&c, 10, 2, 25.0);
        assert_eq!(t.max_time_s, Some(0.0));
        // No constraint stays no constraint.
        let t = remaining_budget(&RuntimeConstraints::none(), 10, 5, 12.0);
        assert_eq!(t.max_time_s, None);
    }

    #[test]
    fn observed_record_uses_per_iteration_phases() {
        let dataset =
            gnnav_graph::Dataset::load_scaled(gnnav_graph::DatasetId::Reddit2, 0.01).expect("load");
        let stats = EpochStats {
            epoch: 0,
            sim_s: 4.0,
            hit_rate: 0.5,
            peak_mem_bytes: 1_000_000,
            batches: 4,
            nodes: 400,
            edges: 4000,
            phase_s: [1.0, 1.0, 1.0, 1.0],
            n_iter: 4,
        };
        let r = observed_record(
            &dataset,
            &Platform::default_rtx4090(),
            &TrainingConfig::default(),
            &stats,
        );
        assert_eq!(r.phase_s, [0.25, 0.25, 0.25, 0.25]);
        assert_eq!(r.n_iter, 4.0);
        assert_eq!(r.avg_batch_nodes, 100.0);
        assert_eq!(r.accuracy, 0.0, "observed records must not pollute the accuracy fit");
    }
}
