//! The long-lived multi-tenant navigation service.
//!
//! [`NavService`] turns the one-shot `Navigator` pipeline into a
//! request/response loop: tenants [`submit`](NavService::submit)
//! navigation requests into a bounded admission queue and a
//! [`drain`](NavService::drain) wave resolves them together. A wave
//! runs the same three-phase wave-replay discipline as the parallel
//! explorer benches:
//!
//! 1. **Plan (serial).** Every pending request resolves its dataset,
//!    warm estimator (pool hit or calibration), exploration
//!    fingerprint, and serve tier in admission order. All cache
//!    lookups, pool mutations, and coalescing decisions happen here,
//!    so they are identical at every worker width.
//! 2. **Explore (parallel).** The unique explorations the plan
//!    scheduled run as pure `(estimator, dataset) → result` jobs
//!    under `gnnav_par::par_map_indexed`, which returns results in
//!    input order regardless of width.
//! 3. **Commit (serial).** Responses are committed in admission
//!    order: results enter the in-memory map, the durable
//!    `ExploreCache`, and the nearest-neighbor index, and metering is
//!    flushed.
//!
//! Admission control is decided entirely at submit time — queue
//! bound, per-tenant token bucket, and the degradation rung derived
//! from the queue depth — so the request/response sequence is a pure
//! function of the submission sequence.

use std::collections::HashMap;

use gnnav_estimator::{
    fingerprint_of, profile_fingerprint, GrayBoxEstimator, ProfileDb, ProfileStore, Profiler,
};
use gnnav_explorer::{explore_fingerprint, ExplorationResult, ExploreCache, Explorer};
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_obs::names as metric;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};
use gnnav_store::{ByteWriter, StoreError};

use crate::pool::{platform_fingerprint, EstimatorPool};
use crate::request::{AdmitError, DegradeLevel, NavRequest, NavResponse, ServeTier};

/// Anything that can go wrong while resolving a wave.
#[derive(Debug)]
pub enum ServeError {
    /// Synthetic dataset materialization failed.
    Graph(gnnav_graph::GraphError),
    /// A calibration sweep failed outright.
    Runtime(gnnav_runtime::RuntimeError),
    /// A calibration fit failed.
    Estimator(gnnav_estimator::EstimatorError),
    /// An exploration failed.
    Explorer(gnnav_explorer::ExplorerError),
    /// A durable store operation failed.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Graph(e) => write!(f, "serve: dataset: {e}"),
            ServeError::Runtime(e) => write!(f, "serve: calibration sweep: {e}"),
            ServeError::Estimator(e) => write!(f, "serve: calibration fit: {e}"),
            ServeError::Explorer(e) => write!(f, "serve: exploration: {e}"),
            ServeError::Store(e) => write!(f, "serve: store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<gnnav_graph::GraphError> for ServeError {
    fn from(e: gnnav_graph::GraphError) -> Self {
        ServeError::Graph(e)
    }
}
impl From<gnnav_runtime::RuntimeError> for ServeError {
    fn from(e: gnnav_runtime::RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}
impl From<gnnav_estimator::EstimatorError> for ServeError {
    fn from(e: gnnav_estimator::EstimatorError) -> Self {
        ServeError::Estimator(e)
    }
}
impl From<gnnav_explorer::ExplorerError> for ServeError {
    fn from(e: gnnav_explorer::ExplorerError) -> Self {
        ServeError::Explorer(e)
    }
}
impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Service tuning knobs. The defaults favor test-speed calibration;
/// `gnnavigate serve-bench` uses them as-is so the committed baseline
/// stays cheap to regenerate.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Admission queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Token-bucket capacity per tenant (tokens are exploration
    /// requests; one token per admitted request).
    pub tenant_budget: u32,
    /// Tokens refilled per tenant at each wave drain, capped at
    /// `tenant_budget`.
    pub tenant_refill: u32,
    /// Queue depth at which admissions degrade to a reduced budget.
    pub degrade_depth: usize,
    /// Queue depth at which admissions degrade to cache-only.
    pub cache_only_depth: usize,
    /// Full DSE budget (evaluated-leaf bound).
    pub explore_budget: usize,
    /// Reduced DSE budget for degraded admissions.
    pub reduced_budget: usize,
    /// Estimator-pool LRU bound (warm platforms).
    pub pool_capacity: usize,
    /// Calibration sweep: number of synthetic graphs.
    pub calibration_graphs: usize,
    /// Calibration sweep: nodes in the first graph (later graphs grow
    /// deterministically).
    pub calibration_nodes: usize,
    /// Calibration sweep: sampled configurations per graph.
    pub calibration_samples: usize,
    /// Seed for calibration sampling and DSE traversal.
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_capacity: 64,
            tenant_budget: 8,
            tenant_refill: 8,
            degrade_depth: 32,
            cache_only_depth: 48,
            explore_budget: 400,
            reduced_budget: 100,
            pool_capacity: 8,
            calibration_graphs: 2,
            calibration_nodes: 400,
            calibration_samples: 16,
            seed: 0x7A51,
        }
    }
}

/// A request admitted into the queue, stamped with everything the
/// submit-time decision fixed.
#[derive(Debug)]
struct Pending {
    seq: u64,
    request: NavRequest,
    degrade: DegradeLevel,
    submitted_at_us: f64,
}

/// One unique exploration scheduled by the plan phase.
struct ExploreJob {
    fingerprint: u64,
    dataset: Dataset,
    platform: Platform,
    model: ModelKind,
    priority: gnnav_explorer::Priority,
    constraints: gnnav_explorer::RuntimeConstraints,
    budget: usize,
    estimator: GrayBoxEstimator,
}

/// How the plan phase decided to serve one pending request.
enum Resolution {
    /// Take the result of the wave job at this index.
    Job { job: usize, tier: ServeTier },
    /// Serve a result already in the in-memory map.
    Ready { fingerprint: u64, tier: ServeTier },
}

/// The long-lived multi-tenant guideline server.
pub struct NavService {
    options: ServeOptions,
    space: DesignSpace,
    pool: EstimatorPool,
    profile_store: Option<ProfileStore>,
    explore_cache: Option<ExploreCache>,
    queue: Vec<Pending>,
    /// Remaining tokens per tenant id.
    buckets: HashMap<u64, u32>,
    /// Completed explorations by exploration fingerprint.
    results: HashMap<u64, ExplorationResult>,
    /// Nearest-neighbor index: context key → (shape vector,
    /// exploration fingerprint), in first-computed order.
    neighbors: HashMap<u64, Vec<(Vec<f64>, u64)>>,
    /// Materialized datasets by workload shape.
    datasets: HashMap<(usize, usize, usize, usize, u64), Dataset>,
    next_seq: u64,
}

impl std::fmt::Debug for NavService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NavService")
            .field("options", &self.options)
            .field("queue_depth", &self.queue.len())
            .field("pooled_estimators", &self.pool.len())
            .field("cached_results", &self.results.len())
            .finish()
    }
}

impl NavService {
    /// Creates a service with no durable backing.
    pub fn new(options: ServeOptions) -> Self {
        NavService {
            options,
            space: DesignSpace::standard(),
            pool: EstimatorPool::new(0),
            profile_store: None,
            explore_cache: None,
            queue: Vec::new(),
            buckets: HashMap::new(),
            results: HashMap::new(),
            neighbors: HashMap::new(),
            datasets: HashMap::new(),
            next_seq: 0,
        }
        .finish_pool()
    }

    fn finish_pool(mut self) -> Self {
        self.pool = EstimatorPool::new(self.options.pool_capacity);
        self
    }

    /// Attaches a durable profile store; calibration sweeps reuse its
    /// records and append fresh ones.
    pub fn with_profile_store(mut self, store: ProfileStore) -> Self {
        self.profile_store = Some(store);
        self
    }

    /// Attaches a durable exploration cache consulted before any DSE
    /// and appended to after each fresh exploration.
    pub fn with_explore_cache(mut self, cache: ExploreCache) -> Self {
        self.explore_cache = Some(cache);
        self
    }

    /// The service options.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The warm estimator pool.
    pub fn pool(&self) -> &EstimatorPool {
        &self.pool
    }

    /// Pending requests awaiting the next [`drain`](Self::drain).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The attached durable exploration cache, if any.
    pub fn explore_cache(&self) -> Option<&ExploreCache> {
        self.explore_cache.as_ref()
    }

    /// The attached durable profile store, if any.
    pub fn profile_store(&self) -> Option<&ProfileStore> {
        self.profile_store.as_ref()
    }

    /// Completed explorations held in memory.
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }

    /// Admits `request` into the queue or rejects it with a typed
    /// error. Never panics under overload. The degradation rung is
    /// fixed here from the queue depth, so it is independent of how
    /// the wave is later executed.
    pub fn submit(&mut self, request: NavRequest) -> Result<u64, AdmitError> {
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let depth = self.queue.len();
        let reject = if depth >= self.options.queue_capacity {
            Some(AdmitError::QueueFull { depth, capacity: self.options.queue_capacity })
        } else {
            let bucket = self.buckets.entry(request.tenant.0).or_insert(self.options.tenant_budget);
            if *bucket == 0 {
                Some(AdmitError::BudgetExhausted { tenant: request.tenant })
            } else {
                *bucket -= 1;
                None
            }
        };
        if let Some(err) = reject {
            metrics.add(metric::SERVE_REQUESTS_REJECTED, 1);
            if journal.is_enabled() {
                // Rejections emit a single instant — never a span —
                // so an overloaded queue cannot leave half-open spans
                // in the trace.
                journal.instant(
                    metric::EVENT_SERVE_REJECT,
                    metric::TRACK_SERVE,
                    None,
                    vec![
                        ("tenant".into(), (request.tenant.0 as f64).into()),
                        ("reason".into(), err.reason().into()),
                    ],
                );
            }
            return Err(err);
        }
        let degrade = if depth >= self.options.cache_only_depth {
            DegradeLevel::CacheOnly
        } else if depth >= self.options.degrade_depth {
            DegradeLevel::ReducedBudget
        } else {
            DegradeLevel::Full
        };
        if degrade != DegradeLevel::Full {
            metrics.add(metric::SERVE_REQUESTS_DEGRADED, 1);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        metrics.add(metric::SERVE_REQUESTS_ADMITTED, 1);
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_SERVE_ADMIT,
                metric::TRACK_SERVE,
                None,
                vec![
                    ("seq".into(), (seq as f64).into()),
                    ("tenant".into(), (request.tenant.0 as f64).into()),
                    ("degrade".into(), degrade.label().into()),
                ],
            );
        }
        self.queue.push(Pending { seq, request, degrade, submitted_at_us: journal.now_us() });
        metrics.gauge_set(metric::SERVE_QUEUE_DEPTH, self.queue.len() as f64);
        Ok(seq)
    }

    /// Everything a pooled fit depends on beyond the platform itself:
    /// the calibration sweep shape and seed. Folded into the
    /// exploration-cache fingerprint so differently-calibrated
    /// services never share cache entries.
    fn estimator_salt(&self, platform_fp: u64) -> String {
        format!(
            "serve cal={}x{} samples={} seed={:#x} platform={:016x}",
            self.options.calibration_graphs,
            self.options.calibration_nodes,
            self.options.calibration_samples,
            self.options.seed,
            platform_fp,
        )
    }

    /// Profiles `configs` on `dataset`, reading covered records from
    /// the shared store and appending fresh ones (mirrors the
    /// single-tenant `Navigator`'s store-aware sweep).
    fn profile_via_store(
        profiler: &Profiler,
        platform: &Platform,
        store: Option<&mut ProfileStore>,
        dataset: &Dataset,
        configs: &[TrainingConfig],
    ) -> Result<ProfileDb, ServeError> {
        let Some(store) = store else {
            return Ok(profiler.profile(dataset, configs)?);
        };
        let fps: Vec<u64> =
            configs.iter().map(|c| profile_fingerprint(dataset, platform, c)).collect();
        let uncovered: Vec<usize> =
            (0..configs.len()).filter(|&i| !store.contains(fps[i])).collect();
        let mut fresh: HashMap<u64, gnnav_estimator::ProfileRecord> = HashMap::new();
        if !uncovered.is_empty() {
            let cfgs: Vec<TrainingConfig> = uncovered.iter().map(|&i| configs[i].clone()).collect();
            let db = profiler.profile(dataset, &cfgs)?;
            for rec in db.records() {
                store.insert(rec)?;
                fresh.insert(fingerprint_of(rec.dataset_id, &rec.context), rec.clone());
            }
        }
        let mut db = ProfileDb::new();
        for fp in &fps {
            if let Some(r) = fresh.get(fp) {
                db.push(r.clone());
            } else if let Some(r) = store.get(*fp) {
                db.push(r.clone());
            }
            // Neither stored nor freshly profiled: the config failed
            // to execute — skipped exactly like a cold sweep skips it.
        }
        Ok(db)
    }

    /// Calibrates a fresh gray-box fit for `platform`: a fixed,
    /// seeded synthetic sweep (the same graphs for every tenant of
    /// the platform), profiled through the shared store when one is
    /// attached. Sampling covers all model families so one fit serves
    /// every request on the platform.
    fn calibrate(
        options: &ServeOptions,
        space: &DesignSpace,
        store: Option<&mut ProfileStore>,
        platform: &Platform,
    ) -> Result<GrayBoxEstimator, ServeError> {
        let exec = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            seed: options.seed,
            journal: false,
            ..ExecutionOptions::default()
        };
        let profiler = Profiler::new(RuntimeBackend::new(platform.clone()), exec).with_threads(1);
        let mut db = ProfileDb::new();
        let mut store = store;
        for g in 0..options.calibration_graphs.max(1) {
            let nodes = options.calibration_nodes + g * 137;
            let dataset = Dataset::synthetic(
                nodes,
                3 + g % 3,
                32,
                8,
                options.seed ^ 0x5E21 ^ (g as u64).wrapping_mul(0x9E37_79B9),
            )?;
            let per_model = options.calibration_samples.max(3).div_ceil(3);
            for (m, model) in ModelKind::ALL.iter().enumerate() {
                let configs =
                    space.sample(per_model, *model, options.seed ^ ((g as u64) << 8) ^ m as u64);
                let sub = Self::profile_via_store(
                    &profiler,
                    platform,
                    store.as_deref_mut(),
                    &dataset,
                    &configs,
                )?;
                for rec in sub.records() {
                    db.push(rec.clone());
                }
            }
        }
        let mut est = GrayBoxEstimator::new();
        est.fit(&db)?;
        Ok(est)
    }

    /// Shape vector for the nearest-neighbor index: log-scaled size
    /// terms so distance is relative, not absolute.
    fn shape_vector(dataset: &Dataset) -> Vec<f64> {
        let stats = dataset.stats();
        vec![
            (stats.num_nodes as f64).ln(),
            (stats.num_edges.max(1) as f64).ln(),
            stats.degrees.mean,
            stats.degrees.skew,
        ]
    }

    /// Nearest-neighbor context key: requests may only borrow results
    /// computed for the same platform, model, priority, and
    /// constraints — only the dataset shape may differ.
    fn neighbor_key(
        platform_fp: u64,
        model: ModelKind,
        priority: gnnav_explorer::Priority,
        constraints: &gnnav_explorer::RuntimeConstraints,
    ) -> u64 {
        let mut w = ByteWriter::new();
        w.put_u64(platform_fp);
        w.put_str(&format!("{model:?}"));
        w.put_str(priority.label());
        w.put_str(&format!("{constraints:?}"));
        let bytes = w.finish();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes.iter() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Squared Euclidean distance between shape vectors.
    fn shape_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Resolves every pending request and returns the responses in
    /// admission order. The wave is deterministic at every worker
    /// width: planning and committing are serial, and the parallel
    /// exploration phase is order-preserving and pure.
    pub fn drain(&mut self) -> Result<Vec<NavResponse>, ServeError> {
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let wave_t0 = journal.now_us();
        let pending = std::mem::take(&mut self.queue);

        // --- Phase A: serial plan ---------------------------------
        let mut jobs: Vec<ExploreJob> = Vec::new();
        let mut job_by_fp: HashMap<u64, usize> = HashMap::new();
        let mut resolutions: Vec<Resolution> = Vec::with_capacity(pending.len());
        for p in &pending {
            let req = &p.request;
            let shape = req.workload.shape_key();
            if let std::collections::hash_map::Entry::Vacant(slot) = self.datasets.entry(shape) {
                slot.insert(req.workload.materialize()?);
            }
            let platform_fp = platform_fingerprint(&req.platform);
            let salt = self.estimator_salt(platform_fp);
            let budget = match p.degrade {
                DegradeLevel::Full => self.options.explore_budget,
                DegradeLevel::ReducedBudget | DegradeLevel::CacheOnly => {
                    self.options.reduced_budget
                }
            };
            let dataset = &self.datasets[&shape];
            let fp = explore_fingerprint(
                dataset,
                &req.platform,
                req.workload.model,
                &self.space,
                req.workload.priority,
                &req.workload.constraints,
                budget,
                self.options.seed,
                &salt,
            );
            // Tier ladder: memory → durable cache → (cache-only:
            // neighbor) → in-wave coalesce → fresh exploration.
            if self.results.contains_key(&fp) {
                metrics.add(metric::SERVE_CACHE_HITS, 1);
                resolutions
                    .push(Resolution::Ready { fingerprint: fp, tier: ServeTier::ExploreCache });
                continue;
            }
            if let Some(cache) = self.explore_cache.as_mut() {
                if let Some(result) = cache.lookup(fp) {
                    let result = result.clone();
                    self.results.insert(fp, result);
                    metrics.add(metric::SERVE_CACHE_HITS, 1);
                    resolutions
                        .push(Resolution::Ready { fingerprint: fp, tier: ServeTier::ExploreCache });
                    continue;
                }
            }
            if p.degrade == DegradeLevel::CacheOnly {
                let key = Self::neighbor_key(
                    platform_fp,
                    req.workload.model,
                    req.workload.priority,
                    &req.workload.constraints,
                );
                let shape_vec = Self::shape_vector(dataset);
                // First-inserted wins ties (strict `<`), so the pick
                // is independent of map iteration order.
                let nearest = self.neighbors.get(&key).and_then(|entries| {
                    let mut best: Option<(f64, u64)> = None;
                    for (vec, rfp) in entries {
                        let d = Self::shape_distance(&shape_vec, vec);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, *rfp));
                        }
                    }
                    best.map(|(_, rfp)| rfp)
                });
                if let Some(rfp) = nearest {
                    metrics.add(metric::SERVE_NEIGHBOR_SERVED, 1);
                    resolutions.push(Resolution::Ready {
                        fingerprint: rfp,
                        tier: ServeTier::NearestNeighbor,
                    });
                    continue;
                }
                // Nothing to borrow: fall through to a reduced DSE so
                // the tenant still gets a guideline.
            }
            if let Some(&job) = job_by_fp.get(&fp) {
                metrics.add(metric::SERVE_REQUESTS_COALESCED, 1);
                resolutions.push(Resolution::Job { job, tier: ServeTier::Coalesced });
                continue;
            }
            // Only a fresh exploration needs an estimator: warm
            // requests resolve above without ever touching the pool
            // (the cache fingerprint depends on the calibration
            // recipe, not the fitted coefficients).
            let (pool_hit, estimator) = {
                let options = &self.options;
                let space = &self.space;
                let store = self.profile_store.as_mut();
                let (est, hit) = self.pool.get_or_insert_with(platform_fp, || {
                    Self::calibrate(options, space, store, &req.platform)
                })?;
                (hit, est.clone())
            };
            let tier = if pool_hit { ServeTier::WarmEstimator } else { ServeTier::Cold };
            let job = jobs.len();
            job_by_fp.insert(fp, job);
            jobs.push(ExploreJob {
                fingerprint: fp,
                dataset: dataset.clone(),
                platform: req.platform.clone(),
                model: req.workload.model,
                priority: req.workload.priority,
                constraints: req.workload.constraints,
                budget,
                estimator,
            });
            resolutions.push(Resolution::Job { job, tier });
        }

        // --- Phase B: parallel pure explorations ------------------
        let seed = self.options.seed;
        let space = self.space.clone();
        let outputs: Vec<Result<ExplorationResult, gnnav_explorer::ExplorerError>> =
            gnnav_par::par_map_indexed(&jobs, 1, |_, job| {
                Explorer::new(&job.estimator, job.budget)
                    .with_space(space.clone())
                    .with_seed(seed)
                    .explore(&job.dataset, &job.platform, job.model, job.priority, &job.constraints)
            });

        // --- Phase C: serial commit in admission order ------------
        for (job, output) in jobs.iter().zip(outputs) {
            let result = output?;
            metrics.add(metric::SERVE_EXPLORATIONS, 1);
            if let Some(cache) = self.explore_cache.as_mut() {
                cache.insert(job.fingerprint, &result)?;
            }
            let key = Self::neighbor_key(
                platform_fingerprint(&job.platform),
                job.model,
                job.priority,
                &job.constraints,
            );
            self.neighbors
                .entry(key)
                .or_default()
                .push((Self::shape_vector(&job.dataset), job.fingerprint));
            self.results.insert(job.fingerprint, result);
        }
        let mut responses = Vec::with_capacity(pending.len());
        for (p, resolution) in pending.iter().zip(&resolutions) {
            let (fp, tier) = match resolution {
                Resolution::Job { job, tier } => (jobs[*job].fingerprint, *tier),
                Resolution::Ready { fingerprint, tier } => (*fingerprint, *tier),
            };
            let result = self.results.get(&fp).expect("committed before responses");
            metrics.add(metric::SERVE_RESPONSES, 1);
            metrics.observe(
                metric::SERVE_LATENCY,
                ((journal.now_us() - p.submitted_at_us) / 1e6).max(0.0),
            );
            responses.push(NavResponse {
                seq: p.seq,
                tenant: p.request.tenant,
                tier,
                degrade: p.degrade,
                guideline: result.guideline.clone(),
            });
        }
        // Refill every known tenant bucket, capped at capacity.
        for bucket in self.buckets.values_mut() {
            *bucket = (*bucket + self.options.tenant_refill).min(self.options.tenant_budget);
        }
        metrics.add(metric::SERVE_WAVES, 1);
        metrics.gauge_set(metric::SERVE_QUEUE_DEPTH, 0.0);
        if journal.is_enabled() {
            journal.span_complete(
                metric::EVENT_SERVE_WAVE,
                metric::TRACK_SERVE,
                wave_t0,
                Some(journal.now_us() - wave_t0),
                None,
                None,
                vec![
                    ("requests".into(), (responses.len() as f64).into()),
                    ("explorations".into(), (jobs.len() as f64).into()),
                ],
            );
        }
        Ok(responses)
    }
}
