//! Deterministic closed-loop load generator.
//!
//! Drives a [`NavService`] with thousands of synthetic tenants whose
//! dataset shapes and platforms are zipf-distributed: a handful of
//! head tenants dominate traffic (and hit the warm tiers), a long
//! tail keeps cold calibrations and explorations flowing. Everything
//! — tenant selection, workload attributes, burst boundaries — is a
//! pure function of the generator seed, so the full
//! request/response transcript is byte-identical at every worker
//! width (the wave pipeline itself is width-independent by
//! construction).

use gnnav_explorer::{Priority, RuntimeConstraints};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;

use crate::request::{NavRequest, TenantId, WorkloadSpec};
use crate::service::{NavService, ServeError};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadGenOptions {
    /// Number of synthetic tenants in the population.
    pub tenants: usize,
    /// Total requests to submit.
    pub requests: usize,
    /// Submissions per wave; each burst ends with a drain. Bursts
    /// larger than the service queue exercise admission rejection.
    pub burst: usize,
    /// Zipf exponent of the tenant popularity distribution.
    pub zipf_exponent: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for LoadGenOptions {
    fn default() -> Self {
        LoadGenOptions {
            tenants: 1000,
            requests: 2000,
            burst: 80,
            zipf_exponent: 1.1,
            seed: 0x7A51,
        }
    }
}

/// What a load run did, plus the full deterministic transcript.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests rejected (queue full or budget exhausted).
    pub rejected: u64,
    /// Responses committed.
    pub responses: u64,
    /// Wave drains executed.
    pub waves: u64,
    /// One line per rejection (at submit order) and per response (at
    /// commit order). Byte-identical at every worker width.
    pub transcript: String,
}

/// splitmix64: the stateless seeded mixer used across the workspace.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits of a mixed word.
fn unit_f64(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Workload shape buckets: same bucket ⇒ same synthetic graph, so
/// popular shapes repeat across tenants and hit the warm tiers.
const SHAPES: [(usize, usize, usize, usize); 12] = [
    (300, 3, 32, 8),
    (420, 4, 32, 8),
    (540, 3, 64, 8),
    (660, 5, 32, 16),
    (780, 4, 64, 16),
    (900, 3, 32, 8),
    (1020, 5, 64, 8),
    (1140, 4, 32, 16),
    (1260, 3, 64, 16),
    (520, 6, 32, 8),
    (840, 6, 64, 8),
    (1380, 5, 32, 16),
];

/// Precomputed zipf CDF over tenant ranks.
#[derive(Debug)]
pub struct ZipfTenants {
    cdf: Vec<f64>,
}

impl ZipfTenants {
    /// Builds the popularity CDF for `tenants` ranks at `exponent`.
    pub fn new(tenants: usize, exponent: f64) -> Self {
        let tenants = tenants.max(1);
        let mut cdf = Vec::with_capacity(tenants);
        let mut total = 0.0;
        for rank in 0..tenants {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        ZipfTenants { cdf }
    }

    /// Maps a uniform `[0, 1)` draw to a tenant rank.
    pub fn pick(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// The fixed attributes of one synthetic tenant: a pure function of
/// `(seed, tenant)`. Dataset seeds derive from the shape bucket, not
/// the tenant, so tenants sharing a bucket share one dataset (and
/// one exploration fingerprint).
pub fn tenant_request(seed: u64, tenant: usize) -> NavRequest {
    let h = splitmix64(seed ^ (tenant as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    let bucket = (h % SHAPES.len() as u64) as usize;
    let (num_nodes, edges_per_node, feat_dim, num_classes) = SHAPES[bucket];
    let platform = match (h >> 8) % 3 {
        0 => Platform::default_rtx4090(),
        1 => Platform::default_a100(),
        _ => Platform::default_m90(),
    };
    let model = ModelKind::ALL[((h >> 16) % 3) as usize];
    let priority = Priority::ALL[((h >> 24) % 4) as usize];
    let constraints = if (h >> 32).is_multiple_of(4) {
        RuntimeConstraints {
            max_time_s: Some(500.0),
            max_mem_bytes: Some(1e12),
            min_accuracy: None,
        }
    } else {
        RuntimeConstraints::none()
    };
    NavRequest {
        tenant: TenantId(tenant as u64),
        platform,
        workload: WorkloadSpec {
            num_nodes,
            edges_per_node,
            feat_dim,
            num_classes,
            graph_seed: splitmix64(seed ^ 0x5AFE ^ bucket as u64),
            model,
            priority,
            constraints,
        },
    }
}

/// Runs the closed loop: submit zipf-selected tenant requests in
/// bursts, drain a wave at each burst boundary, and transcribe every
/// rejection and response.
pub fn run_load(
    service: &mut NavService,
    options: &LoadGenOptions,
) -> Result<LoadSummary, ServeError> {
    let zipf = ZipfTenants::new(options.tenants, options.zipf_exponent);
    let mut transcript = String::new();
    transcript.push_str(&format!(
        "# serve-bench tenants={} requests={} burst={} zipf={:?} seed={:#x}\n",
        options.tenants, options.requests, options.burst, options.zipf_exponent, options.seed,
    ));
    let mut summary = LoadSummary {
        submitted: 0,
        admitted: 0,
        rejected: 0,
        responses: 0,
        waves: 0,
        transcript: String::new(),
    };
    let burst = options.burst.max(1);
    let mut in_flight = 0usize;
    for step in 0..options.requests {
        let tenant = zipf.pick(unit_f64(options.seed ^ 0xC0FF_EE00 ^ step as u64));
        let request = tenant_request(options.seed, tenant);
        summary.submitted += 1;
        match service.submit(request) {
            Ok(_) => {
                summary.admitted += 1;
                in_flight += 1;
            }
            Err(err) => {
                summary.rejected += 1;
                transcript.push_str(&format!(
                    "rej step={step} tenant={tenant} reason={}\n",
                    err.reason()
                ));
            }
        }
        if (step + 1) % burst == 0 && in_flight > 0 {
            for response in service.drain()? {
                summary.responses += 1;
                transcript.push_str(&response.transcript_line());
                transcript.push('\n');
            }
            summary.waves += 1;
            in_flight = 0;
        }
    }
    if in_flight > 0 {
        for response in service.drain()? {
            summary.responses += 1;
            transcript.push_str(&response.transcript_line());
            transcript.push('\n');
        }
        summary.waves += 1;
    }
    transcript.push_str(&format!(
        "# done submitted={} admitted={} rejected={} responses={} waves={}\n",
        summary.submitted, summary.admitted, summary.rejected, summary.responses, summary.waves,
    ));
    summary.transcript = transcript;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_head_heavy() {
        let z = ZipfTenants::new(100, 1.1);
        assert_eq!(z.pick(0.0), 0);
        assert!(z.pick(0.999_999) > 10);
        // The head tenant owns a visibly larger share than rank 50.
        let head = z.cdf[0];
        let mid = z.cdf[50] - z.cdf[49];
        assert!(head > 10.0 * mid, "head {head} vs mid {mid}");
    }

    #[test]
    fn tenant_attributes_are_stable() {
        let a = tenant_request(7, 42);
        let b = tenant_request(7, 42);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.platform, b.platform);
        // Different tenants eventually differ.
        let c = tenant_request(7, 43);
        assert!(a.workload != c.workload || a.platform != c.platform);
    }
}
