//! Navigation-as-a-service: a long-lived multi-tenant guideline
//! server over the GNNavigator pipeline.
//!
//! The single-tenant `Navigator` answers one question per process:
//! profile, fit, explore, done. [`NavService`] keeps that machinery
//! resident and shares it across tenants:
//!
//! - a warm [`EstimatorPool`] keyed by [`platform_fingerprint`]
//!   (LRU-bounded) so repeat platforms skip calibration,
//! - the durable `ExploreCache` and `ProfileStore` so repeat
//!   workloads skip the DSE and repeat calibrations skip profiling,
//! - admission control — a bounded queue with typed rejection
//!   ([`AdmitError`]), per-tenant token-bucket budgets, and a
//!   graceful-degradation ladder ([`DegradeLevel`]) under load,
//! - a deterministic closed-loop zipf load generator
//!   ([`run_load`]) behind `gnnavigate serve-bench`.
//!
//! Waves resolve with the same plan → parallel-explore → commit
//! discipline as the parallel explorer benches, so the full
//! request/response sequence is byte-identical at every worker
//! width. See `docs/SERVING.md` for the architecture tour.

#![warn(missing_docs)]

pub mod loadgen;
pub mod pool;
pub mod request;
pub mod service;

pub use loadgen::{run_load, tenant_request, LoadGenOptions, LoadSummary, ZipfTenants};
pub use pool::{platform_fingerprint, EstimatorPool};
pub use request::{
    AdmitError, DegradeLevel, NavRequest, NavResponse, ServeTier, TenantId, WorkloadSpec,
};
pub use service::{NavService, ServeError, ServeOptions};
