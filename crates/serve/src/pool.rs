//! Warm estimator pool keyed by platform fingerprint.
//!
//! Calibrating a gray-box fit means profiling real sweeps on the
//! tenant's platform — by far the most expensive step of a cold
//! navigation. The pool keeps the most recently used fits warm under
//! an LRU bound so repeat platforms skip calibration entirely.

use gnnav_estimator::GrayBoxEstimator;
use gnnav_hwsim::Platform;
use gnnav_obs::names as metric;
use gnnav_store::ByteWriter;

/// FNV-1a 64-bit over `bytes` (same constants as the store codecs).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints every field of a [`Platform`]: two platforms share a
/// pooled estimator only when they are byte-identical.
pub fn platform_fingerprint(p: &Platform) -> u64 {
    let mut w = ByteWriter::new();
    w.put_str(&p.host.name);
    w.put_f64(p.host.sample_mvps);
    w.put_f64(p.host.mem_bandwidth_gbs);
    w.put_f64(p.host.iteration_overhead_us);
    w.put_str(&p.device.name);
    w.put_f64(p.device.compute_tflops);
    w.put_f64(p.device.mem_bandwidth_gbs);
    w.put_usize(p.device.mem_capacity_bytes);
    w.put_f64(p.device.launch_overhead_us);
    w.put_str(&p.link.name);
    w.put_f64(p.link.bandwidth_gbs);
    w.put_f64(p.link.latency_us);
    fnv1a64(&w.finish())
}

/// Bounded LRU pool of fitted estimators keyed by
/// [`platform_fingerprint`]. Hits, misses, and evictions are metered
/// as `serve.pool.*`.
#[derive(Debug)]
pub struct EstimatorPool {
    capacity: usize,
    /// LRU order: least recently used first, most recent last.
    entries: Vec<(u64, GrayBoxEstimator)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EstimatorPool {
    /// Creates an empty pool holding at most `capacity` fits
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        EstimatorPool {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of warm fits currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a warm fit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to calibrate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fits evicted by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether a warm fit for `fp` is pooled (no LRU touch).
    pub fn contains(&self, fp: u64) -> bool {
        self.entries.iter().any(|(k, _)| *k == fp)
    }

    /// The pooled fit for `fp`, if warm (no LRU touch, no metering).
    pub fn peek(&self, fp: u64) -> Option<&GrayBoxEstimator> {
        self.entries.iter().find(|(k, _)| *k == fp).map(|(_, est)| est)
    }

    /// Returns the warm fit for `fp`, calibrating one with `fit` on a
    /// miss. A hit moves the entry to most-recently-used; a miss may
    /// evict the least recently used entry. The flag is `true` on a
    /// hit.
    pub fn get_or_insert_with<E>(
        &mut self,
        fp: u64,
        fit: impl FnOnce() -> Result<GrayBoxEstimator, E>,
    ) -> Result<(&GrayBoxEstimator, bool), E> {
        let metrics = gnnav_obs::global();
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == fp) {
            self.hits += 1;
            metrics.add(metric::SERVE_POOL_HITS, 1);
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            let (_, est) = self.entries.last().expect("just pushed");
            return Ok((est, true));
        }
        self.misses += 1;
        metrics.add(metric::SERVE_POOL_MISSES, 1);
        let est = fit()?;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
            metrics.add(metric::SERVE_POOL_EVICTIONS, 1);
        }
        self.entries.push((fp, est));
        let (_, est) = self.entries.last().expect("just pushed");
        Ok((est, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(tag: u64) -> Result<GrayBoxEstimator, std::convert::Infallible> {
        let _ = tag;
        Ok(GrayBoxEstimator::new())
    }

    #[test]
    fn platform_fingerprint_distinguishes_presets() {
        let a = platform_fingerprint(&Platform::default_rtx4090());
        let b = platform_fingerprint(&Platform::default_a100());
        let c = platform_fingerprint(&Platform::default_m90());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Byte-identical platforms fingerprint identically.
        assert_eq!(a, platform_fingerprint(&Platform::default_rtx4090()));
    }

    #[test]
    fn lru_evicts_least_recently_used_at_the_boundary() {
        let mut pool = EstimatorPool::new(2);
        pool.get_or_insert_with(1, || dummy(1)).unwrap();
        pool.get_or_insert_with(2, || dummy(2)).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 0);
        // Touch 1 so 2 becomes least recently used.
        let (_, hit) = pool.get_or_insert_with(1, || dummy(1)).unwrap();
        assert!(hit);
        // Inserting a third evicts exactly one entry: 2, not 1.
        pool.get_or_insert_with(3, || dummy(3)).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 1);
        assert!(pool.contains(1));
        assert!(!pool.contains(2));
        assert!(pool.contains(3));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 3);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut pool = EstimatorPool::new(0);
        assert_eq!(pool.capacity(), 1);
        pool.get_or_insert_with(1, || dummy(1)).unwrap();
        pool.get_or_insert_with(2, || dummy(2)).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.evictions(), 1);
    }
}
