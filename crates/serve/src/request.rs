//! Request and response types for the navigation service.

use gnnav_explorer::{Guideline, Priority, RuntimeConstraints};
use gnnav_graph::{Dataset, GraphError};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;

/// Opaque tenant identity. Admission budgets and metering are keyed
/// by it; the service itself attaches no other meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The shape of a tenant's training workload. Materialized into a
/// seeded synthetic [`Dataset`] on first use, so two tenants with the
/// same spec share one dataset (and one exploration fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Graph size in nodes.
    pub num_nodes: usize,
    /// Mean out-degree of the synthetic generator.
    pub edges_per_node: usize,
    /// Feature dimensionality.
    pub feat_dim: usize,
    /// Number of node classes.
    pub num_classes: usize,
    /// Generator seed (identical specs ⇒ identical graphs).
    pub graph_seed: u64,
    /// GNN architecture to navigate for.
    pub model: ModelKind,
    /// Optimization priority preset.
    pub priority: Priority,
    /// Runtime constraints on the guideline.
    pub constraints: RuntimeConstraints,
}

impl WorkloadSpec {
    /// The dataset-cache key: every field the synthetic generator
    /// consumes.
    pub(crate) fn shape_key(&self) -> (usize, usize, usize, usize, u64) {
        (self.num_nodes, self.edges_per_node, self.feat_dim, self.num_classes, self.graph_seed)
    }

    /// Materializes the synthetic dataset for this spec.
    pub fn materialize(&self) -> Result<Dataset, GraphError> {
        Dataset::synthetic(
            self.num_nodes,
            self.edges_per_node,
            self.feat_dim,
            self.num_classes,
            self.graph_seed,
        )
    }
}

/// One navigation request: "give tenant T a guideline for workload W
/// on platform P".
#[derive(Debug, Clone)]
pub struct NavRequest {
    /// The requesting tenant.
    pub tenant: TenantId,
    /// The tenant's hardware platform.
    pub platform: Platform,
    /// The tenant's workload.
    pub workload: WorkloadSpec,
}

/// How a response was produced, from most to least work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeTier {
    /// Estimator-pool miss: a fresh calibration fit ran, then a full
    /// DSE.
    Cold,
    /// Estimator-pool hit: the DSE ran against a warm fit.
    WarmEstimator,
    /// Served from a prior exploration result (in-memory or the
    /// durable `ExploreCache`) without running the DSE.
    ExploreCache,
    /// Coalesced onto another request's identical in-wave exploration.
    Coalesced,
    /// Cache-only degraded and served by the nearest-neighbor index.
    NearestNeighbor,
}

impl ServeTier {
    /// Stable lowercase label for transcripts and metering args.
    pub fn label(self) -> &'static str {
        match self {
            ServeTier::Cold => "cold",
            ServeTier::WarmEstimator => "warm-estimator",
            ServeTier::ExploreCache => "explore-cache",
            ServeTier::Coalesced => "coalesced",
            ServeTier::NearestNeighbor => "nearest-neighbor",
        }
    }
}

/// Rung of the graceful-degradation ladder, chosen at submit time
/// from the queue depth (so it is independent of worker width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeLevel {
    /// Full exploration budget.
    Full,
    /// Reduced exploration budget under moderate queue pressure.
    ReducedBudget,
    /// Cache or nearest-neighbor only under heavy pressure; falls
    /// back to a reduced DSE only when both are empty.
    CacheOnly,
}

impl DegradeLevel {
    /// Stable lowercase label for transcripts and metering args.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::ReducedBudget => "reduced",
            DegradeLevel::CacheOnly => "cache-only",
        }
    }
}

/// One committed navigation response.
#[derive(Debug, Clone)]
pub struct NavResponse {
    /// Monotonic admission sequence number.
    pub seq: u64,
    /// The requesting tenant.
    pub tenant: TenantId,
    /// How the response was produced.
    pub tier: ServeTier,
    /// The degradation rung the request was admitted at.
    pub degrade: DegradeLevel,
    /// The selected guideline.
    pub guideline: Guideline,
}

impl NavResponse {
    /// One deterministic transcript line. Floats are formatted with
    /// `{:?}` (shortest round-trip), so identical guidelines produce
    /// byte-identical lines at every worker width.
    pub fn transcript_line(&self) -> String {
        let e = &self.guideline.estimate;
        format!(
            "resp seq={} tenant={} tier={} degrade={} prio={} config=[{}] time_s={:?} mem_bytes={:?} acc={:?}",
            self.seq,
            self.tenant,
            self.tier.label(),
            self.degrade.label(),
            self.guideline.priority.label(),
            self.guideline.config.summary(),
            e.time_s,
            e.mem_bytes,
            e.accuracy,
        )
    }
}

/// Typed admission rejection. Returned by `NavService::submit`; the
/// service never panics on overload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded request queue is at capacity.
    QueueFull {
        /// Current queue depth.
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// The tenant's exploration token bucket is empty.
    BudgetExhausted {
        /// The over-budget tenant.
        tenant: TenantId,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { depth, capacity } => {
                write!(f, "queue full: depth {depth} at capacity {capacity}")
            }
            AdmitError::BudgetExhausted { tenant } => {
                write!(f, "tenant {tenant} exploration budget exhausted")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

impl AdmitError {
    /// Stable lowercase reason label for transcripts and metering.
    pub fn reason(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue-full",
            AdmitError::BudgetExhausted { .. } => "budget-exhausted",
        }
    }
}
