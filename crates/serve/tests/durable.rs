//! Durable backing: a restarted service warm-starts from the shared
//! `ProfileStore` and `ExploreCache` — the repeat tenant's guideline
//! is an explore-cache hit and calibration re-profiles nothing.

use gnnav_estimator::ProfileStore;
use gnnav_explorer::ExploreCache;
use gnnav_serve::{tenant_request, NavService, ServeOptions, ServeTier};

fn fast_options(seed: u64) -> ServeOptions {
    ServeOptions {
        queue_capacity: 24,
        tenant_budget: 8,
        tenant_refill: 8,
        degrade_depth: 12,
        cache_only_depth: 18,
        explore_budget: 120,
        reduced_budget: 40,
        pool_capacity: 4,
        calibration_graphs: 1,
        calibration_nodes: 250,
        calibration_samples: 6,
        seed,
    }
}

#[test]
fn restart_warm_starts_from_durable_stores() {
    let dir = std::env::temp_dir().join(format!("gnnav-serve-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let profiles = dir.join("profiles.wal");
    let explorations = dir.join("explorations.wal");

    // First service lifetime: cold calibration + cold exploration.
    let (cold_config, profiled) = {
        let mut service = NavService::new(fast_options(31))
            .with_profile_store(ProfileStore::open(&profiles).expect("open profiles"))
            .with_explore_cache(ExploreCache::open(&explorations).expect("open cache"));
        service.submit(tenant_request(31, 9)).expect("admit");
        let resp = service.drain().expect("cold wave");
        assert_eq!(resp[0].tier, ServeTier::Cold);
        assert_eq!(service.explore_cache().unwrap().len(), 1);
        let profiled = service.profile_store().unwrap().len();
        assert!(profiled > 0, "calibration must append profile records");
        (format!("{:?}", resp[0].guideline.config), profiled)
    };

    // Restarted service: same stores, same options, same tenant.
    let mut service = NavService::new(fast_options(31))
        .with_profile_store(ProfileStore::open(&profiles).expect("reopen profiles"))
        .with_explore_cache(ExploreCache::open(&explorations).expect("reopen cache"));
    service.submit(tenant_request(31, 9)).expect("admit");
    let resp = service.drain().expect("warm wave");
    // The pool is cold after restart, but the exploration fingerprint
    // matches the durable cache, so no DSE runs and no calibration is
    // needed: cache hits resolve before the estimator pool is
    // touched.
    assert_eq!(resp[0].tier, ServeTier::ExploreCache);
    assert_eq!(service.pool().misses(), 0, "cache hits must not calibrate");
    assert_eq!(service.explore_cache().unwrap().hits(), 1);
    assert_eq!(
        service.profile_store().unwrap().len(),
        profiled,
        "restart calibration must reuse stored profile records, not re-profile"
    );
    assert_eq!(format!("{:?}", resp[0].guideline.config), cold_config);

    let _ = std::fs::remove_dir_all(&dir);
}
