//! Admission-control behavior: typed rejections, the degradation
//! ladder, and the no-partial-spans guarantee for rejected requests.

use std::sync::Mutex;

use gnnav_obs::names as metric;
use gnnav_serve::{tenant_request, AdmitError, DegradeLevel, NavService, ServeOptions, TenantId};

/// Serializes the tests that toggle the global journal.
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

fn fast_options(seed: u64) -> ServeOptions {
    ServeOptions {
        queue_capacity: 24,
        tenant_budget: 4,
        tenant_refill: 4,
        degrade_depth: 12,
        cache_only_depth: 18,
        explore_budget: 120,
        reduced_budget: 40,
        pool_capacity: 4,
        calibration_graphs: 1,
        calibration_nodes: 250,
        calibration_samples: 6,
        seed,
    }
}

#[test]
fn queue_full_returns_typed_error_without_panicking() {
    let mut service =
        NavService::new(ServeOptions { queue_capacity: 3, tenant_budget: 100, ..fast_options(11) });
    for tenant in 0..3 {
        service.submit(tenant_request(11, tenant)).expect("under capacity");
    }
    let err = service.submit(tenant_request(11, 3)).expect_err("queue is full");
    assert_eq!(err, AdmitError::QueueFull { depth: 3, capacity: 3 });
    assert!(err.to_string().contains("queue full"));
    // The queue is untouched by the rejection.
    assert_eq!(service.queue_depth(), 3);
}

#[test]
fn tenant_budget_exhaustion_returns_typed_error() {
    let mut service =
        NavService::new(ServeOptions { tenant_budget: 2, tenant_refill: 2, ..fast_options(12) });
    service.submit(tenant_request(12, 7)).expect("first token");
    service.submit(tenant_request(12, 7)).expect("second token");
    let err = service.submit(tenant_request(12, 7)).expect_err("bucket empty");
    assert_eq!(err, AdmitError::BudgetExhausted { tenant: TenantId(7) });
    // Other tenants are unaffected.
    service.submit(tenant_request(12, 8)).expect("different tenant");
}

#[test]
fn degradation_ladder_follows_queue_depth() {
    let mut service = NavService::new(ServeOptions {
        queue_capacity: 24,
        tenant_budget: 100,
        degrade_depth: 4,
        cache_only_depth: 8,
        ..fast_options(13)
    });
    for tenant in 0..12 {
        service.submit(tenant_request(13, tenant)).expect("admitted");
    }
    let responses = service.drain().expect("wave resolves");
    assert_eq!(responses.len(), 12);
    for (i, r) in responses.iter().enumerate() {
        let expect = if i >= 8 {
            DegradeLevel::CacheOnly
        } else if i >= 4 {
            DegradeLevel::ReducedBudget
        } else {
            DegradeLevel::Full
        };
        assert_eq!(r.degrade, expect, "request {i}");
    }
}

#[test]
fn rejected_requests_leave_no_partial_journal_spans() {
    let _guard = JOURNAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let journal = gnnav_obs::global().journal();
    journal.enable(true);
    journal.reset();

    let mut service = NavService::new(ServeOptions {
        queue_capacity: 2,
        tenant_budget: 1,
        tenant_refill: 1,
        ..fast_options(14)
    });
    service.submit(tenant_request(14, 1)).expect("admitted");
    // Queue-full and budget-exhausted rejections.
    service.submit(tenant_request(14, 1)).expect_err("budget");
    service.submit(tenant_request(14, 2)).expect("admitted");
    service.submit(tenant_request(14, 3)).expect_err("queue full");

    let snapshot = journal.snapshot();
    journal.enable(false);
    let serve_events: Vec<_> =
        snapshot.events.iter().filter(|e| e.track.as_ref() == metric::TRACK_SERVE).collect();
    let rejects: Vec<_> =
        serve_events.iter().filter(|e| e.name.as_ref() == metric::EVENT_SERVE_REJECT).collect();
    assert_eq!(rejects.len(), 2, "one instant per rejection");
    for e in &serve_events {
        // No wave ran: the serve track must hold only instants —
        // rejections can never open a span.
        assert!(
            matches!(e.kind, gnnav_obs::journal::EventKind::Instant),
            "unexpected non-instant serve event {:?}",
            e.name
        );
    }
}
