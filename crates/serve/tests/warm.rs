//! Warm-path behavior: a repeat request serves from the exploration
//! cache without invoking the DSE (`explorer.candidates.evaluated`
//! delta is zero), and the estimator pool reuses fits per platform.

use std::sync::Mutex;

use gnnav_obs::names as metric;
use gnnav_serve::{tenant_request, NavService, ServeOptions, ServeTier};

/// Serializes the tests that read global metric deltas.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn fast_options(seed: u64) -> ServeOptions {
    ServeOptions {
        queue_capacity: 24,
        tenant_budget: 8,
        tenant_refill: 8,
        degrade_depth: 12,
        cache_only_depth: 18,
        explore_budget: 120,
        reduced_budget: 40,
        pool_capacity: 4,
        calibration_graphs: 1,
        calibration_nodes: 250,
        calibration_samples: 6,
        seed,
    }
}

fn counter(name: &str) -> u64 {
    gnnav_obs::global().snapshot().counters.get(name).copied().unwrap_or(0)
}

#[test]
fn warm_request_serves_without_invoking_the_dse() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let metrics = gnnav_obs::global();
    metrics.enable(true);

    let mut service = NavService::new(fast_options(21));
    service.submit(tenant_request(21, 5)).expect("cold admit");
    let cold = service.drain().expect("cold wave");
    assert_eq!(cold.len(), 1);
    assert_eq!(cold[0].tier, ServeTier::Cold, "first request calibrates and explores");

    let evaluated_before = counter(metric::EXPLORER_EVALUATED);
    let cache_hits_before = counter(metric::SERVE_CACHE_HITS);
    assert!(evaluated_before > 0, "the cold wave must have run a DSE");

    service.submit(tenant_request(21, 5)).expect("warm admit");
    let warm = service.drain().expect("warm wave");
    assert_eq!(warm.len(), 1);
    assert_eq!(warm[0].tier, ServeTier::ExploreCache);
    assert_eq!(
        counter(metric::EXPLORER_EVALUATED),
        evaluated_before,
        "cache-hit requests must not invoke the DSE"
    );
    assert_eq!(counter(metric::SERVE_CACHE_HITS), cache_hits_before + 1);
    // Identical inputs ⇒ identical guideline.
    assert_eq!(
        format!("{:?}", cold[0].guideline.config),
        format!("{:?}", warm[0].guideline.config)
    );
    metrics.enable(false);
}

#[test]
fn same_platform_reuses_the_identical_pooled_fit() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut service = NavService::new(fast_options(22));
    // Two tenants, same platform preset, different workloads: find a
    // pair by scanning the deterministic tenant attribute stream.
    let a = tenant_request(22, 0);
    let mut pair = None;
    for t in 1..64 {
        let b = tenant_request(22, t);
        if b.platform == a.platform && b.workload != a.workload {
            pair = Some(b);
            break;
        }
    }
    let b = pair.expect("some tenant shares tenant 0's platform");

    let platform_fp = gnnav_serve::platform_fingerprint(&a.platform);
    service.submit(a).expect("admit a");
    service.drain().expect("wave a");
    assert_eq!(service.pool().misses(), 1);
    let fitted = format!("{:?}", service.pool().peek(platform_fp).expect("warm fit"));

    service.submit(b).expect("admit b");
    let resp = service.drain().expect("wave b");
    assert_eq!(service.pool().misses(), 1, "platform fit must be reused");
    assert_eq!(service.pool().hits(), 1);
    // Same-platform reuse returns the identical fit, coefficient for
    // coefficient.
    assert_eq!(fitted, format!("{:?}", service.pool().peek(platform_fp).expect("still warm")));
    // A different workload on a warm platform explores fresh.
    assert_eq!(resp[0].tier, ServeTier::WarmEstimator);
}
