//! Serve determinism: the full request/response transcript of a
//! zipf load run is byte-identical at every worker width.

use gnnav_serve::{run_load, LoadGenOptions, NavService, ServeOptions};

fn fast_options(seed: u64) -> ServeOptions {
    ServeOptions {
        queue_capacity: 24,
        tenant_budget: 4,
        tenant_refill: 4,
        degrade_depth: 12,
        cache_only_depth: 18,
        explore_budget: 120,
        reduced_budget: 40,
        pool_capacity: 4,
        calibration_graphs: 1,
        calibration_nodes: 250,
        calibration_samples: 6,
        seed,
    }
}

fn transcript_at_width(width: usize, seed: u64) -> String {
    gnnav_par::with_thread_limit(width, || {
        let mut service = NavService::new(fast_options(seed));
        let load =
            LoadGenOptions { tenants: 1000, requests: 96, burst: 32, zipf_exponent: 1.1, seed };
        run_load(&mut service, &load).expect("load run").transcript
    })
}

#[test]
fn transcripts_are_byte_identical_at_widths_1_2_4_8() {
    let baseline = transcript_at_width(1, 0x7A51);
    assert!(baseline.lines().count() > 30, "transcript should be substantial");
    // Rejections must appear: the burst exceeds the queue capacity.
    assert!(baseline.contains("rej "), "load must exercise admission rejection");
    assert!(baseline.contains("tier=explore-cache"), "zipf head tenants must repeat");
    for width in [2, 4, 8] {
        let transcript = transcript_at_width(width, 0x7A51);
        assert_eq!(baseline, transcript, "transcript diverged at width {width}");
    }
}

#[test]
fn different_seeds_produce_different_traffic() {
    let a = transcript_at_width(1, 0x7A51);
    let b = transcript_at_width(1, 1337);
    assert_ne!(a, b);
}
