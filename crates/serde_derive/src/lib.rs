//! Derive macros for the offline serde shim.
//!
//! The traits in the `serde` shim have no required items, so deriving
//! is just emitting `impl serde::Serialize for T {}` — no `syn`/`quote`
//! needed. The hand-rolled parser below handles structs/enums with
//! optional plain generic parameter lists (bounds allowed, no `where`
//! clauses), which covers everything in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, decl, usage) = parse_item(input);
    let generics = if decl.is_empty() { String::new() } else { format!("<{decl}>") };
    let args = if usage.is_empty() { String::new() } else { format!("<{usage}>") };
    format!("impl{generics} ::serde::Serialize for {name}{args} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, decl, usage) = parse_item(input);
    let decl = if decl.is_empty() { "'de".to_string() } else { format!("'de, {decl}") };
    let args = if usage.is_empty() { String::new() } else { format!("<{usage}>") };
    format!("impl<{decl}> ::serde::Deserialize<'de> for {name}{args} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Returns `(type_name, generic_decls, generic_usage)` — e.g. for
/// `struct Foo<'a, T: Clone>` that is `("Foo", "'a, T: Clone", "'a, T")`.
fn parse_item(input: TokenStream) -> (String, String, String) {
    let mut iter = input.into_iter().peekable();
    // Scan for the `struct` / `enum` / `union` keyword, skipping
    // attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, found {other:?}"),
    };
    // Optional generic parameter list: tokens between `<` and the
    // matching top-level `>`.
    let mut raw: Vec<TokenTree> = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            raw.push(tt);
        }
    }
    if raw.is_empty() {
        return (name, String::new(), String::new());
    }
    // Split on top-level commas; the usage form of each parameter is
    // its leading lifetime or identifier (bounds and defaults dropped).
    let mut decl_parts: Vec<String> = Vec::new();
    let mut usage_parts: Vec<String> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    let flush = |current: &mut Vec<TokenTree>,
                 decl_parts: &mut Vec<String>,
                 usage_parts: &mut Vec<String>| {
        if current.is_empty() {
            return;
        }
        let decl: String = current.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
        let usage = match current.first() {
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                // Lifetime: `'` punct followed by its identifier.
                match current.get(1) {
                    Some(TokenTree::Ident(id)) => format!("'{id}"),
                    _ => String::new(),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "const" => match current.get(1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => String::new(),
            },
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => String::new(),
        };
        decl_parts.push(decl);
        usage_parts.push(usage);
        current.clear();
    };
    for tt in raw {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                flush(&mut current, &mut decl_parts, &mut usage_parts);
            }
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    _ => {}
                }
                current.push(tt);
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => current.push(tt),
            _ => current.push(tt),
        }
    }
    flush(&mut current, &mut decl_parts, &mut usage_parts);
    (name, decl_parts.join(", "), usage_parts.join(", "))
}
