//! Mini-batch size prediction `E(|V_i|)` — Eq. 12 and Fig. 5.
//!
//! The gray-box model fits the *log* of the analytic skeleton
//! `|B^0| · Π_l (1 + k^l)` against the log of the measured batch size:
//! the learned weights play the role of the paper's `f_overlapping`
//! penalty. Fig. 5 compares this against a pure black-box decision
//! tree on raw features — both live here.

use crate::context::Context;
use crate::features::{batch_size_features, batch_size_raw_features};
use crate::profile::ProfileDb;
use crate::EstimatorError;
use gnnav_ml::{DecisionTreeRegressor, Regressor, RidgeRegressor, Table, TreeParams};
use gnnav_runtime::SamplerKind;

fn family_index(kind: SamplerKind) -> usize {
    match kind {
        SamplerKind::NodeWise => 0,
        SamplerKind::LayerWise => 1,
        SamplerKind::SubgraphWise => 2,
        _ => 0,
    }
}

/// Gray-box `|V_i|` predictor (analytic skeleton + learned overlap
/// penalty).
///
/// Eq. 2 unifies all sampler families under one abstraction, but the
/// overlap penalty `f_overlapping` has family-specific constants, so
/// one ridge model is fitted per family (falling back to a global
/// model for families without profiles).
#[derive(Debug, Clone)]
pub struct BatchSizePredictor {
    global: RidgeRegressor,
    per_family: [Option<RidgeRegressor>; 3],
    fitted: bool,
}

impl Default for BatchSizePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchSizePredictor {
    /// Creates an unfitted predictor.
    pub fn new() -> Self {
        BatchSizePredictor {
            global: RidgeRegressor::new(1e-4),
            per_family: [None, None, None],
            fitted: false,
        }
    }

    /// Fits the overlap penalty on profiled ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty, or
    /// a fitting error.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        if db.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        let mut global = Table::with_dims(4);
        let mut family_tables = [Table::with_dims(4), Table::with_dims(4), Table::with_dims(4)];
        for r in db.records() {
            let features = batch_size_features(&r.context);
            let target = r.avg_batch_nodes.max(1.0).ln();
            global.push_row(&features, target)?;
            family_tables[family_index(r.context.config.sampler)].push_row(&features, target)?;
        }
        self.global.fit(&global)?;
        for (slot, table) in self.per_family.iter_mut().zip(&family_tables) {
            // A family model needs enough rows to beat the global fit.
            *slot = if table.num_rows() >= 8 {
                let mut m = RidgeRegressor::new(1e-4);
                m.fit(table)?;
                Some(m)
            } else {
                None
            };
        }
        self.fitted = true;
        Ok(())
    }

    /// Predicts `E(|V_i|)`, clamped to `[|B^0|, |V|]`.
    ///
    /// # Panics
    ///
    /// Panics if the predictor is unfitted.
    pub fn predict(&self, ctx: &Context) -> f64 {
        assert!(self.fitted, "predictor not fitted");
        let features = batch_size_features(ctx);
        let model =
            self.per_family[family_index(ctx.config.sampler)].as_ref().unwrap_or(&self.global);
        let ln_vi = model.predict(&features);
        // On small graphs |B^0| may exceed |V| (the backend dedups), so
        // the lower clamp is min(|B^0|, |V|).
        let lo = (ctx.config.batch_size as f64).min(ctx.num_nodes);
        ln_vi.exp().clamp(lo, ctx.num_nodes)
    }
}

/// Pure black-box baseline of Fig. 5: decision-tree regression on raw
/// configuration features.
#[derive(Debug, Clone)]
pub struct BlackBoxBatchSize {
    model: DecisionTreeRegressor,
    fitted: bool,
}

impl Default for BlackBoxBatchSize {
    fn default() -> Self {
        Self::new()
    }
}

impl BlackBoxBatchSize {
    /// Creates an unfitted baseline.
    pub fn new() -> Self {
        BlackBoxBatchSize {
            model: DecisionTreeRegressor::new(TreeParams::default()),
            fitted: false,
        }
    }

    /// Fits the tree on profiled ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty, or
    /// a fitting error.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        if db.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        let mut table = Table::with_dims(9);
        for r in db.records() {
            table.push_row(&batch_size_raw_features(&r.context), r.avg_batch_nodes)?;
        }
        self.model.fit(&table)?;
        self.fitted = true;
        Ok(())
    }

    /// Predicts `E(|V_i|)`.
    ///
    /// # Panics
    ///
    /// Panics if the baseline is unfitted.
    pub fn predict(&self, ctx: &Context) -> f64 {
        assert!(self.fitted, "predictor not fitted");
        self.model.predict(&batch_size_raw_features(ctx)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use gnnav_graph::{Dataset, DatasetId};
    use gnnav_hwsim::Platform;
    use gnnav_ml::r2_score;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

    fn profiled() -> (ProfileDb, ProfileDb) {
        // A non-saturated regime (|V_i| well below |V|) so batch size
        // has real dynamic range, as on the paper's full-size graphs.
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
        let opts = ExecutionOptions::timing_only();
        let profiler =
            Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(4);
        let cap = |mut c: gnnav_runtime::TrainingConfig| {
            c.batch_size = c.batch_size.min(64);
            c
        };
        let train_cfgs: Vec<_> =
            DesignSpace::standard().sample(30, ModelKind::Sage, 1).into_iter().map(cap).collect();
        let test_cfgs: Vec<_> =
            DesignSpace::standard().sample(10, ModelKind::Sage, 99).into_iter().map(cap).collect();
        let train = profiler.profile(&dataset, &train_cfgs).expect("profile");
        let test = profiler.profile(&dataset, &test_cfgs).expect("profile");
        (train, test)
    }

    #[test]
    fn gray_box_beats_naive_and_tracks_truth() {
        let (train, test) = profiled();
        let mut gray = BatchSizePredictor::new();
        gray.fit(&train).expect("fit");
        let truth: Vec<f64> = test.records().iter().map(|r| r.avg_batch_nodes).collect();
        let pred: Vec<f64> = test.records().iter().map(|r| gray.predict(&r.context)).collect();
        let r2 = r2_score(&truth, &pred);
        assert!(r2 > 0.6, "gray-box batch size r2 = {r2}");
    }

    #[test]
    fn black_box_fits_in_sample() {
        let (train, _) = profiled();
        let mut bb = BlackBoxBatchSize::new();
        bb.fit(&train).expect("fit");
        let truth: Vec<f64> = train.records().iter().map(|r| r.avg_batch_nodes).collect();
        let pred: Vec<f64> = train.records().iter().map(|r| bb.predict(&r.context)).collect();
        assert!(r2_score(&truth, &pred) > 0.5);
    }

    #[test]
    fn empty_profile_rejected() {
        assert!(matches!(
            BatchSizePredictor::new().fit(&ProfileDb::new()),
            Err(EstimatorError::EmptyProfile)
        ));
        assert!(matches!(
            BlackBoxBatchSize::new().fit(&ProfileDb::new()),
            Err(EstimatorError::EmptyProfile)
        ));
    }

    #[test]
    #[should_panic(expected = "predictor not fitted")]
    fn unfitted_predict_panics() {
        let (_, test) = profiled();
        let p = BatchSizePredictor::new();
        let _ = p.predict(&test.records()[0].context);
    }
}
