//! Gray-box GNN training performance estimator (GNNavigator §3.3).
//!
//! "The estimator predicts GNN training performance in a 'gray-box'
//! manner, combining purely theoretical analysis (white-box) and
//! machine learning methods (black-box)." This crate implements that
//! estimator:
//!
//! - [`Context`] — everything a prediction conditions on (candidate
//!   configuration, dataset statistics, platform);
//!   [`PredictionContext`] hoists the dataset statistics once and
//!   memoizes per-config predictions for
//!   [`GrayBoxEstimator::predict_batch`].
//! - [`Profiler`]/[`ProfileDb`] — ground-truth collection over the
//!   design space, with power-law data enhancement (§4.1).
//! - [`BatchSizePredictor`] — Eq. 12's analytic skeleton with a
//!   learned `f_overlapping` penalty, vs. the pure decision-tree
//!   baseline [`BlackBoxBatchSize`] (Fig. 5).
//! - [`HitRatePredictor`] + [`TimeEstimator`] — Eq. 4–8.
//! - [`MemoryEstimator`] — Eq. 9–10.
//! - [`AccuracyEstimator`] — Eq. 11.
//! - [`GrayBoxEstimator`] — the assembled model with
//!   leave-one-dataset-out validation (Tab. 2).

#![warn(missing_docs)]

pub mod accuracy;
pub mod batch_size;
pub mod context;
pub mod estimator;
pub mod features;
pub mod memory;
pub mod profile;
pub mod store;
pub mod time;

pub use accuracy::AccuracyEstimator;
pub use batch_size::{BatchSizePredictor, BlackBoxBatchSize};
pub use context::{Context, PredictionContext};
pub use estimator::{GrayBoxEstimator, PerfEstimate, ValidationReport};
pub use memory::MemoryEstimator;
pub use profile::{ProfileDb, ProfileRecord, Profiler};
pub use store::{fingerprint_of, profile_fingerprint, ProfileStore};
pub use time::{HitRatePredictor, TimeEstimator};

use std::error::Error;
use std::fmt;

/// Errors from estimator fitting.
#[derive(Debug)]
#[non_exhaustive]
pub enum EstimatorError {
    /// The profile database had no usable records.
    EmptyProfile,
    /// An underlying regression failed.
    Ml(gnnav_ml::MlError),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::EmptyProfile => write!(f, "profile database has no usable records"),
            EstimatorError::Ml(e) => write!(f, "regression error: {e}"),
        }
    }
}

impl Error for EstimatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimatorError::Ml(e) => Some(e),
            EstimatorError::EmptyProfile => None,
        }
    }
}

impl From<gnnav_ml::MlError> for EstimatorError {
    fn from(e: gnnav_ml::MlError) -> Self {
        EstimatorError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impls() {
        fn assert_err<T: Error + Send>() {}
        assert_err::<EstimatorError>();
        let e: EstimatorError = gnnav_ml::MlError::EmptyTable.into();
        assert!(e.source().is_some());
    }
}
