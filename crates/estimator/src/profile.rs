//! Ground-truth profiling for estimator training.
//!
//! The paper trains its estimator "on the ground-truth performance
//! covering the whole design space", augmented with randomly generated
//! power-law graphs (§4.1). [`Profiler`] executes sampled
//! configurations on the runtime backend and records every quantity
//! the gray-box model fits against.

use crate::context::Context;
use gnnav_faults::{FaultInjector, FaultKind};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_obs::names as metric;
use gnnav_runtime::{
    ExecutionOptions, ExecutionReport, RuntimeBackend, RuntimeError, TrainingConfig,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on how long an injected straggler may actually sleep,
/// so chaos sweeps stay fast regardless of the plan's magnitude.
pub const STRAGGLER_SLEEP_CAP: Duration = Duration::from_millis(250);

/// One profiled run: context plus every measured quantity.
#[derive(Debug, Clone)]
pub struct ProfileRecord {
    /// Which dataset produced the record.
    pub dataset_id: DatasetId,
    /// The candidate context (config ⊕ dataset stats ⊕ platform).
    pub context: Context,
    /// Measured epoch time in seconds.
    pub epoch_time_s: f64,
    /// Measured peak device memory in bytes.
    pub mem_bytes: f64,
    /// Measured final test accuracy.
    pub accuracy: f64,
    /// Measured cumulative cache hit rate.
    pub hit_rate: f64,
    /// Measured mean mini-batch size `|V_i|`.
    pub avg_batch_nodes: f64,
    /// Measured mean mini-batch edge count.
    pub avg_batch_edges: f64,
    /// Per-iteration phase times in seconds (epoch totals divided by
    /// `n_iter`): sample, transfer, replace, compute.
    pub phase_s: [f64; 4],
    /// Iterations per epoch.
    pub n_iter: f64,
}

/// A collection of profile records.
#[derive(Debug, Clone, Default)]
pub struct ProfileDb {
    records: Vec<ProfileRecord>,
}

impl ProfileDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ProfileDb::default()
    }

    /// Adds one record.
    pub fn push(&mut self, record: ProfileRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[ProfileRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Splits into (records NOT from `held_out`, records from
    /// `held_out`) — the paper's leave-one-dataset-out protocol
    /// ("established upon the performance across all the datasets
    /// available, except the one waiting for estimation").
    pub fn leave_one_out(&self, held_out: DatasetId) -> (ProfileDb, ProfileDb) {
        let (hold, keep): (Vec<ProfileRecord>, Vec<ProfileRecord>) =
            self.records.iter().cloned().partition(|r| r.dataset_id == held_out);
        (ProfileDb { records: keep }, ProfileDb { records: hold })
    }

    /// Merges another database into this one.
    pub fn merge(&mut self, other: ProfileDb) {
        self.records.extend(other.records);
    }

    /// Merges `records` into this database with an integral fit
    /// weight: each record is inserted `weight` times, so a ridge or
    /// forest fit over the result sees it `weight`-fold. Used by the
    /// adaptive layer's warm-start refit, where a handful of observed
    /// epochs must pull coefficients against a much larger sweep
    /// database. `weight == 0` is a no-op.
    pub fn merge_weighted(&mut self, records: &[ProfileRecord], weight: usize) {
        self.records.reserve(records.len() * weight);
        for _ in 0..weight {
            self.records.extend(records.iter().cloned());
        }
    }
}

impl Extend<ProfileRecord> for ProfileDb {
    fn extend<I: IntoIterator<Item = ProfileRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl FromIterator<ProfileRecord> for ProfileDb {
    fn from_iter<I: IntoIterator<Item = ProfileRecord>>(iter: I) -> Self {
        ProfileDb { records: iter.into_iter().collect() }
    }
}

/// One configuration that exhausted its retry budget during a sweep
/// and was quarantined (excluded from the database).
#[derive(Debug, Clone)]
pub struct ConfigFailure {
    /// Index of the failed configuration in the sweep's input slice.
    pub config_index: usize,
    /// Summary of the failed configuration.
    pub config: String,
    /// Rendered final error.
    pub error: String,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// Whether the final attempt was classified as a timeout.
    pub timed_out: bool,
}

/// Partial-sweep result: everything that profiled successfully plus
/// the quarantined failures — one bad config no longer kills the run.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Records of every configuration that executed.
    pub db: ProfileDb,
    /// Configurations that exhausted their retries, by sweep order.
    pub failures: Vec<ConfigFailure>,
}

impl SweepReport {
    /// Indices of the quarantined configurations.
    pub fn quarantined(&self) -> Vec<usize> {
        self.failures.iter().map(|f| f.config_index).collect()
    }

    /// Whether every configuration produced a record.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Executes configurations on the backend and records ground truth.
#[derive(Debug, Clone)]
pub struct Profiler {
    backend: RuntimeBackend,
    opts: ExecutionOptions,
    /// Number of worker threads for the sweep.
    threads: usize,
    /// Bounded retries per failed configuration.
    config_retries: u32,
    /// Post-hoc per-config wall-time limit: an execution that comes
    /// back slower than this is treated as failed and retried.
    config_timeout: Option<Duration>,
}

impl Profiler {
    /// Creates a profiler running each configuration under `opts`.
    pub fn new(backend: RuntimeBackend, opts: ExecutionOptions) -> Self {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
        Profiler { backend, opts, threads, config_retries: 1, config_timeout: None }
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        self.threads = threads;
        self
    }

    /// Overrides the per-config retry budget (default 1).
    pub fn with_config_retries(mut self, retries: u32) -> Self {
        self.config_retries = retries;
        self
    }

    /// Sets a per-config wall-time limit. Execution is synchronous,
    /// so the limit is enforced post-hoc: a config whose run exceeds
    /// it is discarded, retried, and eventually quarantined.
    pub fn with_config_timeout(mut self, timeout: Duration) -> Self {
        self.config_timeout = Some(timeout);
        self
    }

    /// Profiles every configuration on `dataset`, in parallel.
    ///
    /// Configurations that fail to execute (e.g. out-of-memory on the
    /// simulated device) are skipped — exactly like infeasible points
    /// in a real profiling campaign.
    ///
    /// # Errors
    ///
    /// Returns an error only if *every* configuration failed, which
    /// indicates a systematic problem rather than infeasible points.
    pub fn profile(
        &self,
        dataset: &Dataset,
        configs: &[TrainingConfig],
    ) -> Result<ProfileDb, RuntimeError> {
        let report = self.profile_with_report(dataset, configs);
        if report.db.is_empty() && !configs.is_empty() {
            return Err(RuntimeError::InvalidConfig(
                "every profiled configuration failed to execute".into(),
            ));
        }
        Ok(report.db)
    }

    /// Like [`profile`](Self::profile), but never gives up on the
    /// sweep: failed configurations are retried up to the configured
    /// budget, quarantined on exhaustion, and reported alongside the
    /// partial database. Worker-level faults (crashes, stragglers)
    /// from the execution options' fault plan are injected here,
    /// keyed by config index.
    pub fn profile_with_report(
        &self,
        dataset: &Dataset,
        configs: &[TrainingConfig],
    ) -> SweepReport {
        let injector =
            self.opts.fault_plan.as_ref().filter(|p| !p.is_empty()).map(FaultInjector::new);
        let metrics = gnnav_obs::global();
        let sweep_span = metrics.span(metric::PROFILER_SWEEP_WALL);
        // Spans opened on the workers below would otherwise record at
        // the top level — their thread-local span stacks are empty —
        // so the sweep's dotted path is captured here and re-anchored
        // per worker with `span_under`.
        let sweep_path = sweep_span.path().to_string();
        let journal = metrics.journal();
        // Records carry the config index they came from so the final
        // database order is independent of thread completion order —
        // downstream fits must be deterministic for a given seed.
        let results: Mutex<Vec<(usize, ProfileRecord)>> =
            Mutex::new(Vec::with_capacity(configs.len()));
        let failed: Mutex<Vec<(usize, ConfigFailure)>> = Mutex::new(Vec::new());
        let busy: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
        let retries_total = AtomicU64::new(0);
        let timeouts_total = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(configs.len().max(1));
        // Register the sweep's workers with the kernel thread pool:
        // while the claim is alive, nested gnnav-par regions (inside
        // the backend's training kernels) see a budget divided by the
        // worker count, so outer x inner never oversubscribes the
        // machine.
        let _pool_claim = gnnav_par::PoolClaim::register(workers);
        crossbeam::thread::scope(|scope| {
            for worker in 0..workers {
                let sweep_path = &sweep_path;
                let injector = &injector;
                let (results, failed, busy) = (&results, &failed, &busy);
                let (next, retries_total, timeouts_total) =
                    (&next, &retries_total, &timeouts_total);
                scope.spawn(move |_| {
                    let started = Instant::now();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= configs.len() {
                            break;
                        }
                        // One attempt: injected worker faults first,
                        // then the real execution, then post-hoc
                        // timeout classification. Err carries the
                        // rendered cause and whether it was a timeout.
                        let attempt_once =
                            |attempt: u32| -> Result<ExecutionReport, (String, bool)> {
                                if injector.as_ref().is_some_and(|inj| {
                                    inj.inject(FaultKind::WorkerCrash, i as u64, attempt, None)
                                        .is_some()
                                }) {
                                    return Err(("injected worker crash".into(), false));
                                }
                                if let Some(secs) = injector.as_ref().and_then(|inj| {
                                    inj.inject(FaultKind::Straggler, i as u64, attempt, None)
                                }) {
                                    std::thread::sleep(
                                        Duration::from_secs_f64(secs.max(0.0))
                                            .min(STRAGGLER_SLEEP_CAP),
                                    );
                                }
                                let t0 = Instant::now();
                                let report = self
                                    .backend
                                    .execute(dataset, &configs[i], &self.opts)
                                    .map_err(|e| (e.to_string(), false))?;
                                if let Some(limit) = self.config_timeout {
                                    let elapsed = t0.elapsed();
                                    if elapsed > limit {
                                        return Err((
                                            format!(
                                                "exceeded per-config timeout \
                                                 ({elapsed:?} > {limit:?})"
                                            ),
                                            true,
                                        ));
                                    }
                                }
                                Ok(report)
                            };

                        let config_span = metrics.span_under(sweep_path, "config");
                        let config_wall_us = journal.is_enabled().then(|| journal.now_us());
                        let mut attempt = 0u32;
                        let outcome = loop {
                            match attempt_once(attempt) {
                                Ok(report) => break Ok(report),
                                Err((error, timed_out)) => {
                                    if timed_out {
                                        timeouts_total.fetch_add(1, Ordering::Relaxed);
                                    }
                                    if attempt >= self.config_retries {
                                        break Err(ConfigFailure {
                                            config_index: i,
                                            config: configs[i].summary(),
                                            error,
                                            attempts: attempt + 1,
                                            timed_out,
                                        });
                                    }
                                    retries_total.fetch_add(1, Ordering::Relaxed);
                                    attempt += 1;
                                }
                            }
                        };
                        if let Some(wall0) = config_wall_us {
                            journal.span_complete(
                                metric::EVENT_PROFILE_CONFIG,
                                format!("{}{worker}", metric::TRACK_PROFILER_WORKER_PREFIX),
                                wall0,
                                Some(journal.now_us() - wall0),
                                None,
                                None,
                                vec![
                                    ("config_index".into(), i.into()),
                                    ("config".into(), configs[i].summary().into()),
                                    ("ok".into(), outcome.is_ok().into()),
                                    ("attempts".into(), (attempt as u64 + 1).into()),
                                ],
                            );
                        }
                        drop(config_span);
                        match outcome {
                            Ok(report) => {
                                let ctx = Context::new(
                                    dataset,
                                    self.backend.platform(),
                                    configs[i].clone(),
                                );
                                let p = report.perf;
                                let n_iter = p.n_iter.max(1) as f64;
                                let record = ProfileRecord {
                                    dataset_id: dataset.id(),
                                    context: ctx,
                                    epoch_time_s: p.epoch_time.as_secs(),
                                    mem_bytes: p.peak_mem_bytes as f64,
                                    accuracy: p.accuracy,
                                    hit_rate: p.hit_rate,
                                    avg_batch_nodes: p.avg_batch_nodes,
                                    avg_batch_edges: p.avg_batch_edges,
                                    phase_s: [
                                        p.phases.sample.as_secs() / n_iter,
                                        p.phases.transfer.as_secs() / n_iter,
                                        p.phases.replace.as_secs() / n_iter,
                                        p.phases.compute.as_secs() / n_iter,
                                    ],
                                    n_iter,
                                };
                                results.lock().push((i, record));
                            }
                            Err(failure) => failed.lock().push((i, failure)),
                        }
                    }
                    busy.lock().push(started.elapsed());
                });
            }
        })
        .expect("profiling threads do not panic");
        let mut indexed = results.into_inner();
        indexed.sort_by_key(|(i, _)| *i);
        let records: Vec<ProfileRecord> = indexed.into_iter().map(|(_, r)| r).collect();
        let mut failures = failed.into_inner();
        failures.sort_by_key(|(i, _)| *i);
        let failures: Vec<ConfigFailure> = failures.into_iter().map(|(_, f)| f).collect();

        if metrics.is_enabled() {
            let wall = sweep_span.elapsed().as_secs_f64();
            metrics.add(metric::PROFILER_RECORDS, records.len() as u64);
            metrics.add(metric::PROFILER_FAILED, failures.len() as u64);
            // Zero-valued adds still register the series, pinning the
            // perf-gate baselines at zero on the no-fault path.
            metrics.add(metric::PROFILER_RETRIES, retries_total.load(Ordering::Relaxed));
            metrics.add(metric::PROFILER_QUARANTINED, failures.len() as u64);
            metrics.add(metric::PROFILER_TIMEOUTS, timeouts_total.load(Ordering::Relaxed));
            metrics.gauge_set(metric::PROFILER_THREADS, workers as f64);
            if wall > 0.0 {
                metrics.gauge_set(metric::PROFILER_RECORDS_PER_S, records.len() as f64 / wall);
                let busy_total: f64 = busy.lock().iter().map(|d| d.as_secs_f64()).sum();
                metrics.gauge_set(
                    metric::PROFILER_UTILIZATION,
                    (busy_total / (workers as f64 * wall)).clamp(0.0, 1.0),
                );
            }
        }

        SweepReport { db: ProfileDb { records }, failures }
    }

    /// Profiles `configs` on `count` randomly generated power-law
    /// graphs (the paper's data-enhancement step). Graph `i` uses
    /// `seed + i`.
    ///
    /// # Errors
    ///
    /// Propagates generation errors; skips infeasible configs as in
    /// [`Profiler::profile`].
    pub fn profile_augmentation(
        &self,
        count: usize,
        num_nodes: usize,
        configs: &[TrainingConfig],
        seed: u64,
    ) -> Result<ProfileDb, Box<dyn std::error::Error>> {
        let mut db = ProfileDb::new();
        for i in 0..count {
            let dataset =
                Dataset::synthetic(num_nodes, 3 + (i % 5), 64, 16, seed.wrapping_add(i as u64))?;
            db.merge(self.profile(&dataset, configs)?);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_hwsim::Platform;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::DesignSpace;

    fn profiler() -> Profiler {
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            ..Default::default()
        };
        Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(2)
    }

    fn small_configs(n: usize) -> Vec<TrainingConfig> {
        DesignSpace::standard()
            .sample(n, ModelKind::Sage, 3)
            .into_iter()
            .map(|mut c| {
                c.batch_size = 32;
                c.fanouts = vec![5, 5];
                c.hidden_dim = 16;
                c
            })
            .collect()
    }

    #[test]
    fn profile_records_measured_quantities() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let db = profiler().profile(&dataset, &small_configs(4)).expect("profile");
        assert!(!db.is_empty());
        for r in db.records() {
            assert!(r.epoch_time_s > 0.0);
            assert!(r.mem_bytes > 0.0);
            assert!(r.avg_batch_nodes >= 32.0);
            assert!(r.n_iter >= 1.0);
            assert_eq!(r.dataset_id, DatasetId::Reddit2);
        }
    }

    #[test]
    fn threaded_profile_is_deterministic_and_config_ordered() {
        // Regression: workers used to push records in completion
        // order, so a threaded sweep shuffled the database between
        // runs and diverged from the single-threaded result.
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(6);
        let threaded = profiler().with_threads(4);
        let serial = profiler().with_threads(1);
        let a = threaded.profile(&dataset, &cfgs).expect("a");
        let b = threaded.profile(&dataset, &cfgs).expect("b");
        let s = serial.profile(&dataset, &cfgs).expect("s");
        assert_eq!(a.len(), s.len());
        assert_eq!(b.len(), s.len());
        for (r, canonical) in a.records().iter().zip(s.records()) {
            assert_eq!(r.context.config, canonical.context.config);
            assert_eq!(r.epoch_time_s, canonical.epoch_time_s);
            assert_eq!(r.mem_bytes, canonical.mem_bytes);
            assert_eq!(r.accuracy, canonical.accuracy);
            assert_eq!(r.phase_s, canonical.phase_s);
        }
        for (r, canonical) in b.records().iter().zip(s.records()) {
            assert_eq!(r.context.config, canonical.context.config);
            assert_eq!(r.epoch_time_s, canonical.epoch_time_s);
        }
    }

    #[test]
    fn threaded_sweep_spans_are_parented() {
        // Regression: worker threads have empty span stacks, so their
        // spans used to record as top-level `backend.execute` instead
        // of under the sweep. Existence-only assertions: the global
        // registry is shared with concurrently running tests.
        let metrics = gnnav_obs::global();
        metrics.enable(true);
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        profiler().with_threads(2).profile(&dataset, &small_configs(3)).expect("profile");
        let snap = metrics.snapshot();
        assert!(
            snap.histograms.contains_key("profiler.sweep.config"),
            "worker config span missing: {:?}",
            snap.histograms.keys().collect::<Vec<_>>()
        );
        assert!(snap.histograms.contains_key("profiler.sweep.config.backend.execute"));
        assert!(snap.histograms.contains_key("profiler.sweep.config.backend.execute.epoch"));
    }

    #[test]
    fn sweep_journal_records_one_event_per_config() {
        let metrics = gnnav_obs::global();
        metrics.enable(true);
        metrics.journal().enable(true);
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let before = metrics
            .journal()
            .snapshot()
            .events
            .iter()
            .filter(|e| e.name == metric::EVENT_PROFILE_CONFIG)
            .count();
        profiler().with_threads(2).profile(&dataset, &small_configs(3)).expect("profile");
        let events = metrics.journal().snapshot().events;
        let configs: Vec<_> =
            events.iter().filter(|e| e.name == metric::EVENT_PROFILE_CONFIG).collect();
        assert!(configs.len() >= before + 3, "got {} config events", configs.len());
        assert!(configs.iter().all(|e| e.track.starts_with(metric::TRACK_PROFILER_WORKER_PREFIX)));
    }

    #[test]
    fn leave_one_out_partitions() {
        let d1 = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let d2 = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.01).expect("load");
        let p = profiler();
        let mut db = p.profile(&d1, &small_configs(2)).expect("p1");
        db.merge(p.profile(&d2, &small_configs(2)).expect("p2"));
        let (train, test) = db.leave_one_out(DatasetId::Reddit2);
        assert!(train.records().iter().all(|r| r.dataset_id != DatasetId::Reddit2));
        assert!(test.records().iter().all(|r| r.dataset_id == DatasetId::Reddit2));
        assert_eq!(train.len() + test.len(), db.len());
    }

    #[test]
    fn augmentation_uses_synthetic_graphs() {
        let db = profiler().profile_augmentation(2, 300, &small_configs(2), 9).expect("augment");
        assert!(db.records().iter().all(|r| r.dataset_id == DatasetId::Synthetic));
        assert!(db.len() >= 2);
    }

    #[test]
    fn collection_traits() {
        let db: ProfileDb = Vec::new().into_iter().collect();
        assert!(db.is_empty());
    }

    use gnnav_faults::{FaultKind, FaultPlan, FaultSpec};

    fn profiler_with_plan(plan: FaultPlan) -> Profiler {
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            fault_plan: Some(plan),
            ..Default::default()
        };
        Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(2)
    }

    #[test]
    fn worker_crash_survived_by_retry() {
        // Every config's first attempt crashes; the retry budget (1)
        // absorbs it and the sweep completes in full.
        let plan = FaultPlan::new(41)
            .with_fault(FaultSpec::new(FaultKind::WorkerCrash).with_duration_attempts(1));
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(3);
        let report = profiler_with_plan(plan).profile_with_report(&dataset, &cfgs);
        assert!(report.is_complete(), "retries should absorb one-shot crashes");
        assert_eq!(report.db.len(), cfgs.len());
        assert!(report.failures.is_empty());
    }

    #[test]
    fn persistent_worker_crash_quarantines_and_errors() {
        // A crash that outlives the retry budget quarantines every
        // config; `profile` then reports the systematic failure as a
        // typed error, never a panic.
        let plan = FaultPlan::new(41).with_fault(FaultSpec::new(FaultKind::WorkerCrash));
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(3);
        let p = profiler_with_plan(plan);
        let report = p.profile_with_report(&dataset, &cfgs);
        assert!(report.db.is_empty());
        assert_eq!(report.quarantined(), vec![0, 1, 2]);
        for f in &report.failures {
            assert_eq!(f.attempts, 2, "1 retry => 2 attempts");
            assert!(f.error.contains("injected worker crash"));
            assert!(!f.timed_out);
        }
        let err = p.profile(&dataset, &cfgs).expect_err("all failed");
        assert!(err.to_string().contains("every profiled configuration failed"));
    }

    #[test]
    fn windowed_crash_yields_partial_sweep() {
        // Only config 0 crashes (window [0, 1)); the rest of the
        // sweep still lands in the database, in index order.
        let plan =
            FaultPlan::new(41).with_fault(FaultSpec::new(FaultKind::WorkerCrash).with_window(0, 1));
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(4);
        let report = profiler_with_plan(plan).profile_with_report(&dataset, &cfgs);
        assert!(!report.is_complete());
        assert_eq!(report.quarantined(), vec![0]);
        assert_eq!(report.db.len(), 3);
        // profile() still succeeds on a partial sweep.
        let db = profiler_with_plan(
            FaultPlan::new(41).with_fault(FaultSpec::new(FaultKind::WorkerCrash).with_window(0, 1)),
        )
        .profile(&dataset, &cfgs)
        .expect("partial sweep is not a hard error");
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn wide_sweep_claims_pool_and_bounds_oversubscription() {
        // Regression: a 16-worker sweep must register a PoolClaim so
        // the kernels' nested parallelism divides down — otherwise 16
        // workers x a full per-region budget explodes the thread
        // count. Stragglers (capped at 250ms) keep the sweep alive
        // long enough for the observer to catch the claim.
        let plan =
            FaultPlan::new(77).with_fault(FaultSpec::new(FaultKind::Straggler).with_magnitude(1e9));
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(16);
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            fault_plan: Some(plan),
            ..Default::default()
        };
        let profiler =
            Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(16);
        let sweep = std::thread::spawn(move || profiler.profile_with_report(&dataset, &cfgs));
        let mut peak_claim = 0usize;
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_secs(30) {
            peak_claim = peak_claim.max(gnnav_par::claimed_workers());
            if peak_claim >= 16 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = sweep.join().expect("sweep thread");
        assert!(report.is_complete());
        assert!(peak_claim >= 16, "sweep never registered its 16 workers (peak {peak_claim})");
        // Under a 16-worker claim each nested region's budget is
        // hardware/16 (min 1), so outer x inner stays within 2x the
        // larger of core count and worker count.
        let hw = gnnav_par::hardware_threads();
        let inner = (hw / 16).max(1);
        assert!(16 * inner <= 2 * hw.max(16), "outer x inner budget {} too large", 16 * inner);
        // (Claim release on drop is covered by gnnav-par's own tests;
        // asserting a zero global count here would race with other
        // tests' concurrent sweeps.)
    }

    #[test]
    fn straggler_sleep_is_capped_and_run_completes() {
        let plan =
            FaultPlan::new(41).with_fault(FaultSpec::new(FaultKind::Straggler).with_magnitude(1e9));
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(2);
        let t0 = Instant::now();
        let report = profiler_with_plan(plan).profile_with_report(&dataset, &cfgs);
        assert!(report.is_complete(), "stragglers slow the sweep but never kill it");
        // 2 configs x 250ms cap, plus real work; well under an
        // uncapped 1e9-second sleep.
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn zero_timeout_quarantines_everything_as_timed_out() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(2);
        let report =
            profiler().with_config_timeout(Duration::ZERO).profile_with_report(&dataset, &cfgs);
        assert!(report.db.is_empty());
        assert_eq!(report.failures.len(), cfgs.len());
        for f in &report.failures {
            assert!(f.timed_out);
            assert!(f.error.contains("timeout"));
        }
    }

    #[test]
    fn faulted_sweeps_are_deterministic() {
        let mk = || {
            FaultPlan::new(99)
                .with_fault(FaultSpec::new(FaultKind::WorkerCrash).with_probability(0.5))
                .with_fault(FaultSpec::new(FaultKind::Straggler).with_probability(0.3))
        };
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let cfgs = small_configs(5);
        let a = profiler_with_plan(mk()).profile_with_report(&dataset, &cfgs);
        let b = profiler_with_plan(mk()).profile_with_report(&dataset, &cfgs);
        assert_eq!(a.quarantined(), b.quarantined());
        assert_eq!(a.db.len(), b.db.len());
        for (ra, rb) in a.db.records().iter().zip(b.db.records()) {
            assert_eq!(ra.epoch_time_s, rb.epoch_time_s);
            assert_eq!(ra.mem_bytes, rb.mem_bytes);
        }
    }
}
