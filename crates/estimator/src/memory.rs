//! Peak-memory estimation — Eq. 9–10 with learned coefficients.
//!
//! `Γ = Γ_model + Γ_cache + Γ_runtime`: the decomposition is exact, so
//! a ridge regression on the three analytic component skeletons
//! recovers near-perfect predictions (the paper reports R² up to 0.98
//! for Γ).

use crate::context::Context;
use crate::profile::ProfileDb;
use crate::EstimatorError;
use gnnav_ml::{Regressor, RidgeRegressor, Table};

fn memory_features(ctx: &Context, vi: f64) -> Vec<f64> {
    vec![
        ctx.param_count() * ctx.config.precision.bytes() as f64,
        ctx.cache_bytes_proxy(),
        ctx.activation_proxy(vi),
    ]
}

/// Gray-box peak-memory estimator.
#[derive(Debug, Clone)]
pub struct MemoryEstimator {
    model: RidgeRegressor,
    fitted: bool,
}

impl Default for MemoryEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryEstimator {
    /// Creates an unfitted estimator.
    pub fn new() -> Self {
        MemoryEstimator { model: RidgeRegressor::new(1e-6), fitted: false }
    }

    /// Fits the component coefficients on profiled peak memory, using
    /// the *measured* batch sizes as the activation input.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        let vi: Vec<f64> = db.records().iter().map(|r| r.avg_batch_nodes).collect();
        self.fit_with_vi(db, &vi)
    }

    /// Fits against externally supplied batch sizes — pass the batch
    /// predictor's *own* estimates so training matches the prediction
    /// pipeline (stacking), which is how [`crate::GrayBoxEstimator`]
    /// wires it.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `vi.len() != db.len()`.
    pub fn fit_with_vi(&mut self, db: &ProfileDb, vi: &[f64]) -> Result<(), EstimatorError> {
        if db.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        assert_eq!(vi.len(), db.len(), "one batch size per record");
        let mut table = Table::with_dims(3);
        for (r, &v) in db.records().iter().zip(vi) {
            table.push_row(&memory_features(&r.context, v), r.mem_bytes)?;
        }
        self.model.fit(&table)?;
        self.fitted = true;
        Ok(())
    }

    /// Predicts peak device memory in bytes from the predicted batch
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if unfitted.
    pub fn predict(&self, ctx: &Context, vi_pred: f64) -> f64 {
        assert!(self.fitted, "estimator not fitted");
        self.model.predict(&memory_features(ctx, vi_pred)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use gnnav_graph::{Dataset, DatasetId};
    use gnnav_hwsim::Platform;
    use gnnav_ml::r2_score;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

    fn profiled(seed: u64, n: usize) -> ProfileDb {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(n, ModelKind::Sage, seed);
        profiler.profile(&dataset, &cfgs).expect("profile")
    }

    #[test]
    fn memory_estimation_is_nearly_exact() {
        let train = profiled(5, 30);
        let test = profiled(55, 10);
        let mut mem = MemoryEstimator::new();
        mem.fit(&train).expect("fit");
        let truth: Vec<f64> = test.records().iter().map(|r| r.mem_bytes).collect();
        let pred: Vec<f64> =
            test.records().iter().map(|r| mem.predict(&r.context, r.avg_batch_nodes)).collect();
        let r2 = r2_score(&truth, &pred);
        assert!(r2 > 0.9, "memory r2 = {r2}");
    }

    #[test]
    fn cache_heavy_config_predicts_more_memory() {
        let train = profiled(6, 30);
        let mut mem = MemoryEstimator::new();
        mem.fit(&train).expect("fit");
        let mut small = train.records()[0].context.clone();
        small.config.cache_policy = gnnav_cache::CachePolicy::StaticDegree;
        small.config.cache_ratio = 0.05;
        let mut big = small.clone();
        big.config.cache_ratio = 0.5;
        let vi = 2000.0;
        assert!(mem.predict(&big, vi) > mem.predict(&small, vi));
    }

    #[test]
    fn empty_profile_rejected() {
        assert!(matches!(
            MemoryEstimator::new().fit(&ProfileDb::new()),
            Err(EstimatorError::EmptyProfile)
        ));
    }
}
