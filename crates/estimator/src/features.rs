//! Shared feature-vector builders for the estimator components.

use crate::context::Context;
use gnnav_cache::CachePolicy;
use gnnav_nn::ModelKind;
use gnnav_runtime::SamplerKind;

/// One-hot encoding of the sampler kind (3 entries).
pub fn sampler_onehot(kind: SamplerKind) -> [f64; 3] {
    match kind {
        SamplerKind::NodeWise => [1.0, 0.0, 0.0],
        SamplerKind::LayerWise => [0.0, 1.0, 0.0],
        SamplerKind::SubgraphWise => [0.0, 0.0, 1.0],
        _ => [0.0, 0.0, 0.0],
    }
}

/// One-hot encoding of the cache policy (5 entries).
pub fn policy_onehot(policy: CachePolicy) -> [f64; 5] {
    let mut v = [0.0; 5];
    let idx = match policy {
        CachePolicy::None => 0,
        CachePolicy::StaticDegree => 1,
        CachePolicy::Fifo => 2,
        CachePolicy::Lru => 3,
        CachePolicy::Lfu => 4,
        _ => 0,
    };
    v[idx] = 1.0;
    v
}

/// One-hot encoding of the model kind (3 entries).
pub fn model_onehot(kind: ModelKind) -> [f64; 3] {
    match kind {
        ModelKind::Gcn => [1.0, 0.0, 0.0],
        ModelKind::Sage => [0.0, 1.0, 0.0],
        ModelKind::Gat => [0.0, 0.0, 1.0],
        _ => [0.0, 0.0, 0.0],
    }
}

/// Log-space features for the gray-box batch-size model (Eq. 12).
///
/// The analytic skeleton is the *saturating* expansion
/// `|V| · (1 − e^(−s/|V|))` with `s = |B^0| · Π_l (1 + k^l)`: for
/// small batches it reduces to `s` (pure fanout growth), while for
/// large batches it caps at the graph size — the overlap behavior
/// `f_overlapping` models. The remaining features let the learned
/// penalty correct for degree structure and sampling bias.
pub fn batch_size_features(ctx: &Context) -> Vec<f64> {
    let n = ctx.num_nodes.max(1.0);
    let s = ctx.batch_skeleton().max(1.0);
    let saturating = n * (1.0 - (-s / n).exp());
    // No raw degree feature here: degree already enters the skeleton
    // through the per-hop `min(k, d̄)` cap, and a near-constant raw
    // degree column destabilizes cross-dataset extrapolation.
    vec![
        saturating.max(1.0).ln(),
        (s / n).min(4.0),
        ctx.config.locality_eta,
        (ctx.config.batch_size as f64).ln(),
    ]
}

/// Raw features for the pure black-box (decision-tree) batch-size
/// baseline of Fig. 5.
pub fn batch_size_raw_features(ctx: &Context) -> Vec<f64> {
    let s = sampler_onehot(ctx.config.sampler);
    vec![
        ctx.config.batch_size as f64,
        ctx.config.fanouts.iter().map(|&k| k as f64).product(),
        ctx.config.fanouts.iter().map(|&k| k as f64).sum(),
        ctx.config.locality_eta,
        ctx.num_nodes,
        ctx.avg_degree,
        s[0],
        s[1],
        s[2],
    ]
}

/// Features for the cache-hit-rate model: ratio, policy, bias, degree
/// skew, and the predicted batch coverage `|V_i|/|V|`.
pub fn hit_rate_features(ctx: &Context, vi_pred: f64) -> Vec<f64> {
    let p = policy_onehot(ctx.config.cache_policy);
    vec![
        ctx.config.cache_ratio,
        p[0],
        p[1],
        p[2],
        p[3],
        p[4],
        ctx.config.locality_eta,
        ctx.skew.min(100.0) / 100.0,
        (vi_pred / ctx.num_nodes).min(1.0),
        f64::from(ctx.config.cache_update),
    ]
}

/// Features for the accuracy model (Eq. 11's spirit: sampling bias,
/// batch composition, dataset difficulty proxies, architecture).
pub fn accuracy_features(ctx: &Context, vi_pred: f64) -> Vec<f64> {
    let s = sampler_onehot(ctx.config.sampler);
    let m = model_onehot(ctx.config.model);
    vec![
        ctx.config.locality_eta,
        ctx.config.fanouts.iter().map(|&k| k as f64).sum::<f64>(),
        (ctx.config.batch_size as f64).ln(),
        (vi_pred / ctx.num_nodes).min(1.0),
        ctx.intra_fraction,
        ctx.skew.min(100.0) / 100.0,
        ctx.num_classes.ln(),
        ctx.num_train.max(1.0).ln(),
        ctx.feat_dim.ln(),
        ctx.config.hidden_dim as f64,
        s[0],
        s[1],
        s[2],
        m[0],
        m[1],
        m[2],
        ctx.config.dropout,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::{Dataset, DatasetId};
    use gnnav_hwsim::Platform;
    use gnnav_runtime::TrainingConfig;

    fn ctx() -> Context {
        let d = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        Context::new(&d, &Platform::default_rtx4090(), TrainingConfig::default())
    }

    #[test]
    fn onehots_are_onehot() {
        for kind in SamplerKind::ALL {
            assert_eq!(sampler_onehot(kind).iter().sum::<f64>(), 1.0);
        }
        for p in CachePolicy::ALL {
            assert_eq!(policy_onehot(p).iter().sum::<f64>(), 1.0);
        }
        for m in ModelKind::ALL {
            assert_eq!(model_onehot(m).iter().sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn feature_vectors_are_finite_and_stable_width() {
        let c = ctx();
        for f in [
            batch_size_features(&c),
            batch_size_raw_features(&c),
            hit_rate_features(&c, 500.0),
            accuracy_features(&c, 500.0),
        ] {
            assert!(f.iter().all(|v| v.is_finite()));
            assert!(!f.is_empty());
        }
        assert_eq!(batch_size_features(&c).len(), 4);
        assert_eq!(hit_rate_features(&c, 1.0).len(), 10);
        assert_eq!(accuracy_features(&c, 1.0).len(), 17);
    }
}
