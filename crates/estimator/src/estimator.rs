//! The assembled gray-box performance estimator.

use crate::accuracy::AccuracyEstimator;
use crate::batch_size::BatchSizePredictor;
use crate::context::{config_key, Context, PredictionContext};
use crate::memory::MemoryEstimator;
use crate::profile::ProfileDb;
use crate::time::{HitRatePredictor, TimeEstimator};
use crate::EstimatorError;
use gnnav_graph::DatasetId;
use gnnav_ml::{mse, r2_score};
use gnnav_obs::names as metric;
use gnnav_runtime::TrainingConfig;
use std::time::Instant;

/// A predicted performance triple plus intermediate quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Predicted epoch time in seconds.
    pub time_s: f64,
    /// Predicted peak device memory in bytes.
    pub mem_bytes: f64,
    /// Predicted test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Predicted mean batch size `E(|V_i|)`.
    pub batch_nodes: f64,
    /// Predicted cache hit rate.
    pub hit_rate: f64,
}

/// Validation metrics per the paper's Tab. 2: R² for the analytically
/// grounded predictions (time, memory), MSE for accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// R² of epoch-time prediction.
    pub r2_time: f64,
    /// R² of peak-memory prediction.
    pub r2_memory: f64,
    /// MSE of accuracy prediction.
    pub mse_accuracy: f64,
    /// Number of held-out records evaluated.
    pub num_records: usize,
}

/// The paper's gray-box estimator: analytic skeletons (Eq. 4–12) with
/// black-box coefficient functions fitted on profiled ground truth.
///
/// # Example
///
/// ```no_run
/// use gnnav_estimator::{Context, GrayBoxEstimator, Profiler};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
/// use gnnav_nn::ModelKind;
/// use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05)?;
/// let backend = RuntimeBackend::new(Platform::default_rtx4090());
/// let profiler = Profiler::new(backend.clone(), ExecutionOptions::default());
/// let configs = DesignSpace::standard().sample(40, ModelKind::Sage, 1);
/// let db = profiler.profile(&dataset, &configs)?;
///
/// let mut estimator = GrayBoxEstimator::new();
/// estimator.fit(&db)?;
/// let ctx = Context::new(&dataset, backend.platform(), TrainingConfig::default());
/// let est = estimator.predict(&ctx);
/// println!("predicted epoch time: {:.3}s", est.time_s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct GrayBoxEstimator {
    batch: BatchSizePredictor,
    hit: HitRatePredictor,
    time: TimeEstimator,
    memory: MemoryEstimator,
    accuracy: Option<AccuracyEstimator>,
}

impl GrayBoxEstimator {
    /// Creates an unfitted estimator.
    pub fn new() -> Self {
        GrayBoxEstimator {
            batch: BatchSizePredictor::new(),
            hit: HitRatePredictor::new(),
            time: TimeEstimator::new(),
            memory: MemoryEstimator::new(),
            accuracy: None,
        }
    }

    /// Fits every component on `db`. The accuracy component is fitted
    /// only when the database contains trained records; otherwise
    /// accuracy predictions fall back to 0 (timing-only mode).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        let metrics = gnnav_obs::global();
        let fit_started = metrics.is_enabled().then(Instant::now);
        // Stacked fitting: downstream components are fitted against the
        // *upstream predictors' own outputs* (not the measured values)
        // so training matches the prediction pipeline exactly — the
        // batch predictor's bias is absorbed by the coefficients of
        // the time and memory models instead of surfacing as error.
        self.batch.fit(db)?;
        let vi_hat: Vec<f64> =
            db.records().iter().map(|r| self.batch.predict(&r.context)).collect();
        self.hit.fit_with_vi(db, &vi_hat)?;
        let hit_hat: Vec<f64> = db
            .records()
            .iter()
            .zip(&vi_hat)
            .map(|(r, &v)| self.hit.predict(&r.context, v))
            .collect();
        self.time.fit_with_inputs(db, &vi_hat, &hit_hat)?;
        self.memory.fit_with_vi(db, &vi_hat)?;
        let mut acc = AccuracyEstimator::new();
        match acc.fit(db) {
            Ok(()) => self.accuracy = Some(acc),
            Err(EstimatorError::EmptyProfile) => self.accuracy = None,
            Err(e) => return Err(e),
        }
        if let Some(started) = fit_started {
            metrics.add(metric::ESTIMATOR_FITS, 1);
            metrics.gauge_set(metric::ESTIMATOR_FIT_WALL, started.elapsed().as_secs_f64());
            self.record_in_sample_mape(db);
        }
        Ok(())
    }

    /// Publishes in-sample MAPE gauges for each fitted target. Records
    /// whose measured value is zero are skipped (relative error is
    /// undefined there).
    fn record_in_sample_mape(&self, db: &ProfileDb) {
        let metrics = gnnav_obs::global();
        let mut time = (0.0f64, 0usize);
        let mut mem = (0.0f64, 0usize);
        let mut acc = (0.0f64, 0usize);
        for r in db.records() {
            let est = self.predict(&r.context);
            if r.epoch_time_s > 0.0 {
                time.0 += ((est.time_s - r.epoch_time_s) / r.epoch_time_s).abs();
                time.1 += 1;
            }
            if r.mem_bytes > 0.0 {
                mem.0 += ((est.mem_bytes - r.mem_bytes) / r.mem_bytes).abs();
                mem.1 += 1;
            }
            if r.accuracy > 0.0 && self.predicts_accuracy() {
                acc.0 += ((est.accuracy - r.accuracy) / r.accuracy).abs();
                acc.1 += 1;
            }
        }
        for (name, (sum, n)) in [
            (metric::ESTIMATOR_MAPE_TIME, time),
            (metric::ESTIMATOR_MAPE_MEMORY, mem),
            (metric::ESTIMATOR_MAPE_ACCURACY, acc),
        ] {
            if n > 0 {
                metrics.gauge_set(name, sum / n as f64);
            }
        }
    }

    /// Whether the accuracy component was fitted.
    pub fn predicts_accuracy(&self) -> bool {
        self.accuracy.is_some()
    }

    /// Predicts the full performance triple for a candidate.
    ///
    /// # Panics
    ///
    /// Panics if the estimator is unfitted.
    pub fn predict(&self, ctx: &Context) -> PerfEstimate {
        gnnav_obs::global().add(metric::ESTIMATOR_PREDICTIONS, 1);
        let vi = self.batch.predict(ctx);
        let hit = self.hit.predict(ctx, vi);
        let time_s = self.time.predict(ctx, vi, hit);
        let mem_bytes = self.memory.predict(ctx, vi);
        let accuracy = self.accuracy.as_ref().map_or(0.0, |a| a.predict(ctx, vi));
        PerfEstimate { time_s, mem_bytes, accuracy, batch_nodes: vi, hit_rate: hit }
    }

    /// Predicts a batch of candidates against one precomputed
    /// [`PredictionContext`].
    ///
    /// Three optimizations over a `predict` loop, none observable in
    /// the returned estimates (`predict` is pure given the context):
    ///
    /// 1. The per-(dataset, platform) feature work is hoisted into
    ///    `pctx` — building each candidate's [`Context`] is O(1).
    /// 2. Configurations already in `pctx`'s memo (from this call or a
    ///    previous one) are served without re-predicting; duplicates
    ///    within the batch are predicted once. Memo hits are metered
    ///    as `estimator.predictions.memoized` and skip the
    ///    `estimator.predictions` counter.
    /// 3. The remaining unique predictions fan out across the
    ///    `gnnav-par` pool. Chunk boundaries are static, so the output
    ///    is bitwise identical at every thread count.
    ///
    /// Returns one estimate per entry of `configs`, in order.
    ///
    /// # Panics
    ///
    /// Panics if the estimator is unfitted and any prediction is
    /// actually computed.
    pub fn predict_batch(
        &self,
        pctx: &mut PredictionContext,
        configs: &[TrainingConfig],
    ) -> Vec<PerfEstimate> {
        let keys: Vec<Vec<u8>> = configs.iter().map(config_key).collect();
        let out: Vec<Option<PerfEstimate>> = keys.iter().map(|k| pctx.memo_get(k)).collect();
        // First-appearance order of the unique un-memoized configs;
        // later duplicates point at the same slot.
        let mut slot_of: Vec<Option<usize>> = vec![None; configs.len()];
        let mut uniques: Vec<usize> = Vec::new();
        let mut first: std::collections::HashMap<&[u8], usize> = std::collections::HashMap::new();
        for i in 0..configs.len() {
            if out[i].is_some() {
                continue;
            }
            let slot = *first.entry(keys[i].as_slice()).or_insert_with(|| {
                uniques.push(i);
                uniques.len() - 1
            });
            slot_of[i] = Some(slot);
        }
        let memo_hits = (configs.len() - uniques.len()) as u64;
        if memo_hits > 0 {
            gnnav_obs::global().add(metric::ESTIMATOR_MEMOIZED, memo_hits);
        }
        let fresh: Vec<PerfEstimate> = gnnav_par::par_map_indexed(&uniques, 8, |_, &i| {
            self.predict(&pctx.context(configs[i].clone()))
        });
        for (slot, &i) in uniques.iter().enumerate() {
            pctx.memo_put(keys[i].clone(), fresh[slot]);
        }
        out.iter()
            .zip(&slot_of)
            .map(|(memoized, slot)| {
                memoized.unwrap_or_else(|| fresh[slot.expect("miss has a slot")])
            })
            .collect()
    }

    /// Evaluates prediction quality on held-out records (Tab. 2's
    /// metrics).
    ///
    /// # Panics
    ///
    /// Panics if the estimator is unfitted or `held_out` is empty.
    pub fn validate(&self, held_out: &ProfileDb) -> ValidationReport {
        assert!(!held_out.is_empty(), "validation requires records");
        let mut t_truth = Vec::new();
        let mut t_pred = Vec::new();
        let mut m_truth = Vec::new();
        let mut m_pred = Vec::new();
        let mut a_truth = Vec::new();
        let mut a_pred = Vec::new();
        for r in held_out.records() {
            let est = self.predict(&r.context);
            t_truth.push(r.epoch_time_s);
            t_pred.push(est.time_s);
            m_truth.push(r.mem_bytes);
            m_pred.push(est.mem_bytes);
            if r.accuracy > 0.0 && self.predicts_accuracy() {
                a_truth.push(r.accuracy);
                a_pred.push(est.accuracy);
            }
        }
        ValidationReport {
            r2_time: r2_score(&t_truth, &t_pred),
            r2_memory: r2_score(&m_truth, &m_pred),
            mse_accuracy: if a_truth.is_empty() { f64::NAN } else { mse(&a_truth, &a_pred) },
            num_records: held_out.len(),
        }
    }

    /// The paper's leave-one-dataset-out protocol: fits on every
    /// record *not* from `held_out` and validates on the rest.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] if either partition is
    /// empty.
    pub fn leave_one_dataset_out(
        db: &ProfileDb,
        held_out: DatasetId,
    ) -> Result<(GrayBoxEstimator, ValidationReport), EstimatorError> {
        let (train, test) = db.leave_one_out(held_out);
        if train.is_empty() || test.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        let mut est = GrayBoxEstimator::new();
        est.fit(&train)?;
        let report = est.validate(&test);
        Ok((est, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use gnnav_graph::Dataset;
    use gnnav_hwsim::Platform;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

    fn db_for(id: DatasetId, seed: u64, n: usize) -> ProfileDb {
        let dataset = Dataset::load_scaled(id, 0.05).expect("load");
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            ..Default::default()
        };
        let profiler =
            Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(4);
        let cfgs: Vec<_> = DesignSpace::standard()
            .sample(n, ModelKind::Sage, seed)
            .into_iter()
            .map(|mut c| {
                c.batch_size = c.batch_size.min(64);
                c.hidden_dim = 16;
                c
            })
            .collect();
        profiler.profile(&dataset, &cfgs).expect("profile")
    }

    #[test]
    fn end_to_end_fit_predict_validate() {
        let mut db = db_for(DatasetId::Reddit2, 1, 20);
        db.merge(db_for(DatasetId::OgbnArxiv, 2, 20));
        let (est, report) =
            GrayBoxEstimator::leave_one_dataset_out(&db, DatasetId::OgbnArxiv).expect("loo");
        assert!(est.predicts_accuracy());
        assert!(report.num_records > 0);
        assert!(report.r2_memory > 0.5, "memory r2 = {}", report.r2_memory);
        assert!(report.r2_time > 0.0, "time r2 = {}", report.r2_time);
        assert!(report.mse_accuracy < 0.2, "acc mse = {}", report.mse_accuracy);
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        let db = db_for(DatasetId::Reddit2, 3, 18);
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        for r in db.records() {
            let p = est.predict(&r.context);
            assert!(p.time_s.is_finite() && p.time_s > 0.0);
            assert!(p.mem_bytes > 0.0);
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!((0.0..=1.0).contains(&p.hit_rate));
        }
    }

    #[test]
    fn predict_batch_matches_serial_predict() {
        let db = db_for(DatasetId::Reddit2, 3, 18);
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
        let platform = Platform::default_rtx4090();
        let configs: Vec<_> = DesignSpace::standard().sample(12, ModelKind::Sage, 7);
        let serial: Vec<PerfEstimate> = configs
            .iter()
            .map(|c| est.predict(&Context::new(&dataset, &platform, c.clone())))
            .collect();
        let mut pctx = PredictionContext::new(&dataset, &platform);
        let batch = est.predict_batch(&mut pctx, &configs);
        assert_eq!(format!("{batch:?}"), format!("{serial:?}"), "bit-exact vs serial");
        // Bit-exact at every thread width, too.
        for threads in [1, 2, 4, 8] {
            let wide = gnnav_par::with_thread_limit(threads, || {
                let mut pctx = PredictionContext::new(&dataset, &platform);
                est.predict_batch(&mut pctx, &configs)
            });
            assert_eq!(format!("{wide:?}"), format!("{serial:?}"), "{threads} threads");
        }
    }

    #[test]
    fn predict_batch_memoizes_duplicates() {
        let db = db_for(DatasetId::Reddit2, 3, 18);
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
        let platform = Platform::default_rtx4090();
        let config = gnnav_runtime::TrainingConfig::default();
        let mut pctx = PredictionContext::new(&dataset, &platform);
        // Duplicates inside one batch collapse to a single prediction.
        let batch = est.predict_batch(&mut pctx, &[config.clone(), config.clone()]);
        assert_eq!(format!("{:?}", batch[0]), format!("{:?}", batch[1]));
        assert_eq!(pctx.memo_len(), 1);
        // A later batch over the same config is served from the memo
        // with the identical estimate.
        let again = est.predict_batch(&mut pctx, &[config]);
        assert_eq!(format!("{:?}", again[0]), format!("{:?}", batch[0]));
        assert_eq!(pctx.memo_len(), 1);
    }

    #[test]
    fn empty_db_rejected() {
        let mut est = GrayBoxEstimator::new();
        assert!(matches!(est.fit(&ProfileDb::new()), Err(EstimatorError::EmptyProfile)));
    }
}
