//! Accuracy estimation — Eq. 11.
//!
//! The paper concedes that accuracy prediction "is still more like a
//! black box": the estimator conditions on the quantities Eq. 11
//! names (degree summaries, batch size, sampling bias) but the mapping
//! itself is a random forest. Validation uses MSE, matching Tab. 2.

use crate::context::Context;
use crate::features::accuracy_features;
use crate::profile::ProfileDb;
use crate::EstimatorError;
use gnnav_ml::{ForestParams, RandomForestRegressor, Regressor, Table, TreeParams};

/// Black-box-leaning accuracy estimator.
#[derive(Debug, Clone)]
pub struct AccuracyEstimator {
    model: RandomForestRegressor,
    fitted: bool,
}

impl Default for AccuracyEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl AccuracyEstimator {
    /// Creates an unfitted estimator.
    pub fn new() -> Self {
        let params = ForestParams {
            num_trees: 40,
            tree: TreeParams { max_depth: 9, min_samples_leaf: 2, ..TreeParams::default() },
            feature_fraction: 0.7,
            seed: 23,
        };
        AccuracyEstimator { model: RandomForestRegressor::new(params), fitted: false }
    }

    /// Fits on profiled accuracies (records where training was skipped
    /// — accuracy 0 — are excluded).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] if no trained records
    /// are present.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        let mut table = Table::with_dims(17);
        for r in db.records().iter().filter(|r| r.accuracy > 0.0) {
            table.push_row(&accuracy_features(&r.context, r.avg_batch_nodes), r.accuracy)?;
        }
        if table.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        self.model.fit(&table)?;
        self.fitted = true;
        Ok(())
    }

    /// Predicts test accuracy in `[0, 1]` from the predicted batch
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if unfitted.
    pub fn predict(&self, ctx: &Context, vi_pred: f64) -> f64 {
        assert!(self.fitted, "estimator not fitted");
        self.model.predict(&accuracy_features(ctx, vi_pred)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use gnnav_graph::{Dataset, DatasetId};
    use gnnav_hwsim::Platform;
    use gnnav_ml::mse;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

    fn trained_profiles(seed: u64, n: usize) -> ProfileDb {
        let dataset = Dataset::load_scaled(DatasetId::OgbnProducts, 0.015).expect("load");
        let opts = ExecutionOptions {
            epochs: 2,
            train: true,
            train_batches_cap: Some(3),
            ..Default::default()
        };
        let profiler =
            Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts).with_threads(4);
        let cfgs: Vec<_> = DesignSpace::standard()
            .sample(n, ModelKind::Sage, seed)
            .into_iter()
            .map(|mut c| {
                c.batch_size = c.batch_size.min(128);
                c.hidden_dim = 16;
                c
            })
            .collect();
        profiler.profile(&dataset, &cfgs).expect("profile")
    }

    #[test]
    fn accuracy_mse_is_low() {
        let train = trained_profiles(1, 16);
        let test = trained_profiles(91, 6);
        let mut acc = AccuracyEstimator::new();
        acc.fit(&train).expect("fit");
        let truth: Vec<f64> = test.records().iter().map(|r| r.accuracy).collect();
        let pred: Vec<f64> =
            test.records().iter().map(|r| acc.predict(&r.context, r.avg_batch_nodes)).collect();
        let err = mse(&truth, &pred);
        // Paper Tab. 2 keeps accuracy MSE <= 0.03.
        assert!(err < 0.05, "accuracy MSE = {err}");
    }

    #[test]
    fn rejects_profiles_without_training() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(2);
        let cfgs = DesignSpace::standard().sample(3, ModelKind::Sage, 4);
        let db = profiler.profile(&dataset, &cfgs).expect("profile");
        assert!(matches!(AccuracyEstimator::new().fit(&db), Err(EstimatorError::EmptyProfile)));
    }
}
