//! Durable, WAL-backed profile storage.
//!
//! A profiling sweep is the most expensive step of the navigator
//! pipeline, and it is pure: the backend is deterministic, so a
//! `(dataset, platform, config)` triple always measures the same
//! record. [`ProfileStore`] persists each [`ProfileRecord`] to an
//! append-only write-ahead log keyed by a canonical *fingerprint* of
//! that triple, so a repeated invocation skips every configuration it
//! has already profiled and still assembles a byte-identical database
//! (f64 measurements round-trip as raw IEEE-754 bits).
//!
//! Durability semantics are the WAL's: torn tails are truncated and
//! checksum-failed frames dropped at open (metered under
//! `store.wal.*`); a CRC-valid frame that fails record decoding (a
//! foreign format version, say) is skipped and counted in
//! [`ProfileStore::undecodable`] — the sweep then simply re-profiles
//! whatever was lost.

use crate::context::Context;
use crate::profile::ProfileRecord;
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_runtime::checkpoint::{get_config, put_config};
use gnnav_runtime::TrainingConfig;
use gnnav_store::{ByteReader, ByteWriter, StoreError, Wal};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Leading byte of every profile-record frame; bumped on layout
/// changes so old stores are skipped (and re-profiled) rather than
/// misread.
pub const PROFILE_RECORD_TAG: u8 = 1;

fn dataset_tag(id: DatasetId) -> u8 {
    match id {
        DatasetId::Synthetic => 0,
        DatasetId::OgbnArxiv => 1,
        DatasetId::OgbnProducts => 2,
        DatasetId::Reddit => 3,
        DatasetId::Reddit2 => 4,
        _ => unreachable!("dataset {id:?} needs a profile-store tag"),
    }
}

fn dataset_from_tag(t: u8) -> Result<DatasetId, StoreError> {
    Ok(match t {
        0 => DatasetId::Synthetic,
        1 => DatasetId::OgbnArxiv,
        2 => DatasetId::OgbnProducts,
        3 => DatasetId::Reddit,
        4 => DatasetId::Reddit2,
        t => return Err(StoreError::decode(format!("unknown dataset tag {t}"))),
    })
}

/// Appends the canonical encoding of `(dataset_id, context)` — the
/// fingerprint key. Everything a prediction conditions on is included
/// (config, dataset statistics, platform), so a store is only reused
/// when all of them match.
fn put_key(w: &mut ByteWriter, id: DatasetId, ctx: &Context) {
    w.put_u8(dataset_tag(id));
    put_config(w, &ctx.config);
    w.put_f64(ctx.num_nodes);
    w.put_f64(ctx.num_edges);
    w.put_f64(ctx.avg_degree);
    w.put_f64(ctx.skew);
    w.put_f64(ctx.intra_fraction);
    w.put_f64(ctx.feat_dim);
    w.put_f64(ctx.num_classes);
    w.put_f64(ctx.num_train);
    let p = &ctx.platform;
    w.put_str(&p.host.name);
    w.put_f64(p.host.sample_mvps);
    w.put_f64(p.host.mem_bandwidth_gbs);
    w.put_f64(p.host.iteration_overhead_us);
    w.put_str(&p.device.name);
    w.put_f64(p.device.compute_tflops);
    w.put_f64(p.device.mem_bandwidth_gbs);
    w.put_usize(p.device.mem_capacity_bytes);
    w.put_f64(p.device.launch_overhead_us);
    w.put_f64(p.device.fp16_speedup);
    w.put_str(&p.link.name);
    w.put_f64(p.link.bandwidth_gbs);
    w.put_f64(p.link.latency_us);
}

fn get_key(r: &mut ByteReader) -> Result<(DatasetId, Context), StoreError> {
    use gnnav_hwsim::{DeviceProfile, HostProfile, LinkProfile};
    let id = dataset_from_tag(r.get_u8()?)?;
    let config = get_config(r)?;
    let num_nodes = r.get_f64()?;
    let num_edges = r.get_f64()?;
    let avg_degree = r.get_f64()?;
    let skew = r.get_f64()?;
    let intra_fraction = r.get_f64()?;
    let feat_dim = r.get_f64()?;
    let num_classes = r.get_f64()?;
    let num_train = r.get_f64()?;
    let host = HostProfile {
        name: r.get_str()?,
        sample_mvps: r.get_f64()?,
        mem_bandwidth_gbs: r.get_f64()?,
        iteration_overhead_us: r.get_f64()?,
    };
    let device = DeviceProfile {
        name: r.get_str()?,
        compute_tflops: r.get_f64()?,
        mem_bandwidth_gbs: r.get_f64()?,
        mem_capacity_bytes: r.get_usize()?,
        launch_overhead_us: r.get_f64()?,
        fp16_speedup: r.get_f64()?,
    };
    let link =
        LinkProfile { name: r.get_str()?, bandwidth_gbs: r.get_f64()?, latency_us: r.get_f64()? };
    Ok((
        id,
        Context {
            config,
            num_nodes,
            num_edges,
            avg_degree,
            skew,
            intra_fraction,
            feat_dim,
            num_classes,
            num_train,
            platform: Platform { host, device, link },
        },
    ))
}

/// FNV-1a over the canonical key bytes — stable across runs and
/// platforms (everything is encoded little-endian with raw float
/// bits).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The canonical fingerprint of profiling `config` on `dataset` over
/// `platform`.
pub fn profile_fingerprint(dataset: &Dataset, platform: &Platform, config: &TrainingConfig) -> u64 {
    let ctx = Context::new(dataset, platform, config.clone());
    fingerprint_of(dataset.id(), &ctx)
}

/// Fingerprint of an already-built context.
pub fn fingerprint_of(id: DatasetId, ctx: &Context) -> u64 {
    let mut w = ByteWriter::new();
    put_key(&mut w, id, ctx);
    fnv1a64(&w.finish())
}

fn encode_record(record: &ProfileRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(PROFILE_RECORD_TAG);
    put_key(&mut w, record.dataset_id, &record.context);
    w.put_f64(record.epoch_time_s);
    w.put_f64(record.mem_bytes);
    w.put_f64(record.accuracy);
    w.put_f64(record.hit_rate);
    w.put_f64(record.avg_batch_nodes);
    w.put_f64(record.avg_batch_edges);
    for p in record.phase_s {
        w.put_f64(p);
    }
    w.put_f64(record.n_iter);
    w.finish()
}

fn decode_record(payload: &[u8]) -> Result<ProfileRecord, StoreError> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8()?;
    if tag != PROFILE_RECORD_TAG {
        return Err(StoreError::decode(format!(
            "frame tag {tag} is not a profile record (want {PROFILE_RECORD_TAG})"
        )));
    }
    let (dataset_id, context) = get_key(&mut r)?;
    let record = ProfileRecord {
        dataset_id,
        context,
        epoch_time_s: r.get_f64()?,
        mem_bytes: r.get_f64()?,
        accuracy: r.get_f64()?,
        hit_rate: r.get_f64()?,
        avg_batch_nodes: r.get_f64()?,
        avg_batch_edges: r.get_f64()?,
        phase_s: [r.get_f64()?, r.get_f64()?, r.get_f64()?, r.get_f64()?],
        n_iter: r.get_f64()?,
    };
    if !r.is_exhausted() {
        return Err(StoreError::decode(format!(
            "{} trailing bytes after profile record",
            r.remaining()
        )));
    }
    Ok(record)
}

/// A WAL-backed, fingerprint-indexed store of profile records.
///
/// # Example
///
/// ```no_run
/// use gnnav_estimator::{profile_fingerprint, ProfileStore};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = ProfileStore::open("profiles.wal")?;
/// println!("{} records survived recovery", store.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProfileStore {
    wal: Wal,
    index: HashMap<u64, usize>,
    records: Vec<(u64, ProfileRecord)>,
    undecodable: usize,
}

impl ProfileStore {
    /// Opens (or creates) the store at `path`, replaying its log.
    ///
    /// Frame-level damage (torn tail, CRC failure) is handled by the
    /// WAL recovery scan; CRC-valid frames that fail record decoding
    /// are skipped and counted in [`undecodable`](Self::undecodable).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] with the offending path when the log cannot
    /// be read, or [`StoreError::BadMagic`] /
    /// [`StoreError::VersionMismatch`] on an alien file header.
    pub fn open(path: impl Into<PathBuf>) -> Result<ProfileStore, StoreError> {
        let wal = Wal::open(path)?;
        let mut index = HashMap::new();
        let mut records = Vec::with_capacity(wal.len());
        let mut undecodable = 0usize;
        for frame in wal.records() {
            match decode_record(frame) {
                Ok(record) => {
                    let fp = fingerprint_of(record.dataset_id, &record.context);
                    index.insert(fp, records.len());
                    records.push((fp, record));
                }
                Err(_) => undecodable += 1,
            }
        }
        Ok(ProfileStore { wal, index, records, undecodable })
    }

    /// The backing log's path.
    pub fn path(&self) -> &Path {
        self.wal.path()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// CRC-valid frames that failed record decoding at open (foreign
    /// format versions); their configs will simply be re-profiled.
    pub fn undecodable(&self) -> usize {
        self.undecodable
    }

    /// The WAL recovery scan's outcome (torn-tail truncation, CRC
    /// drops) from open.
    pub fn recovery(&self) -> gnnav_store::RecoveryStats {
        self.wal.recovery()
    }

    /// Whether a record with this fingerprint is stored.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.index.contains_key(&fingerprint)
    }

    /// The stored record for `fingerprint`, if any.
    pub fn get(&self, fingerprint: u64) -> Option<&ProfileRecord> {
        self.index.get(&fingerprint).map(|&i| &self.records[i].1)
    }

    /// Durably appends `record`, keyed by its fingerprint. A record
    /// whose fingerprint is already stored is skipped (the sweep is
    /// deterministic, so the stored measurement is identical); returns
    /// whether an append happened.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the log cannot be written.
    pub fn insert(&mut self, record: &ProfileRecord) -> Result<bool, StoreError> {
        let fp = fingerprint_of(record.dataset_id, &record.context);
        if self.index.contains_key(&fp) {
            return Ok(false);
        }
        self.wal.append(&encode_record(record))?;
        self.index.insert(fp, self.records.len());
        self.records.push((fp, record.clone()));
        Ok(true)
    }

    /// Rewrites the log with only the frames that decode as profile
    /// records, purging dead bytes and undecodable frames. Returns the
    /// number of frames dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the rewrite fails.
    pub fn compact(&mut self) -> Result<usize, StoreError> {
        let dropped = self.wal.compact(|_, frame| decode_record(frame).is_ok())?;
        self.undecodable = 0;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_runtime::{ExecutionOptions, RuntimeBackend};

    fn records(n: usize) -> Vec<ProfileRecord> {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            ..Default::default()
        };
        let profiler = crate::Profiler::new(RuntimeBackend::new(Platform::default_rtx4090()), opts)
            .with_threads(2);
        let cfgs: Vec<TrainingConfig> = gnnav_runtime::DesignSpace::standard()
            .sample(n, gnnav_nn::ModelKind::Sage, 11)
            .into_iter()
            .map(|mut c| {
                c.batch_size = 32;
                c.fanouts = vec![4, 4];
                c.hidden_dim = 16;
                c
            })
            .collect();
        profiler.profile(&dataset, &cfgs).expect("profile").records().to_vec()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let recs = records(3);
        let dir = std::env::temp_dir().join(format!("gnnav-ps-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("profiles.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ProfileStore::open(&path).expect("open");
            for r in &recs {
                assert!(store.insert(r).expect("insert"));
            }
            // Duplicate inserts are skipped.
            assert!(!store.insert(&recs[0]).expect("dup"));
        }
        let store = ProfileStore::open(&path).expect("reopen");
        assert_eq!(store.len(), recs.len());
        assert!(store.recovery().is_clean());
        assert_eq!(store.undecodable(), 0);
        for r in &recs {
            let fp = fingerprint_of(r.dataset_id, &r.context);
            let got = store.get(fp).expect("present");
            // Bit-exact round trip: identical Debug rendering covers
            // every f64 payload (floats print exhaustively via {:?}).
            assert_eq!(format!("{got:?}"), format!("{r:?}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_distinguishes_config_dataset_platform() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let other = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.01).expect("load");
        let platform = Platform::default_rtx4090();
        let config = TrainingConfig::default();
        let base = profile_fingerprint(&dataset, &platform, &config);
        assert_eq!(base, profile_fingerprint(&dataset, &platform, &config), "deterministic");
        let mut c2 = config.clone();
        c2.batch_size += 1;
        assert_ne!(base, profile_fingerprint(&dataset, &platform, &c2));
        assert_ne!(base, profile_fingerprint(&other, &platform, &config));
        assert_ne!(base, profile_fingerprint(&dataset, &Platform::default_m90(), &config));
    }

    #[test]
    fn foreign_frames_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("gnnav-ps-alien-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("alien.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            wal.append(b"\xFFnot a profile record").expect("append");
        }
        let store = ProfileStore::open(&path).expect("open survives");
        assert_eq!(store.len(), 0);
        assert_eq!(store.undecodable(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_store_drops_damaged_records_only() {
        let recs = records(3);
        let dir = std::env::temp_dir().join(format!("gnnav-ps-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("profiles.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ProfileStore::open(&path).expect("open");
            for r in &recs {
                store.insert(r).expect("insert");
            }
        }
        // Torn tail: the last frame loses bytes and is truncated away.
        gnnav_store::corrupt::torn_write(&path, 5).expect("tear");
        let store = ProfileStore::open(&path).expect("recover");
        assert_eq!(store.len(), recs.len() - 1, "only the torn record is lost");
        assert_eq!(store.recovery().torn_truncated, 1);
        for r in &recs[..recs.len() - 1] {
            assert!(store.contains(fingerprint_of(r.dataset_id, &r.context)));
        }
        std::fs::remove_file(&path).ok();
    }
}
