//! Prediction context: everything the estimator may condition on.
//!
//! The paper's estimator predicts from (1) the candidate configuration
//! and (2) "pre-determined settings in runtime" — dataset statistics
//! and the hardware platform. [`Context`] bundles exactly that.

use crate::estimator::PerfEstimate;
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_runtime::checkpoint::put_config;
use gnnav_runtime::{SamplerKind, TrainingConfig};
use gnnav_store::ByteWriter;
use std::collections::HashMap;

/// One candidate to estimate: configuration ⊕ dataset stats ⊕
/// platform.
#[derive(Debug, Clone)]
pub struct Context {
    /// The candidate configuration.
    pub config: TrainingConfig,
    /// `|V|`.
    pub num_nodes: f64,
    /// `|E|` (directed).
    pub num_edges: f64,
    /// Mean degree of the graph.
    pub avg_degree: f64,
    /// Degree skew (`max/mean`) — power-law strength.
    pub skew: f64,
    /// Fraction of intra-community edges (label homophily).
    pub intra_fraction: f64,
    /// Feature dimensionality `n_attr`.
    pub feat_dim: f64,
    /// Number of label classes.
    pub num_classes: f64,
    /// Number of training target vertices.
    pub num_train: f64,
    /// The hardware platform.
    pub platform: Platform,
}

impl Context {
    /// Builds the context for running `config` on `dataset` over
    /// `platform`.
    pub fn new(dataset: &Dataset, platform: &Platform, config: TrainingConfig) -> Self {
        let stats = dataset.stats();
        Context {
            config,
            num_nodes: stats.num_nodes as f64,
            num_edges: stats.num_edges as f64,
            avg_degree: stats.degrees.mean,
            skew: stats.degrees.skew,
            intra_fraction: stats.intra_community_fraction.unwrap_or(0.0),
            feat_dim: dataset.feat_dim() as f64,
            num_classes: dataset.num_classes() as f64,
            num_train: dataset.split().train.len() as f64,
            platform: platform.clone(),
        }
    }

    /// Iterations per epoch `n_iter = ⌈train / |B^0|⌉`.
    pub fn n_iter(&self) -> f64 {
        (self.num_train / self.config.batch_size as f64).ceil().max(1.0)
    }

    /// The analytic expansion skeleton `|B^0| · Π_l (1 + k^l)^τ` of
    /// Eq. 12 (τ = 1 for node-wise sampling; the other families use
    /// their own closed forms), before the learned overlap penalty.
    /// Deliberately *uncapped*: the saturating feature transform in
    /// [`crate::features::batch_size_features`] folds it through
    /// `|V|(1 − e^(−s/|V|))`, which needs the raw growth.
    pub fn batch_skeleton(&self) -> f64 {
        let b = self.config.batch_size as f64;
        let raw = match self.config.sampler {
            SamplerKind::NodeWise => {
                // Each hop fans out at most min(k, avg_degree).
                let mut total = b;
                let mut frontier = b;
                for &k in &self.config.fanouts {
                    frontier *= (k as f64).min(self.avg_degree);
                    total += frontier;
                }
                total
            }
            SamplerKind::LayerWise => {
                let budget: f64 = self
                    .config
                    .fanouts
                    .iter()
                    .map(|&k| (k * self.config.batch_size / 4).max(16) as f64)
                    .sum();
                b + budget
            }
            SamplerKind::SubgraphWise | _ => {
                let hops: usize = self.config.fanouts.iter().sum();
                b * (1.0 + hops as f64)
            }
        };
        raw
    }

    /// Scalar parameter count `|Φ|` of the configured model on this
    /// dataset (closed form mirroring the NN substrate's layers).
    pub fn param_count(&self) -> f64 {
        use gnnav_nn::ModelKind;
        let d_in = self.feat_dim;
        let h = self.config.hidden_dim as f64;
        let d_out = self.num_classes;
        let layers = self.config.num_layers();
        let mut total = 0.0;
        for l in 0..layers {
            let li = if l == 0 { d_in } else { h };
            let lo = if l + 1 == layers { d_out } else { h };
            total += match self.config.model {
                ModelKind::Gcn => li * lo + lo,
                ModelKind::Sage => 2.0 * (li * lo) + lo,
                ModelKind::Gat => li * lo + lo + 2.0 * lo,
                _ => li * lo + lo,
            };
        }
        total
    }

    /// Bytes of one feature row at the configured precision.
    pub fn row_bytes(&self) -> f64 {
        self.feat_dim * self.config.precision.bytes() as f64
    }

    /// Analytic per-batch activation bytes for `vi` nodes (mirrors the
    /// NN substrate's `activation_bytes` plus the resident feature
    /// rows) — the `Γ_runtime` skeleton of Eq. 10.
    pub fn activation_proxy(&self, vi: f64) -> f64 {
        let h = self.config.hidden_dim as f64;
        let layers = self.config.num_layers();
        let mut scalars = 0.0;
        for l in 0..layers {
            let li = if l == 0 { self.feat_dim } else { h };
            let lo = if l + 1 == layers { self.num_classes } else { h };
            scalars += vi * (li + lo);
        }
        (scalars + vi * self.feat_dim) * self.config.precision.bytes() as f64
    }

    /// Analytic cache bytes `r · |V| · n_attr · bytes` — the `Γ_cache`
    /// skeleton of Eq. 10.
    pub fn cache_bytes_proxy(&self) -> f64 {
        (self.config.cache_ratio * self.num_nodes).round() * self.row_bytes()
    }

    /// Analytic FLOPs proxy for a batch of `vi` nodes (mirrors the NN
    /// substrate's `flops_per_batch` in closed form).
    pub fn flops_proxy(&self, vi: f64) -> f64 {
        use gnnav_nn::ModelKind;
        let e = vi * self.avg_degree;
        let h = self.config.hidden_dim as f64;
        let layers = self.config.num_layers();
        let mut fwd = 0.0;
        for l in 0..layers {
            let li = if l == 0 { self.feat_dim } else { h };
            let lo = if l + 1 == layers { self.num_classes } else { h };
            fwd += 2.0 * e * li + 2.0 * vi * li * lo;
            if self.config.model == ModelKind::Gat {
                fwd += 6.0 * e * lo;
            }
            if self.config.model == ModelKind::Sage {
                fwd += 2.0 * vi * li * lo;
            }
        }
        fwd * 3.0
    }
}

/// The canonical byte encoding of a configuration — the memo key used
/// by [`PredictionContext`]. `TrainingConfig` carries `f64` axes, so
/// it has no `Hash`/`Eq`; the checkpoint codec's little-endian
/// raw-bit encoding is exact and stable instead.
pub(crate) fn config_key(config: &TrainingConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_config(&mut w, config);
    w.finish()
}

/// Reusable per-(dataset, platform) prediction inputs plus a per-run
/// memo of completed predictions.
///
/// [`Context::new`] recomputes `dataset.stats()` — an O(|V| + |E|)
/// edge scan — on every call, which dominates prediction cost when an
/// explorer queries hundreds of candidates against one dataset. A
/// `PredictionContext` hoists that work: build it once, then
/// [`context`](Self::context) assembles a candidate [`Context`] in
/// O(1).
///
/// The memo backs
/// [`GrayBoxEstimator::predict_batch`](crate::GrayBoxEstimator::predict_batch):
/// predictions are pure given the context, so a configuration seen
/// twice within one exploration is served from the memo without
/// re-predicting.
#[derive(Debug, Clone)]
pub struct PredictionContext {
    num_nodes: f64,
    num_edges: f64,
    avg_degree: f64,
    skew: f64,
    intra_fraction: f64,
    feat_dim: f64,
    num_classes: f64,
    num_train: f64,
    platform: Platform,
    memo: HashMap<Vec<u8>, PerfEstimate>,
}

impl PredictionContext {
    /// Precomputes the dataset statistics and platform once.
    pub fn new(dataset: &Dataset, platform: &Platform) -> Self {
        let stats = dataset.stats();
        PredictionContext {
            num_nodes: stats.num_nodes as f64,
            num_edges: stats.num_edges as f64,
            avg_degree: stats.degrees.mean,
            skew: stats.degrees.skew,
            intra_fraction: stats.intra_community_fraction.unwrap_or(0.0),
            feat_dim: dataset.feat_dim() as f64,
            num_classes: dataset.num_classes() as f64,
            num_train: dataset.split().train.len() as f64,
            platform: platform.clone(),
            memo: HashMap::new(),
        }
    }

    /// Builds the [`Context`] for `config` without touching the
    /// dataset — O(1), identical field for field to
    /// `Context::new(dataset, platform, config)`.
    pub fn context(&self, config: TrainingConfig) -> Context {
        Context {
            config,
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
            avg_degree: self.avg_degree,
            skew: self.skew,
            intra_fraction: self.intra_fraction,
            feat_dim: self.feat_dim,
            num_classes: self.num_classes,
            num_train: self.num_train,
            platform: self.platform.clone(),
        }
    }

    /// Number of memoized predictions held.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// The memoized estimate for `key`, if any.
    pub(crate) fn memo_get(&self, key: &[u8]) -> Option<PerfEstimate> {
        self.memo.get(key).copied()
    }

    /// Memoizes `estimate` under `key`.
    pub(crate) fn memo_put(&mut self, key: Vec<u8>, estimate: PerfEstimate) {
        self.memo.insert(key, estimate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::DatasetId;
    use gnnav_nn::ModelKind;

    fn ctx() -> Context {
        let d = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        Context::new(&d, &Platform::default_rtx4090(), TrainingConfig::default())
    }

    #[test]
    fn n_iter_ceils() {
        let mut c = ctx();
        c.num_train = 100.0;
        c.config.batch_size = 64;
        assert_eq!(c.n_iter(), 2.0);
        c.config.batch_size = 1000;
        assert_eq!(c.n_iter(), 1.0);
    }

    #[test]
    fn skeleton_at_least_batch_size() {
        let c = ctx();
        assert!(c.batch_skeleton() >= c.config.batch_size as f64);
    }

    #[test]
    fn skeleton_grows_with_fanout() {
        let mut small = ctx();
        small.num_nodes = 1e9; // uncap
        small.config.batch_size = 4;
        small.config.fanouts = vec![2, 2];
        let mut large = small.clone();
        large.config.fanouts = vec![5, 5];
        assert!(large.batch_skeleton() > small.batch_skeleton());
    }

    #[test]
    fn param_count_matches_nn_substrate() {
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
            let mut c = ctx();
            c.config.model = kind;
            let model = gnnav_nn::GnnModel::new(
                kind,
                c.feat_dim as usize,
                c.config.hidden_dim,
                c.num_classes as usize,
                c.config.num_layers(),
                0,
            );
            assert_eq!(c.param_count() as usize, model.param_count(), "{kind}");
        }
    }

    #[test]
    fn flops_proxy_positive_and_monotone() {
        let c = ctx();
        assert!(c.flops_proxy(1000.0) > c.flops_proxy(100.0));
    }

    #[test]
    fn prediction_context_matches_context_new() {
        let d = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let platform = Platform::default_rtx4090();
        let pctx = PredictionContext::new(&d, &platform);
        let direct = Context::new(&d, &platform, TrainingConfig::default());
        let hoisted = pctx.context(TrainingConfig::default());
        // Debug formatting prints every f64 exhaustively, so equality
        // here is bit-exact field-for-field equivalence.
        assert_eq!(format!("{hoisted:?}"), format!("{direct:?}"));
    }

    #[test]
    fn config_key_distinguishes_configs() {
        let a = TrainingConfig::default();
        let mut b = a.clone();
        b.batch_size += 1;
        assert_eq!(config_key(&a), config_key(&a));
        assert_ne!(config_key(&a), config_key(&b));
    }

    #[test]
    fn row_bytes_tracks_precision() {
        let mut c = ctx();
        let fp32 = c.row_bytes();
        c.config.precision = gnnav_hwsim::Precision::Fp16;
        assert_eq!(c.row_bytes() * 2.0, fp32);
    }
}
