//! Epoch-time estimation — Eq. 4–8 with learned coefficients.
//!
//! Each phase time has a known analytic *form* (white box); the
//! coefficients are learned from profiles (black box) — the definition
//! of the paper's "gray-box" estimator:
//!
//! - `t_sample  ≈ w · (|V_i| - |B^0|) / host_throughput`  (Eq. 7)
//! - `t_transfer ≈ w · n_attr |V_i| (1 - hit) / link_bw`  (Eq. 6)
//! - `t_replace ≈ w · replaced_bytes / device_bw + w' ln(cache)` (Eq. 5)
//! - `t_compute ≈ w · FLOPs / (peak · util(|V_i|))`       (Eq. 8)
//!
//! composed by Eq. 4 (`max` when pipelined, sum otherwise). The hit
//! rate itself is predicted by a small random forest (cache dynamics
//! resist clean closed forms).

use crate::context::Context;
use crate::features::hit_rate_features;
use crate::profile::ProfileDb;
use crate::EstimatorError;
use gnnav_ml::{ForestParams, RandomForestRegressor, Regressor, RidgeRegressor, Table, TreeParams};

/// Predicts the cumulative cache hit rate for a candidate.
#[derive(Debug, Clone)]
pub struct HitRatePredictor {
    model: RandomForestRegressor,
    fitted: bool,
}

impl Default for HitRatePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl HitRatePredictor {
    /// Creates an unfitted predictor.
    pub fn new() -> Self {
        let params = ForestParams {
            num_trees: 20,
            tree: TreeParams { max_depth: 7, ..TreeParams::default() },
            feature_fraction: 0.8,
            seed: 11,
        };
        HitRatePredictor { model: RandomForestRegressor::new(params), fitted: false }
    }

    /// Fits on profiled hit rates, using the *measured* batch size as
    /// the coverage feature.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        let vi: Vec<f64> = db.records().iter().map(|r| r.avg_batch_nodes).collect();
        self.fit_with_vi(db, &vi)
    }

    /// Fits against externally supplied batch sizes (the batch
    /// predictor's own estimates — stacking; see
    /// [`crate::GrayBoxEstimator`]).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `vi.len() != db.len()`.
    pub fn fit_with_vi(&mut self, db: &ProfileDb, vi: &[f64]) -> Result<(), EstimatorError> {
        if db.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        assert_eq!(vi.len(), db.len(), "one batch size per record");
        let mut table = Table::with_dims(10);
        for (r, &v) in db.records().iter().zip(vi) {
            table.push_row(&hit_rate_features(&r.context, v), r.hit_rate)?;
        }
        self.model.fit(&table)?;
        self.fitted = true;
        Ok(())
    }

    /// Predicts the hit rate in `[0, 1]` given the predicted `|V_i|`.
    ///
    /// # Panics
    ///
    /// Panics if unfitted.
    pub fn predict(&self, ctx: &Context, vi_pred: f64) -> f64 {
        assert!(self.fitted, "predictor not fitted");
        if ctx.config.cache_ratio == 0.0 {
            return 0.0;
        }
        self.model.predict(&hit_rate_features(ctx, vi_pred)).clamp(0.0, 1.0)
    }
}

/// The four phase-time coefficient models plus Eq. 4 composition.
#[derive(Debug, Clone)]
pub struct TimeEstimator {
    sample: RidgeRegressor,
    transfer: RidgeRegressor,
    replace: RidgeRegressor,
    compute: RidgeRegressor,
    fitted: bool,
}

impl Default for TimeEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// Analytic per-iteration feature for each phase, shared between fit
/// (with measured `vi`/`hit`) and predict (with estimated ones).
fn sample_features(ctx: &Context, vi: f64) -> Vec<f64> {
    let mvps = ctx.platform.host.sample_mvps * 1e6;
    let expansion = (vi - ctx.config.batch_size as f64).max(0.0);
    let edges = vi * ctx.avg_degree;
    vec![expansion / mvps, edges / mvps]
}

fn transfer_features(ctx: &Context, vi: f64, hit: f64) -> Vec<f64> {
    let bytes = vi * (1.0 - hit) * ctx.row_bytes();
    vec![bytes / (ctx.platform.link.bandwidth_gbs * 1e9)]
}

fn replace_features(ctx: &Context, vi: f64, hit: f64) -> Vec<f64> {
    // Only dynamic, updating caches replace entries.
    let active = ctx.config.cache_policy.is_dynamic() && ctx.config.cache_update;
    if !active {
        return vec![0.0, 0.0];
    }
    let bytes = vi * (1.0 - hit) * ctx.row_bytes();
    let entries = ctx.config.cache_ratio * ctx.num_nodes;
    vec![bytes / (ctx.platform.device.mem_bandwidth_gbs * 1e9), (entries + 1.0).ln() * 1e-6]
}

fn compute_features(ctx: &Context, vi: f64) -> Vec<f64> {
    let dev = &ctx.platform.device;
    let speed = match ctx.config.precision {
        gnnav_hwsim::Precision::Fp16 => dev.fp16_speedup,
        _ => 1.0,
    };
    let util = vi / (vi + 8192.0);
    vec![ctx.flops_proxy(vi) / (dev.compute_tflops * 1e12 * util.max(1e-4) * speed)]
}

impl TimeEstimator {
    /// Creates an unfitted time estimator.
    pub fn new() -> Self {
        TimeEstimator {
            sample: RidgeRegressor::new(1e-6),
            transfer: RidgeRegressor::new(1e-6),
            replace: RidgeRegressor::new(1e-6),
            compute: RidgeRegressor::new(1e-6),
            fitted: false,
        }
    }

    /// Fits the four phase coefficient models on profiled phase times,
    /// using the *measured* batch sizes and hit rates as inputs.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    pub fn fit(&mut self, db: &ProfileDb) -> Result<(), EstimatorError> {
        let vi: Vec<f64> = db.records().iter().map(|r| r.avg_batch_nodes).collect();
        let hit: Vec<f64> = db.records().iter().map(|r| r.hit_rate).collect();
        self.fit_with_inputs(db, &vi, &hit)
    }

    /// Fits against externally supplied batch sizes and hit rates (the
    /// upstream predictors' own estimates — stacking; see
    /// [`crate::GrayBoxEstimator`]).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::EmptyProfile`] when `db` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the input lengths disagree with `db.len()`.
    pub fn fit_with_inputs(
        &mut self,
        db: &ProfileDb,
        vi: &[f64],
        hit: &[f64],
    ) -> Result<(), EstimatorError> {
        if db.is_empty() {
            return Err(EstimatorError::EmptyProfile);
        }
        assert_eq!(vi.len(), db.len(), "one batch size per record");
        assert_eq!(hit.len(), db.len(), "one hit rate per record");
        let mut t_sample = Table::with_dims(2);
        let mut t_transfer = Table::with_dims(1);
        let mut t_replace = Table::with_dims(2);
        let mut t_compute = Table::with_dims(1);
        for ((r, &v), &h) in db.records().iter().zip(vi).zip(hit) {
            t_sample.push_row(&sample_features(&r.context, v), r.phase_s[0])?;
            t_transfer.push_row(&transfer_features(&r.context, v, h), r.phase_s[1])?;
            t_replace.push_row(&replace_features(&r.context, v, h), r.phase_s[2])?;
            t_compute.push_row(&compute_features(&r.context, v), r.phase_s[3])?;
        }
        self.sample.fit(&t_sample)?;
        self.transfer.fit(&t_transfer)?;
        self.replace.fit(&t_replace)?;
        self.compute.fit(&t_compute)?;
        self.fitted = true;
        Ok(())
    }

    /// Predicts the epoch time in seconds from the predicted batch
    /// size and hit rate, composing Eq. 4.
    ///
    /// # Panics
    ///
    /// Panics if unfitted.
    pub fn predict(&self, ctx: &Context, vi_pred: f64, hit_pred: f64) -> f64 {
        assert!(self.fitted, "estimator not fitted");
        let ts = self.sample.predict(&sample_features(ctx, vi_pred)).max(0.0);
        let tt = self.transfer.predict(&transfer_features(ctx, vi_pred, hit_pred)).max(0.0);
        let tr = self.replace.predict(&replace_features(ctx, vi_pred, hit_pred)).max(0.0);
        let tc = self.compute.predict(&compute_features(ctx, vi_pred)).max(0.0);
        let iter = if ctx.config.pipelined { (ts + tt).max(tr + tc) } else { ts + tt + tr + tc };
        ctx.n_iter() * iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_size::BatchSizePredictor;
    use crate::profile::Profiler;
    use gnnav_graph::{Dataset, DatasetId};
    use gnnav_hwsim::Platform;
    use gnnav_ml::r2_score;
    use gnnav_nn::ModelKind;
    use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

    fn profiled(seed: u64, n: usize) -> ProfileDb {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(n, ModelKind::Sage, seed);
        profiler.profile(&dataset, &cfgs).expect("profile")
    }

    #[test]
    fn time_estimator_generalizes() {
        let train = profiled(1, 40);
        let test = profiled(77, 12);
        let mut bsz = BatchSizePredictor::new();
        bsz.fit(&train).expect("fit vi");
        let mut hit = HitRatePredictor::new();
        hit.fit(&train).expect("fit hit");
        let mut time = TimeEstimator::new();
        time.fit(&train).expect("fit time");

        let truth: Vec<f64> = test.records().iter().map(|r| r.epoch_time_s).collect();
        let pred: Vec<f64> = test
            .records()
            .iter()
            .map(|r| {
                let vi = bsz.predict(&r.context);
                let h = hit.predict(&r.context, vi);
                time.predict(&r.context, vi, h)
            })
            .collect();
        let r2 = r2_score(&truth, &pred);
        assert!(r2 > 0.5, "epoch-time r2 = {r2}");
    }

    #[test]
    fn hit_rate_zero_without_cache() {
        let train = profiled(2, 25);
        let mut hit = HitRatePredictor::new();
        hit.fit(&train).expect("fit");
        // Build the cacheless context explicitly instead of relying on
        // the random design-space sample to contain one.
        let mut ctx = train.records()[0].context.clone();
        ctx.config.cache_policy = gnnav_cache::CachePolicy::None;
        ctx.config.cache_ratio = 0.0;
        assert_eq!(hit.predict(&ctx, 1000.0), 0.0);
    }

    #[test]
    fn hit_rate_in_unit_interval() {
        let train = profiled(3, 25);
        let mut hit = HitRatePredictor::new();
        hit.fit(&train).expect("fit");
        for r in train.records() {
            let h = hit.predict(&r.context, r.avg_batch_nodes);
            assert!((0.0..=1.0).contains(&h));
        }
    }

    #[test]
    fn empty_profile_rejected() {
        assert!(matches!(
            TimeEstimator::new().fit(&ProfileDb::new()),
            Err(EstimatorError::EmptyProfile)
        ));
        assert!(matches!(
            HitRatePredictor::new().fit(&ProfileDb::new()),
            Err(EstimatorError::EmptyProfile)
        ));
    }
}
