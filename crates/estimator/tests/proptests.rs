//! Property-based tests for the estimator's analytic skeletons.

use gnnav_estimator::Context;
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, TrainingConfig};
use proptest::prelude::*;

fn ctx_with(config: TrainingConfig) -> Context {
    let d = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
    Context::new(&d, &Platform::default_rtx4090(), config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn skeleton_monotone_in_batch_size(b1 in 1usize..512, delta in 1usize..512) {
        let small = TrainingConfig { batch_size: b1, ..TrainingConfig::default() };
        let large = TrainingConfig { batch_size: b1 + delta, ..TrainingConfig::default() };
        prop_assert!(ctx_with(large).batch_skeleton() >= ctx_with(small).batch_skeleton());
    }

    #[test]
    fn flops_proxy_monotone_in_width(h1 in 1usize..64, delta in 1usize..64) {
        let narrow = TrainingConfig { hidden_dim: h1, ..TrainingConfig::default() };
        let wide = TrainingConfig { hidden_dim: h1 + delta, ..TrainingConfig::default() };
        prop_assert!(ctx_with(wide).flops_proxy(500.0) > ctx_with(narrow).flops_proxy(500.0));
    }

    #[test]
    fn cache_bytes_proxy_scales_with_ratio(seed in 0u64..50) {
        for config in DesignSpace::standard().sample(3, ModelKind::Sage, seed) {
            let ctx = ctx_with(config.clone());
            let expected = (config.cache_ratio * ctx.num_nodes).round() * ctx.row_bytes();
            prop_assert_eq!(ctx.cache_bytes_proxy(), expected);
        }
    }

    #[test]
    fn param_count_positive_for_all_sampled_configs(seed in 0u64..50) {
        for config in DesignSpace::standard().sample(4, ModelKind::Sage, seed) {
            let ctx = ctx_with(config);
            prop_assert!(ctx.param_count() > 0.0);
            prop_assert!(ctx.activation_proxy(100.0) > 0.0);
            prop_assert!(ctx.n_iter() >= 1.0);
        }
    }
}
