//! Property-based tests for the sampling substrate.

use gnnav_graph::generators::barabasi_albert;
use gnnav_sampler::{
    LayerWiseSampler, LocalityBias, NodeWiseSampler, Sampler, SubgraphWiseSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn samplers(num_nodes: usize) -> Vec<Box<dyn Sampler>> {
    vec![
        Box::new(NodeWiseSampler::new(vec![4, 4], LocalityBias::none(num_nodes))),
        Box::new(LayerWiseSampler::new(vec![30, 30], LocalityBias::none(num_nodes))),
        Box::new(SubgraphWiseSampler::new(6, LocalityBias::none(num_nodes))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batches_contain_targets_first(seed in 0u64..30, t in 1usize..40) {
        let g = barabasi_albert(400, 3, 7).expect("gen");
        let targets: Vec<u32> = (0..t as u32).collect();
        for s in samplers(g.num_nodes()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mb = s.sample(&g, &targets, &mut rng).expect("sample");
            // Targets first, in order, deduplicated.
            prop_assert_eq!(&mb.nodes[..mb.targets_len], &targets[..]);
            prop_assert_eq!(mb.targets_len, targets.len());
        }
    }

    #[test]
    fn batch_nodes_are_unique_and_in_range(seed in 0u64..30) {
        let g = barabasi_albert(300, 4, 9).expect("gen");
        let targets: Vec<u32> = (0..16).collect();
        for s in samplers(g.num_nodes()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mb = s.sample(&g, &targets, &mut rng).expect("sample");
            let mut sorted = mb.nodes.clone();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), before, "duplicate nodes in batch");
            prop_assert!(sorted.last().is_none_or(|&v| (v as usize) < g.num_nodes()));
        }
    }

    #[test]
    fn subgraph_edges_exist_in_parent(seed in 0u64..20) {
        let g = barabasi_albert(300, 4, 11).expect("gen");
        let targets: Vec<u32> = (0..20).collect();
        for s in samplers(g.num_nodes()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mb = s.sample(&g, &targets, &mut rng).expect("sample");
            for (lu, lv) in mb.subgraph.edges() {
                let (ou, ov) = (mb.nodes[lu as usize], mb.nodes[lv as usize]);
                prop_assert!(g.has_edge(ou, ov));
            }
        }
    }

    #[test]
    fn node_wise_layer_sizes_bounded_by_fanout(
        seed in 0u64..20,
        k in 1usize..8,
        t in 1usize..24,
    ) {
        let g = barabasi_albert(400, 3, 13).expect("gen");
        let targets: Vec<u32> = (0..t as u32).collect();
        let s = NodeWiseSampler::new(vec![k, k], LocalityBias::none(g.num_nodes()));
        let mut rng = StdRng::seed_from_u64(seed);
        let mb = s.sample(&g, &targets, &mut rng).expect("sample");
        // Layer l+1 has at most |layer l| * k fresh nodes.
        let mut prev = targets.len();
        for layer in &mb.layers[1..] {
            prop_assert!(layer.len() <= prev * k, "layer of {} exceeds {} * {}", layer.len(), prev, k);
            // Frontier for the next hop includes revisited nodes, so
            // bound by the selection count, not the fresh count.
            prev *= k;
        }
    }

    #[test]
    fn locality_bias_weights_monotone_in_eta(eta1 in 0.0f64..0.5, delta in 0.01f64..0.5) {
        let bias_lo = LocalityBias::new(10, &[3], eta1);
        let bias_hi = LocalityBias::new(10, &[3], eta1 + delta);
        prop_assert!(bias_hi.weight(3) > bias_lo.weight(3));
        prop_assert_eq!(bias_hi.weight(0), 1.0);
    }

    #[test]
    fn weighted_sample_size_is_min_k_len(k in 0usize..20, len in 1usize..15) {
        let bias = LocalityBias::none(50);
        let candidates: Vec<u32> = (0..len as u32).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let out = bias.weighted_sample_without_replacement(&candidates, None, k, &mut rng);
        prop_assert_eq!(out.len(), k.min(len));
    }
}
