//! Unified mini-batch sampling for the GNNavigator reproduction.
//!
//! The paper abstracts every sampling strategy (Eq. 2) as iterative
//! neighbor fanout at a configurable probability `p(η)`:
//!
//! - [`NodeWiseSampler`] — GraphSAGE-style fanout sampling.
//! - [`LayerWiseSampler`] — FastGCN-style fixed per-layer budgets
//!   (Eq. 3 maps budgets back to expected fanouts).
//! - [`SubgraphWiseSampler`] — GraphSAINT-style random walks ("many
//!   hops, fanout 1").
//! - [`LocalityBias`] — the biased `p(η)` of cache-aware samplers
//!   (2PGraph).
//!
//! # Example
//!
//! ```
//! use gnnav_sampler::{LocalityBias, NodeWiseSampler, Sampler};
//! use gnnav_graph::generators::barabasi_albert;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), gnnav_graph::GraphError> {
//! let g = barabasi_albert(200, 3, 1)?;
//! let sampler = NodeWiseSampler::new(vec![5, 5], LocalityBias::none(g.num_nodes()));
//! let mut rng = StdRng::seed_from_u64(7);
//! let batch = sampler.sample(&g, &[0, 1, 2, 3], &mut rng)?;
//! assert!(batch.num_nodes() >= 4);
//! # Ok(())
//! # }
//! ```

pub mod locality;
pub mod minibatch;
pub mod samplers;

pub use locality::{LocalityBias, HOT_WEIGHT_MAX};
pub use minibatch::{batch_targets, MiniBatch};
pub use samplers::{LayerWiseSampler, NodeWiseSampler, Sampler, SubgraphWiseSampler};
