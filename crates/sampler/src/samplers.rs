//! The three sampler families behind the paper's unified abstraction.
//!
//! Eq. 2 of the paper abstracts every sampler as "fan out `k^l`
//! neighbors per frontier vertex at probability `p(η)`":
//!
//! - [`NodeWiseSampler`] is the direct instantiation (GraphSAGE-style
//!   fanout sampling).
//! - [`LayerWiseSampler`] fixes a per-layer budget `Δ^l` (FastGCN) and
//!   realizes the expected fanout of Eq. 3 by sampling `Δ^l` nodes
//!   from the frontier's neighbor union, importance-weighted by
//!   degree.
//! - [`SubgraphWiseSampler`] is the "many hops, fanout 1" special case
//!   (GraphSAINT random walks).
//!
//! Each sampler accepts a [`LocalityBias`] implementing the biased
//! `p(η)` of cache-aware samplers like 2PGraph.

use crate::locality::LocalityBias;
use crate::minibatch::MiniBatch;
use gnnav_graph::{Graph, GraphError, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// Common interface of all samplers: expand a target set `B^0` into a
/// mini-batch subgraph.
pub trait Sampler: std::fmt::Debug + Send + Sync {
    /// Samples a mini-batch rooted at `targets`.
    ///
    /// # Errors
    ///
    /// Returns an error if a target id is out of range for `g`.
    fn sample(
        &self,
        g: &Graph,
        targets: &[NodeId],
        rng: &mut StdRng,
    ) -> Result<MiniBatch, GraphError>;

    /// Number of sampling hops `L`.
    fn num_layers(&self) -> usize;

    /// The analytic expansion skeleton `Π_l (1 + k^l)` of Eq. 12
    /// (before the learned overlap penalty).
    fn expansion_skeleton(&self) -> f64;
}

/// Node-wise fanout sampler (GraphSAGE).
///
/// Layer `l` selects up to `fanouts[l]` neighbors per frontier vertex,
/// weighted by the locality bias.
#[derive(Debug, Clone)]
pub struct NodeWiseSampler {
    fanouts: Vec<usize>,
    bias: LocalityBias,
}

impl NodeWiseSampler {
    /// Creates a sampler with the given per-layer fanouts and bias.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains 0.
    pub fn new(fanouts: Vec<usize>, bias: LocalityBias) -> Self {
        assert!(!fanouts.is_empty(), "at least one fanout layer required");
        assert!(fanouts.iter().all(|&k| k > 0), "fanouts must be positive");
        NodeWiseSampler { fanouts, bias }
    }

    /// The per-layer fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }
}

impl Sampler for NodeWiseSampler {
    fn sample(
        &self,
        g: &Graph,
        targets: &[NodeId],
        rng: &mut StdRng,
    ) -> Result<MiniBatch, GraphError> {
        validate_targets(g, targets)?;
        let mut layers: Vec<Vec<NodeId>> = vec![targets.to_vec()];
        let mut frontier: Vec<NodeId> = targets.to_vec();
        for &k in &self.fanouts {
            let mut next: Vec<NodeId> = Vec::new();
            let mut in_next = vec![false; g.num_nodes()];
            for &v in &frontier {
                let picked = self.bias.select(g.neighbors(v), None, k, rng);
                for u in picked {
                    if !in_next[u as usize] {
                        in_next[u as usize] = true;
                        next.push(u);
                    }
                }
            }
            layers.push(next.clone());
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        MiniBatch::from_layers(g, layers)
    }

    fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    fn expansion_skeleton(&self) -> f64 {
        self.fanouts.iter().map(|&k| 1.0 + k as f64).product()
    }
}

/// Layer-wise budgeted sampler (FastGCN).
///
/// Layer `l` samples `layer_sizes[l]` nodes from the union of the
/// frontier's neighborhoods, importance-weighted by degree (and the
/// locality bias).
#[derive(Debug, Clone)]
pub struct LayerWiseSampler {
    layer_sizes: Vec<usize>,
    bias: LocalityBias,
}

impl LayerWiseSampler {
    /// Creates a sampler with fixed per-layer node budgets `Δ^l`.
    ///
    /// # Panics
    ///
    /// Panics if `layer_sizes` is empty or contains 0.
    pub fn new(layer_sizes: Vec<usize>, bias: LocalityBias) -> Self {
        assert!(!layer_sizes.is_empty(), "at least one layer required");
        assert!(layer_sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        LayerWiseSampler { layer_sizes, bias }
    }

    /// The per-layer budgets `Δ^l`.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.layer_sizes
    }
}

impl Sampler for LayerWiseSampler {
    fn sample(
        &self,
        g: &Graph,
        targets: &[NodeId],
        rng: &mut StdRng,
    ) -> Result<MiniBatch, GraphError> {
        validate_targets(g, targets)?;
        let mut layers: Vec<Vec<NodeId>> = vec![targets.to_vec()];
        let mut frontier: Vec<NodeId> = targets.to_vec();
        for &delta in &self.layer_sizes {
            // Union of neighbors of the frontier.
            let mut candidates: Vec<NodeId> = Vec::new();
            let mut seen = vec![false; g.num_nodes()];
            for &v in &frontier {
                for &u in g.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        candidates.push(u);
                    }
                }
            }
            let degree_importance = |v: NodeId| g.degree(v) as f64;
            let picked = self.bias.weighted_sample_without_replacement(
                &candidates,
                Some(&degree_importance),
                delta,
                rng,
            );
            layers.push(picked.clone());
            frontier = picked;
            if frontier.is_empty() {
                break;
            }
        }
        MiniBatch::from_layers(g, layers)
    }

    fn num_layers(&self) -> usize {
        self.layer_sizes.len()
    }

    fn expansion_skeleton(&self) -> f64 {
        // Eq. 3: the budget *is* the expected layer size.
        let total: usize = self.layer_sizes.iter().sum();
        1.0 + total as f64
    }
}

/// Subgraph-wise random-walk sampler (GraphSAINT).
///
/// Each target starts a random walk of `walk_length` hops; the batch
/// is the union of visited nodes. Per the paper's unification this is
/// node-wise sampling with many hops and fanout 1.
#[derive(Debug, Clone)]
pub struct SubgraphWiseSampler {
    walk_length: usize,
    bias: LocalityBias,
}

impl SubgraphWiseSampler {
    /// Creates a sampler whose walks take `walk_length` hops.
    ///
    /// # Panics
    ///
    /// Panics if `walk_length == 0`.
    pub fn new(walk_length: usize, bias: LocalityBias) -> Self {
        assert!(walk_length > 0, "walk_length must be > 0");
        SubgraphWiseSampler { walk_length, bias }
    }

    /// The number of hops per walk.
    pub fn walk_length(&self) -> usize {
        self.walk_length
    }
}

impl Sampler for SubgraphWiseSampler {
    fn sample(
        &self,
        g: &Graph,
        targets: &[NodeId],
        rng: &mut StdRng,
    ) -> Result<MiniBatch, GraphError> {
        validate_targets(g, targets)?;
        let mut visited: Vec<Vec<NodeId>> = vec![Vec::new(); self.walk_length];
        for &t in targets {
            let mut cur = t;
            for step in visited.iter_mut() {
                let neigh = g.neighbors(cur);
                if neigh.is_empty() {
                    break;
                }
                // Fanout-1 biased step.
                let next = if self.bias.eta() > 0.0 {
                    self.bias.weighted_sample_without_replacement(neigh, None, 1, rng)[0]
                } else {
                    neigh[rng.gen_range(0..neigh.len())]
                };
                step.push(next);
                cur = next;
            }
        }
        let mut layers = Vec::with_capacity(1 + self.walk_length);
        layers.push(targets.to_vec());
        layers.extend(visited);
        MiniBatch::from_layers(g, layers)
    }

    fn num_layers(&self) -> usize {
        self.walk_length
    }

    fn expansion_skeleton(&self) -> f64 {
        // Fanout 1 per hop: (1 + 1)^hops would overcount heavily since
        // walks revisit; the skeleton is 1 + hops per target.
        1.0 + self.walk_length as f64
    }
}

fn validate_targets(g: &Graph, targets: &[NodeId]) -> Result<(), GraphError> {
    for &t in targets {
        if (t as usize) >= g.num_nodes() {
            return Err(GraphError::NodeOutOfRange { node: t, num_nodes: g.num_nodes() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::generators::barabasi_albert;
    use rand::SeedableRng;

    fn graph() -> Graph {
        barabasi_albert(500, 4, 1).expect("gen")
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn node_wise_respects_fanout_bound() {
        let g = graph();
        let s = NodeWiseSampler::new(vec![5, 5], LocalityBias::none(g.num_nodes()));
        let targets: Vec<u32> = (0..20).collect();
        let mb = s.sample(&g, &targets, &mut rng(2)).expect("sample");
        assert_eq!(mb.targets_len, 20);
        // Layer 1 at most 20 * 5 nodes.
        assert!(mb.layers[1].len() <= 100);
        assert!(mb.num_nodes() <= 20 + 100 + 500);
        assert!(mb.num_nodes() > 20, "should expand");
    }

    #[test]
    fn node_wise_larger_fanout_larger_batch() {
        let g = graph();
        let targets: Vec<u32> = (0..30).collect();
        let small = NodeWiseSampler::new(vec![2, 2], LocalityBias::none(g.num_nodes()))
            .sample(&g, &targets, &mut rng(3))
            .expect("sample");
        let large = NodeWiseSampler::new(vec![10, 10], LocalityBias::none(g.num_nodes()))
            .sample(&g, &targets, &mut rng(3))
            .expect("sample");
        assert!(large.num_nodes() > small.num_nodes());
    }

    #[test]
    fn node_wise_rejects_bad_target() {
        let g = graph();
        let s = NodeWiseSampler::new(vec![3], LocalityBias::none(g.num_nodes()));
        assert!(s.sample(&g, &[9999], &mut rng(1)).is_err());
    }

    #[test]
    fn node_wise_biased_prefers_hot_set() {
        let g = graph();
        let hot: Vec<u32> = (0..50).collect(); // BA early nodes = hubs
        let biased = NodeWiseSampler::new(vec![3, 3], LocalityBias::new(g.num_nodes(), &hot, 1.0));
        let unbiased = NodeWiseSampler::new(vec![3, 3], LocalityBias::none(g.num_nodes()));
        let targets: Vec<u32> = (100..160).collect();
        let hot_frac = |mb: &MiniBatch| {
            let h = mb.nodes.iter().filter(|&&v| v < 50).count();
            h as f64 / mb.num_nodes() as f64
        };
        let mut fb = 0.0;
        let mut fu = 0.0;
        for seed in 0..5 {
            fb += hot_frac(&biased.sample(&g, &targets, &mut rng(seed)).expect("s"));
            fu += hot_frac(&unbiased.sample(&g, &targets, &mut rng(seed)).expect("s"));
        }
        assert!(fb > fu, "biased hot fraction {fb} <= unbiased {fu}");
    }

    #[test]
    fn layer_wise_respects_budget() {
        let g = graph();
        let s = LayerWiseSampler::new(vec![40, 40], LocalityBias::none(g.num_nodes()));
        let targets: Vec<u32> = (0..25).collect();
        let mb = s.sample(&g, &targets, &mut rng(4)).expect("sample");
        assert!(mb.layers[1].len() <= 40);
        assert!(mb.layers.get(2).map_or(0, Vec::len) <= 40);
        // Total bounded by |B0| + Σ Δ^l.
        assert!(mb.num_nodes() <= 25 + 80);
    }

    #[test]
    fn layer_wise_batch_size_stable_vs_node_wise() {
        // The point of layer-wise sampling: |V_i| does not blow up with
        // target count the way node-wise does.
        let g = graph();
        let targets: Vec<u32> = (0..100).collect();
        let lw = LayerWiseSampler::new(vec![50, 50], LocalityBias::none(g.num_nodes()))
            .sample(&g, &targets, &mut rng(5))
            .expect("s");
        let nw = NodeWiseSampler::new(vec![10, 10], LocalityBias::none(g.num_nodes()))
            .sample(&g, &targets, &mut rng(5))
            .expect("s");
        assert!(lw.num_nodes() < nw.num_nodes());
    }

    #[test]
    fn subgraph_wise_visits_along_walks() {
        let g = graph();
        let s = SubgraphWiseSampler::new(8, LocalityBias::none(g.num_nodes()));
        let targets: Vec<u32> = (0..10).collect();
        let mb = s.sample(&g, &targets, &mut rng(6)).expect("sample");
        assert!(mb.num_nodes() > 10);
        // At most 1 new node per hop per target.
        assert!(mb.num_nodes() <= 10 + 10 * 8);
    }

    #[test]
    fn samplers_are_deterministic_given_rng_seed() {
        let g = graph();
        let targets: Vec<u32> = (0..15).collect();
        let s = NodeWiseSampler::new(vec![4, 4], LocalityBias::none(g.num_nodes()));
        let a = s.sample(&g, &targets, &mut rng(7)).expect("s");
        let b = s.sample(&g, &targets, &mut rng(7)).expect("s");
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn expansion_skeletons() {
        let n = NodeWiseSampler::new(vec![10, 5], LocalityBias::none(1));
        assert!((n.expansion_skeleton() - 66.0).abs() < 1e-12);
        let l = LayerWiseSampler::new(vec![30, 30], LocalityBias::none(1));
        assert!((l.expansion_skeleton() - 61.0).abs() < 1e-12);
        let w = SubgraphWiseSampler::new(4, LocalityBias::none(1));
        assert!((w.expansion_skeleton() - 5.0).abs() < 1e-12);
        assert_eq!(n.num_layers(), 2);
        assert_eq!(w.num_layers(), 4);
        assert_eq!(w.walk_length(), 4);
        assert_eq!(n.fanouts(), &[10, 5]);
        assert_eq!(l.layer_sizes(), &[30, 30]);
    }

    #[test]
    #[should_panic(expected = "fanouts must be positive")]
    fn zero_fanout_rejected() {
        let _ = NodeWiseSampler::new(vec![5, 0], LocalityBias::none(1));
    }
}
