//! Mini-batch representation shared by all samplers.

use gnnav_graph::{Graph, GraphError, NodeId};

/// A sampled mini-batch `G_i(V_i, E_i)`.
///
/// Node ordering contract: [`MiniBatch::nodes`] lists the batch's
/// target vertices (`B^0`) first, followed by nodes discovered at each
/// deeper sampling layer, deduplicated. Local ids in
/// [`MiniBatch::subgraph`] index into this list, so the first
/// `targets_len` local ids are exactly the loss rows.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// Per-layer frontiers `B^0..B^L` in original node ids. `B^0` are
    /// the targets; deeper layers hold the *newly discovered* nodes.
    pub layers: Vec<Vec<NodeId>>,
    /// All unique batch nodes (original ids), targets first.
    pub nodes: Vec<NodeId>,
    /// Induced subgraph over `nodes`, with local ids `0..nodes.len()`.
    pub subgraph: Graph,
    /// Number of target vertices (`|B^0|`); local ids `0..targets_len`
    /// are the targets.
    pub targets_len: usize,
}

impl MiniBatch {
    /// Assembles a batch from layered frontiers, inducing the
    /// subgraph. `layers[0]` must be the target set.
    ///
    /// # Errors
    ///
    /// Propagates subgraph-induction errors (out-of-range ids).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or `layers[0]` is empty.
    pub fn from_layers(g: &Graph, layers: Vec<Vec<NodeId>>) -> Result<Self, GraphError> {
        assert!(!layers.is_empty(), "at least the target layer required");
        assert!(!layers[0].is_empty(), "target layer must be non-empty");
        let mut seen = vec![false; g.num_nodes()];
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut dedup_layers: Vec<Vec<NodeId>> = Vec::with_capacity(layers.len());
        for layer in &layers {
            let mut fresh = Vec::new();
            for &v in layer {
                if (v as usize) < g.num_nodes() && !seen[v as usize] {
                    seen[v as usize] = true;
                    nodes.push(v);
                    fresh.push(v);
                }
            }
            dedup_layers.push(fresh);
        }
        let targets_len = dedup_layers[0].len();
        let (subgraph, _) = g.induced_subgraph(&nodes)?;
        Ok(MiniBatch { layers: dedup_layers, nodes, subgraph, targets_len })
    }

    /// `|V_i|`: total unique nodes in the batch.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Edges in the induced subgraph.
    pub fn num_edges(&self) -> usize {
        self.subgraph.num_edges()
    }

    /// Subgraph growth `|V_i| - |B^0|` (the paper's sampling-cost
    /// driver, Eq. 7).
    pub fn expansion(&self) -> usize {
        self.nodes.len() - self.targets_len
    }

    /// Local ids of the target vertices (always `0..targets_len`).
    pub fn target_locals(&self) -> Vec<u32> {
        (0..self.targets_len as u32).collect()
    }
}

/// Splits `ids` into shuffled mini-batch target chunks of
/// `batch_size`, the iteration structure of Algorithm 1 line 1.
///
/// The final chunk may be smaller. Returns an empty vector when `ids`
/// is empty.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn batch_targets(
    ids: &[NodeId],
    batch_size: usize,
    rng: &mut impl rand::Rng,
) -> Vec<Vec<NodeId>> {
    assert!(batch_size > 0, "batch_size must be > 0");
    use rand::seq::SliceRandom;
    let mut shuffled = ids.to_vec();
    shuffled.shuffle(rng);
    shuffled.chunks(batch_size).map(<[NodeId]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..(n - 1) as u32 {
            b.add_edge(v, v + 1);
        }
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn from_layers_orders_targets_first_and_dedups() {
        let g = line(6);
        let mb =
            MiniBatch::from_layers(&g, vec![vec![2, 3], vec![1, 3, 4], vec![0, 1]]).expect("batch");
        assert_eq!(mb.nodes, vec![2, 3, 1, 4, 0]);
        assert_eq!(mb.targets_len, 2);
        assert_eq!(mb.layers[1], vec![1, 4]); // 3 was already seen
        assert_eq!(mb.expansion(), 3);
        assert_eq!(mb.target_locals(), vec![0, 1]);
    }

    #[test]
    fn from_layers_dedups_within_target_layer() {
        let g = line(5);
        // A target repeated in B^0 counts once; targets_len reflects
        // the deduplicated target set so loss rows stay aligned.
        let mb = MiniBatch::from_layers(&g, vec![vec![1, 2, 1], vec![3]]).expect("batch");
        assert_eq!(mb.nodes, vec![1, 2, 3]);
        assert_eq!(mb.targets_len, 2);
        assert_eq!(mb.layers[0], vec![1, 2]);
        assert_eq!(mb.target_locals(), vec![0, 1]);
    }

    #[test]
    fn from_layers_skips_out_of_range_ids() {
        let g = line(4);
        let mb = MiniBatch::from_layers(&g, vec![vec![1, 99], vec![400, 2]]).expect("batch");
        assert_eq!(mb.nodes, vec![1, 2]);
        assert_eq!(mb.targets_len, 1);
        assert_eq!(mb.layers, vec![vec![1], vec![2]]);
    }

    #[test]
    fn from_layers_local_ids_match_node_positions() {
        let g = line(6);
        let mb = MiniBatch::from_layers(&g, vec![vec![4, 2], vec![3, 5]]).expect("batch");
        // The first `targets_len` local ids are exactly the targets,
        // and the subgraph has one local id per unique node.
        assert_eq!(mb.nodes[..mb.targets_len], [4, 2]);
        assert_eq!(mb.subgraph.num_nodes(), mb.nodes.len());
        assert_eq!(mb.num_nodes(), 4);
        assert_eq!(mb.expansion(), 2);
    }

    #[test]
    fn subgraph_preserves_internal_edges() {
        let g = line(5);
        let mb = MiniBatch::from_layers(&g, vec![vec![1], vec![0, 2]]).expect("batch");
        // Local: 1->0, 0->1, 2->2. Edges 1-0 and 1-2 exist.
        assert!(mb.subgraph.has_edge(0, 1));
        assert!(mb.subgraph.has_edge(0, 2));
        assert!(!mb.subgraph.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "target layer must be non-empty")]
    fn empty_targets_rejected() {
        let g = line(3);
        let _ = MiniBatch::from_layers(&g, vec![vec![]]);
    }

    #[test]
    fn batch_targets_partitions() {
        let ids: Vec<u32> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let batches = batch_targets(&ids, 4, &mut rng);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let mut all: Vec<u32> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, ids);
    }

    #[test]
    fn batch_targets_deterministic_per_seed() {
        let ids: Vec<u32> = (0..20).collect();
        let a = batch_targets(&ids, 6, &mut StdRng::seed_from_u64(5));
        let b = batch_targets(&ids, 6, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
