//! Locality-aware neighbor selection bias — the `p(η)` of Eq. 2.
//!
//! Biased samplers (2PGraph's cache-aware sampling) prefer neighbors
//! that are already resident on the device. We model this with a *hot
//! set* of node ids (typically the cache-resident, high-degree nodes)
//! and a bias strength `η ∈ [0, 1]`: at `η = 0` selection is uniform;
//! as `η → 1` hot neighbors become up to `1 + HOT_WEIGHT_MAX`× more
//! likely to be selected.

use gnnav_graph::NodeId;

/// Maximum selection-weight multiplier a hot node can receive
/// (reached at `η = 1`).
pub const HOT_WEIGHT_MAX: f64 = 19.0;

/// A locality bias: hot-node membership plus a strength `η`.
#[derive(Debug, Clone)]
pub struct LocalityBias {
    hot: Vec<bool>,
    eta: f64,
}

impl LocalityBias {
    /// Creates a bias over `num_nodes` nodes marking `hot_nodes` as
    /// hot, with strength `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not in `[0, 1]` or a hot id is out of range.
    pub fn new(num_nodes: usize, hot_nodes: &[NodeId], eta: f64) -> Self {
        assert!((0.0..=1.0).contains(&eta), "eta must be in [0, 1]");
        let mut hot = vec![false; num_nodes];
        for &v in hot_nodes {
            hot[v as usize] = true;
        }
        LocalityBias { hot, eta }
    }

    /// An unbiased placeholder (`η = 0`, empty hot set).
    pub fn none(num_nodes: usize) -> Self {
        LocalityBias { hot: vec![false; num_nodes], eta: 0.0 }
    }

    /// Bias strength `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Whether node `v` is hot.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_hot(&self, v: NodeId) -> bool {
        self.hot[v as usize]
    }

    /// Selection weight of node `v`: `1 + η·(HOT_WEIGHT_MAX)` when hot,
    /// `1` otherwise.
    pub fn weight(&self, v: NodeId) -> f64 {
        if self.hot[v as usize] {
            1.0 + self.eta * HOT_WEIGHT_MAX
        } else {
            1.0
        }
    }

    /// Samples `k` items from `candidates` without replacement,
    /// proportional to [`LocalityBias::weight`] (times `extra_weight`
    /// per candidate when provided, e.g. degree importance).
    ///
    /// Returns all candidates when `k >= candidates.len()`.
    pub fn weighted_sample_without_replacement(
        &self,
        candidates: &[NodeId],
        extra_weight: Option<&dyn Fn(NodeId) -> f64>,
        k: usize,
        rng: &mut impl rand::Rng,
    ) -> Vec<NodeId> {
        if k >= candidates.len() {
            return candidates.to_vec();
        }
        // Efraimidis–Spirakis reservoir: key = u^(1/w); take top-k.
        let mut keyed: Vec<(f64, NodeId)> = candidates
            .iter()
            .map(|&v| {
                let mut w = self.weight(v);
                if let Some(f) = extra_weight {
                    w *= f(v).max(1e-12);
                }
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (u.powf(1.0 / w), v)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
        keyed.truncate(k);
        keyed.into_iter().map(|(_, v)| v).collect()
    }

    /// Biased selection of up to `k` candidates.
    ///
    /// When `k < candidates.len()` this is
    /// [`LocalityBias::weighted_sample_without_replacement`]. When the
    /// fanout covers the whole candidate set, an unbiased sampler
    /// returns everything — but a cache-aware sampler (2PGraph) still
    /// prunes: hot candidates are always kept while each cold
    /// candidate is dropped with probability
    /// [`COLD_DROP_AT_FULL_ETA`]` · η`, shrinking the mini-batch
    /// toward cache-resident vicinity (the accuracy/time trade of the
    /// paper's Fig. 1b). At least one candidate is always kept when
    /// the input is non-empty.
    pub fn select(
        &self,
        candidates: &[NodeId],
        extra_weight: Option<&dyn Fn(NodeId) -> f64>,
        k: usize,
        rng: &mut impl rand::Rng,
    ) -> Vec<NodeId> {
        if k < candidates.len() {
            return self.weighted_sample_without_replacement(candidates, extra_weight, k, rng);
        }
        if self.eta == 0.0 || candidates.is_empty() {
            return candidates.to_vec();
        }
        let drop_p = COLD_DROP_AT_FULL_ETA * self.eta;
        let mut kept: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&v| self.is_hot(v) || rng.gen::<f64>() >= drop_p)
            .collect();
        if kept.is_empty() {
            kept.push(candidates[rng.gen_range(0..candidates.len())]);
        }
        kept
    }
}

/// Probability that a cold (non-resident) candidate is pruned when the
/// fanout already covers the whole neighborhood, at `η = 1`.
pub const COLD_DROP_AT_FULL_ETA: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weight_reflects_eta() {
        let b = LocalityBias::new(4, &[1], 0.5);
        assert_eq!(b.weight(0), 1.0);
        assert!((b.weight(1) - (1.0 + 0.5 * HOT_WEIGHT_MAX)).abs() < 1e-12);
        assert!(b.is_hot(1) && !b.is_hot(2));
        assert_eq!(b.eta(), 0.5);
    }

    #[test]
    fn none_is_uniform() {
        let b = LocalityBias::none(3);
        assert_eq!(b.weight(0), 1.0);
        assert_eq!(b.eta(), 0.0);
    }

    #[test]
    #[should_panic(expected = "eta must be in [0, 1]")]
    fn rejects_bad_eta() {
        let _ = LocalityBias::new(3, &[], 1.5);
    }

    #[test]
    fn sample_returns_all_when_k_large() {
        let b = LocalityBias::none(5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = b.weighted_sample_without_replacement(&[0, 1, 2], None, 10, &mut rng);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn sample_without_replacement_has_no_duplicates() {
        let b = LocalityBias::new(100, &[0, 1, 2], 1.0);
        let candidates: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let out = b.weighted_sample_without_replacement(&candidates, None, 30, &mut rng);
        assert_eq!(out.len(), 30);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn strong_bias_prefers_hot_nodes() {
        let hot: Vec<u32> = (0..10).collect();
        let b = LocalityBias::new(100, &hot, 1.0);
        let candidates: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut hot_picks = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let out = b.weighted_sample_without_replacement(&candidates, None, 10, &mut rng);
            hot_picks += out.iter().filter(|&&v| v < 10).count();
        }
        // Uniform would pick ~1 hot node per draw of 10 (10% of 10);
        // with 10x weight the hot share must be much higher.
        let avg = hot_picks as f64 / trials as f64;
        assert!(avg > 3.0, "avg hot picks {avg}");
    }

    #[test]
    fn extra_weight_composes() {
        let b = LocalityBias::none(10);
        let candidates: Vec<u32> = (0..10).collect();
        let degree_like = |v: NodeId| if v == 7 { 1000.0 } else { 0.001 };
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0;
        for _ in 0..50 {
            let out =
                b.weighted_sample_without_replacement(&candidates, Some(&degree_like), 1, &mut rng);
            if out[0] == 7 {
                hits += 1;
            }
        }
        assert!(hits > 40, "node 7 picked {hits}/50");
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn select_falls_back_to_weighted_sampling_below_full_fanout() {
        let b = LocalityBias::new(10, &[0], 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = b.select(&[0, 1, 2, 3, 4], None, 2, &mut rng);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn select_unbiased_keeps_everything_at_full_fanout() {
        let b = LocalityBias::none(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(b.select(&[0, 1, 2], None, 10, &mut rng), vec![0, 1, 2]);
    }

    #[test]
    fn select_biased_prunes_cold_keeps_hot_at_full_fanout() {
        let hot: Vec<u32> = vec![0, 1];
        let b = LocalityBias::new(40, &hot, 1.0);
        let candidates: Vec<u32> = (0..40).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cold_total = 0usize;
        for _ in 0..50 {
            let out = b.select(&candidates, None, 100, &mut rng);
            assert!(out.contains(&0) && out.contains(&1), "hot always kept");
            cold_total += out.iter().filter(|&&v| v >= 2).count();
        }
        let avg_cold = cold_total as f64 / 50.0;
        // 38 cold candidates, kept with prob 1 - 0.6 = 0.4 -> ~15.2.
        assert!(avg_cold > 10.0 && avg_cold < 21.0, "avg cold kept {avg_cold}");
    }

    #[test]
    fn select_never_returns_empty_for_nonempty_input() {
        let b = LocalityBias::new(3, &[], 1.0); // all cold, max drop
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            assert!(!b.select(&[0, 1, 2], None, 5, &mut rng).is_empty());
        }
    }
}
