//! Doc-vs-code audit of the metric-series catalogue.
//!
//! Every markdown table headed by a `Series` column — the catalogue
//! in `names.rs` itself, the README highlights and serving tables,
//! and `docs/SERVING.md` — must only document series that exist in
//! `gnnav_obs::names`; and the `names.rs` catalogue must document
//! every declared series. A renamed or removed metric therefore
//! fails this test instead of silently drifting the docs.

use std::collections::BTreeSet;

const NAMES_RS: &str = include_str!("../src/names.rs");

/// Doc files audited against the catalogue, relative to this crate.
const DOC_PATHS: &[&str] = &[
    "../../README.md",
    "../../docs/SERVING.md",
    "../../docs/OBSERVABILITY.md",
    "../../docs/DURABILITY.md",
    "../../docs/ARCHITECTURE.md",
];

/// Registry series declared in `names.rs`: every `pub const … : &str`
/// before the journal-tracks section. The `faults.injected.` per-kind
/// prefix is a name prefix, not a series, and is excluded.
fn declared_series() -> BTreeSet<String> {
    let head = NAMES_RS
        .split("// --- journal tracks and events")
        .next()
        .expect("names.rs keeps its journal-tracks marker");
    let mut out = BTreeSet::new();
    for line in head.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("pub const ") else { continue };
        let Some(eq) = rest.find('=') else { continue };
        let value = rest[eq + 1..].trim();
        let Some(open) = value.find('"') else { continue };
        let Some(close) = value.rfind('"') else { continue };
        if close > open {
            let name = &value[open + 1..close];
            if !name.ends_with('.') {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// Drops `//!` doc-comment framing so the in-source catalogue parses
/// like any other markdown.
fn strip_doc_comment(line: &str) -> &str {
    let line = line.trim_start();
    line.strip_prefix("//!").map(str::trim_start).unwrap_or(line)
}

/// First cells of every row of every markdown table whose header's
/// first column is `Series` (any case).
fn series_table_first_cells(text: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut in_table = false;
    for raw in text.lines() {
        let line = strip_doc_comment(raw);
        if !line.starts_with('|') {
            in_table = false;
            continue;
        }
        let first = line.trim_start_matches('|').split('|').next().unwrap_or("").trim();
        if first.eq_ignore_ascii_case("series") {
            in_table = true;
            continue;
        }
        if !in_table || first.chars().all(|c| matches!(c, '-' | ':' | ' ')) {
            continue;
        }
        cells.push(first.to_string());
    }
    cells
}

/// The backticked tokens of a table cell, in order.
fn backticked(cell: &str) -> Vec<&str> {
    cell.split('`').skip(1).step_by(2).collect()
}

/// Removes `[...]` optional segments (nesting-aware): the audit
/// checks the base name; the optional tail is a span-path suffix.
fn strip_optionals(token: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in token.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Expands `{a,b}` alternation (nesting-aware):
/// `backend.{loss.{last,mean},peak_mem_bytes}` yields three names.
fn expand_braces(name: &str) -> Vec<String> {
    let Some(open) = name.find('{') else {
        return vec![name.to_string()];
    };
    let bytes = name.as_bytes();
    let mut depth = 0usize;
    let mut close = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else {
        return vec![name.to_string()];
    };
    let (prefix, suffix, inner) = (&name[..open], &name[close + 1..], &name[open + 1..close]);
    let mut alternatives = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            ',' if depth == 0 => {
                alternatives.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    alternatives.push(&inner[start..]);
    let mut out = Vec::new();
    for alt in alternatives {
        out.extend(expand_braces(&format!("{prefix}{alt}{suffix}")));
    }
    out
}

/// All series names documented by `Series`-headed tables in `text`.
///
/// A token starting with `.` is shorthand continuing the previous
/// name (`` `backend.loss.last` / `.mean` `` documents
/// `backend.loss.mean`): it replaces the same number of trailing
/// segments. `<kind>`-style placeholder rows are skipped.
fn documented_series(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for cell in series_table_first_cells(text) {
        let mut last: Option<String> = None;
        for token in backticked(&cell) {
            if token.contains('<') {
                continue;
            }
            let token = strip_optionals(token);
            if let Some(tail) = token.strip_prefix('.') {
                let Some(base) = &last else { continue };
                let segments: Vec<&str> = base.split('.').collect();
                let replaced = tail.split('.').count();
                if segments.len() > replaced {
                    let stem = segments[..segments.len() - replaced].join(".");
                    out.extend(expand_braces(&format!("{stem}.{tail}")));
                }
                continue;
            }
            let valid = token
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{},".contains(c));
            if !valid || !token.contains('.') {
                continue;
            }
            let expanded = expand_braces(&token);
            last = expanded.first().cloned();
            out.extend(expanded);
        }
    }
    out
}

/// Whether `name` is a declared series, or a hierarchical span
/// histogram path-joined under one (`profiler.sweep.config` nests
/// under the declared `profiler.sweep`).
fn exists(declared: &BTreeSet<String>, name: &str) -> bool {
    declared.contains(name)
        || declared
            .iter()
            .any(|d| name.starts_with(d.as_str()) && name.as_bytes().get(d.len()) == Some(&b'.'))
}

#[test]
fn every_documented_series_exists_in_the_catalogue() {
    let declared = declared_series();
    assert!(declared.len() > 60, "catalogue parse broke: {declared:?}");

    let mut sources: Vec<(String, String)> = vec![("names.rs".into(), NAMES_RS.into())];
    for path in DOC_PATHS {
        let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {path}: {e}"));
        sources.push(((*path).into(), text));
    }

    let mut total = 0usize;
    let mut unknown = Vec::new();
    for (source, text) in &sources {
        for name in documented_series(text) {
            total += 1;
            if !exists(&declared, &name) {
                unknown.push(format!("{source}: {name}"));
            }
        }
    }
    assert!(unknown.is_empty(), "docs mention series that do not exist:\n{}", unknown.join("\n"));
    // The catalogue, the README, and SERVING.md all contribute rows.
    assert!(total > 100, "series-table scan found too few rows ({total}) — parser broke?");
}

#[test]
fn catalogue_documents_every_declared_series() {
    let declared = declared_series();
    let documented = documented_series(NAMES_RS);
    let missing: Vec<&String> = declared.iter().filter(|d| !documented.contains(*d)).collect();
    assert!(
        missing.is_empty(),
        "series declared in names.rs but missing from its catalogue table: {missing:?}"
    );
}

#[test]
fn serving_docs_cover_every_serve_series() {
    // docs/SERVING.md's metering catalogue must list every serve.*
    // series — it is the reference the server's operators read.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVING.md");
    let documented = documented_series(&std::fs::read_to_string(path).expect("read SERVING.md"));
    let missing: Vec<String> = declared_series()
        .iter()
        .filter(|d| d.starts_with("serve.") && !documented.contains(*d))
        .cloned()
        .collect();
    assert!(missing.is_empty(), "serve.* series missing from docs/SERVING.md: {missing:?}");
}

#[test]
fn brace_and_optional_expansion_handles_nesting() {
    assert_eq!(
        expand_braces("backend.{loss.{last,mean},peak_mem_bytes}"),
        vec!["backend.loss.last", "backend.loss.mean", "backend.peak_mem_bytes"]
    );
    assert_eq!(
        strip_optionals("profiler.sweep.config[.backend.execute[.epoch]]"),
        "profiler.sweep.config"
    );
    assert_eq!(expand_braces("serve.pool.{hits,misses,evictions}").len(), 3);
}
