//! Minimal JSON formatting and parsing helpers.
//!
//! The workspace builds fully offline, so the exporters
//! ([`Snapshot::to_json`](crate::Snapshot::to_json), the Chrome trace
//! writer, the explorer audit dump) hand-roll their JSON through the
//! formatting helpers here, and `gnnavigate metrics-diff` reads
//! snapshots back through the tiny recursive-descent parser. The
//! parser covers the whole JSON grammar (it is ~150 lines), not just
//! the snapshot schema, so trace and audit files can be validated with
//! it in tests.

use std::collections::BTreeMap;
use std::fmt;

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip float formatting; integral values keep a
        // trailing `.0` so the type is unambiguous.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced for non-finite numbers on export).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is not preserved (keys sort).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|c| c >= 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut s = String::new();
        push_string(&mut s, "a\"b\\c\nd\te\u{1}");
        let v = parse(&s).expect("parse");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "e": "x"}"#)
            .expect("parse");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-0.03));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.0, -0.0, 1.5, -4.25e18, 5e-324, 1e15, 999_999_999_999_999.9] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let back = parse(&s).expect("parse").as_f64().expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
