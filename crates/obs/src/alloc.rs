//! Opt-in whole-process allocation telemetry.
//!
//! This crate installs a counting [`GlobalAlloc`] wrapper around
//! [`std::alloc::System`] for every binary in the workspace. While
//! tracking is **off** (the default) each allocator call costs
//! exactly one relaxed atomic load and a not-taken branch before
//! delegating to the system allocator — the `obs_overhead` bench pins
//! this. While **on**, it counts allocations, frees, bytes, and the
//! live-byte peak in process-wide atomics.
//!
//! Tracking follows the *global* registry's switch: calling
//! [`Registry::enable`](crate::Registry::enable) on
//! [`global()`](crate::global) toggles it (isolated registries in
//! tests leave process state alone), and [`set_tracking`] toggles it
//! directly for tight measurement windows.
//!
//! The runtime backend samples [`stats`] around its per-batch
//! training hot path and surfaces the deltas as `alloc.*` gauges plus
//! an `alloc` journal instant; the
//! `alloc.steady_state_allocs_per_epoch` counter turns the "training
//! steady state performs zero heap allocation" claim into a
//! CI-gated invariant (see `docs/OBSERVABILITY.md`).
//!
//! Counts are process-wide: a concurrent thread allocating inside a
//! measurement window is charged to it. Measurement windows that must
//! be exact therefore run single-threaded (the perf baseline pins
//! `GNNAV_THREADS=1`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

struct CountingAlloc;

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREE_BYTES: AtomicU64 = AtomicU64::new(0);
// Signed: frees of memory allocated before tracking was enabled would
// otherwise underflow.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// The slow path is deliberately out of line so the disabled fast
/// path stays a load + branch + tail call.
#[cold]
#[inline(never)]
fn record_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[cold]
#[inline(never)]
fn record_free(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    FREE_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        System.alloc(layout)
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            record_free(layout.size());
        }
        System.dealloc(ptr, layout)
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            record_free(layout.size());
            record_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Point-in-time allocator counters. Counters only move while
/// tracking is on; they are never reset (take deltas with
/// [`AllocStats::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations observed (reallocs count one alloc + one free).
    pub allocs: u64,
    /// Heap frees observed.
    pub frees: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Bytes freed.
    pub free_bytes: u64,
    /// Live (allocated minus freed) bytes right now, clamped at zero.
    pub live_bytes: u64,
    /// High-water mark of live bytes since tracking first ran.
    pub peak_bytes: u64,
}

impl AllocStats {
    /// Counter deltas since `earlier` (saturating); `live_bytes` and
    /// `peak_bytes` keep their current absolute values, since a
    /// point-in-time level has no meaningful delta.
    pub fn delta_since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            free_bytes: self.free_bytes.saturating_sub(earlier.free_bytes),
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Turns allocation tracking on or off.
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// Whether allocation tracking is on.
#[inline]
pub fn is_tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Reads the current allocator counters.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        free_bytes: FREE_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracking state is process-wide; serialize the tests that
    /// toggle it.
    static TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn tracking_switch_gates_recording() {
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        // Disabled: allocations leave the counters untouched.
        assert!(!is_tracking());
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        assert_eq!(stats(), before, "disabled path must be a passthrough");

        // Enabled: an allocation and its free are both observed.
        set_tracking(true);
        let t0 = stats();
        let v: Vec<u8> = Vec::with_capacity(8192);
        drop(v);
        set_tracking(false);
        let d = stats().delta_since(&t0);
        assert!(d.allocs >= 1, "{d:?}");
        assert!(d.frees >= 1, "{d:?}");
        assert!(d.alloc_bytes >= 8192, "{d:?}");
        assert!(d.free_bytes >= 8192, "{d:?}");
        assert!(stats().peak_bytes >= 8192);

        // Off again: quiescent.
        let after = stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        assert_eq!(stats(), after);
    }

    #[test]
    fn realloc_counts_a_free_and_an_alloc() {
        let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
        set_tracking(true);
        let t0 = stats();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        v.resize(1024, 0u8); // forces realloc
        drop(v);
        set_tracking(false);
        let d = stats().delta_since(&t0);
        assert!(d.allocs >= 2, "{d:?}");
        assert!(d.frees >= 2, "{d:?}");
    }
}
