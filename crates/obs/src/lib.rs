//! **gnnav-obs** — dependency-light observability for the GNNavigator
//! runtime.
//!
//! Three primitives, one registry:
//!
//! - **Counters** — monotonically increasing `u64` (cache hits/misses,
//!   candidates evaluated, profiled records, ...).
//! - **Gauges** — last-write-wins `f64` (per-phase epoch time, MAPE,
//!   Pareto-front size, ...).
//! - **Histograms** — streaming summaries (count/sum/min/max/last) of
//!   `f64` observations; span timers record wall seconds here.
//!
//! [`Registry::span`] gives hierarchical RAII wall-clock timers: spans
//! started while another span is open on the same thread record under
//! the dotted path of their ancestors (`backend.execute.epoch`).
//!
//! A registry is **disabled by default** and every recording call
//! starts with one relaxed atomic load, so instrumentation compiled
//! into hot paths costs near zero until someone opts in (the
//! `obs_overhead` bench in `gnnav-bench` pins this). Snapshots export
//! as deterministic, sorted-key JSON via [`Snapshot::to_json`] so
//! benchmark PRs can diff machine-readable metrics files.
//!
//! # Example
//!
//! ```
//! use gnnav_obs::global;
//!
//! global().enable(true);
//! global().add("demo.events", 3);
//! global().gauge_set("demo.level", 0.75);
//! {
//!     let _t = global().span("demo.work");
//!     // ... timed region ...
//! }
//! let snap = global().snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! assert!(snap.to_json().contains("\"demo.level\""));
//! # global().reset();
//! # global().enable(false);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub mod names;

/// Streaming summary of one histogram series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Most recent observation.
    pub last: f64,
}

impl HistogramSummary {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct HistogramData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl HistogramData {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.last = v;
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            last: self.last,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>, // f64 bit patterns
    histograms: BTreeMap<String, Arc<Mutex<HistogramData>>>,
}

/// A metrics registry: the shared sink all instrumentation writes to.
///
/// Cloneless sharing happens through [`global`]; isolated registries
/// (tests, embedders) are created with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

impl Registry {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Turns recording on or off. While off, every recording method
    /// returns after a single relaxed atomic load.
    pub fn enable(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauge_cell(name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records `value` into the histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let cell = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(inner.histograms.entry(name.to_string()).or_default())
        };
        cell.lock().unwrap_or_else(|e| e.into_inner()).observe(value);
    }

    /// Records `d` (in seconds) into the histogram `name`.
    #[inline]
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_secs_f64());
    }

    /// Starts a hierarchical wall-clock span. The elapsed time lands
    /// in a histogram named after the dotted path of enclosing spans
    /// when the guard drops. Inert (no clock read) while disabled.
    #[inline]
    pub fn span<'r>(&'r self, name: &'static str) -> Span<'r> {
        if !self.is_enabled() {
            return Span { registry: self, start: None, path: String::new() };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join(".")
        });
        Span { registry: self, start: Some(Instant::now()), path }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Reads the current value of counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Reads the current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.get(name).map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Takes a consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            enabled: self.is_enabled(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().unwrap_or_else(|e| e.into_inner()).summary()))
                .collect(),
        }
    }

    /// Drops every metric series (the enabled flag is untouched).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Inner::default();
    }
}

/// RAII wall-clock timer returned by [`Registry::span`].
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span<'r> {
    registry: &'r Registry,
    start: Option<Instant>,
    path: String,
}

impl Span<'_> {
    /// Elapsed time so far (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.start.map_or(Duration::ZERO, |s| s.elapsed())
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            self.registry.observe(&self.path, start.elapsed().as_secs_f64());
        }
    }
}

/// Point-in-time copy of a registry, exportable as JSON or a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Whether the source registry was recording.
    pub enabled: bool,
    /// All counters.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, f64>,
    /// All histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip float formatting; integral values keep a
        // trailing `.0` so the type is unambiguous.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

impl Snapshot {
    /// Serializes as pretty-printed JSON with deterministically sorted
    /// keys. Schema:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "enabled": true,
    ///   "counters": { "name": 42 },
    ///   "gauges": { "name": 1.5 },
    ///   "histograms": {
    ///     "name": {"count": 3, "sum": 0.9, "min": 0.1, "max": 0.5,
    ///              "mean": 0.3, "last": 0.2}
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"version\": 1,\n  \"enabled\": ");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, k);
            out.push_str(": ");
            push_json_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, k);
            out.push_str(": {");
            out.push_str(&format!("\"count\": {}, \"sum\": ", h.count));
            push_json_f64(&mut out, h.sum);
            out.push_str(", \"min\": ");
            push_json_f64(&mut out, h.min);
            out.push_str(", \"max\": ");
            push_json_f64(&mut out, h.max);
            out.push_str(", \"mean\": ");
            push_json_f64(&mut out, h.mean());
            out.push_str(", \"last\": ");
            push_json_f64(&mut out, h.last);
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a human-readable table (the CLI's `--verbose` output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<40} {v:.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<40} {} / {:.6} / {:.6} / {:.6}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        out
    }
}

/// The process-wide registry all built-in instrumentation writes to.
/// Disabled until someone calls `global().enable(true)`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.add("c", 5);
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        {
            let _s = r.span("s");
        }
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(!snap.enabled);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.enable(true);
        r.add("c", 2);
        r.add("c", 3);
        r.gauge_set("g", 1.0);
        r.gauge_set("g", -4.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], -4.5);
        assert_eq!(r.counter_value("c"), 5);
        assert_eq!(r.gauge_value("g"), Some(-4.5));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let r = Registry::new();
        r.enable(true);
        for v in [3.0, 1.0, 2.0] {
            r.observe("h", v);
        }
        let h = r.snapshot().histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.last, 2.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let r = Registry::new();
        r.enable(true);
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let snap = r.snapshot();
        assert!(snap.histograms.contains_key("outer"), "{:?}", snap.histograms);
        assert!(snap.histograms.contains_key("outer.inner"));
        assert!(snap.histograms["outer"].sum >= snap.histograms["outer.inner"].sum);
        // The stack unwound: a fresh span is top-level again.
        {
            let _again = r.span("again");
        }
        assert!(r.snapshot().histograms.contains_key("again"));
    }

    #[test]
    fn json_snapshot_is_sorted_and_parsable_shape() {
        let r = Registry::new();
        r.enable(true);
        r.add("b.count", 1);
        r.add("a.count", 2);
        r.gauge_set("z.value", 0.5);
        r.observe("t.hist", 1.25);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\n  \"version\": 1"));
        assert!(json.find("\"a.count\"").unwrap() < json.find("\"b.count\"").unwrap());
        assert!(json.contains("\"z.value\": 0.5"));
        assert!(json.contains("\"count\": 1, \"sum\": 1.25"));
        assert!(json.trim_end().ends_with('}'));
        // Balanced braces (cheap structural sanity check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        let r = Registry::new();
        r.enable(true);
        r.gauge_set("weird\"name\\with\tescapes", f64::NAN);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\with\\tescapes\": null"));
    }

    #[test]
    fn reset_clears_series() {
        let r = Registry::new();
        r.enable(true);
        r.add("c", 1);
        r.reset();
        assert_eq!(r.counter_value("c"), 0);
        assert!(r.is_enabled(), "reset must not flip the enabled bit");
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        r.enable(true);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.add("par", 1);
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(r.counter_value("par"), 8000);
    }

    #[test]
    fn table_rendering_mentions_every_series() {
        let r = Registry::new();
        r.enable(true);
        r.add("events", 7);
        r.gauge_set("level", 0.25);
        r.observe("latency", 0.5);
        let table = r.snapshot().to_table();
        assert!(table.contains("events"));
        assert!(table.contains("level"));
        assert!(table.contains("latency"));
    }
}
