//! **gnnav-obs** — dependency-light observability for the GNNavigator
//! runtime.
//!
//! Three aggregate primitives plus a timeline, one registry:
//!
//! - **Counters** — monotonically increasing `u64` (cache hits/misses,
//!   candidates evaluated, profiled records, ...).
//! - **Gauges** — last-write-wins `f64` (per-phase epoch time, MAPE,
//!   Pareto-front size, ...).
//! - **Histograms** — streaming summaries of `f64` observations with
//!   fixed log-spaced buckets, so snapshots report p50/p95/p99 next to
//!   count/sum/min/max; span timers record wall seconds here.
//! - **[`Journal`]** — a bounded ring of time-ordered events (spans,
//!   instants, counter samples) with dual wall/simulated timestamps,
//!   exportable as Chrome trace-event JSON (see [`journal`]).
//!
//! On top of the journal sit the trace analytics: [`tree`] rebuilds
//! the span forest (from a live snapshot or a saved `--trace-out`
//! file), [`critical`] extracts the critical path and per-epoch phase
//! attribution behind `gnnavigate --trace-summary`, [`flame`] exports
//! flamegraph folded stacks, and [`tracediff`] powers the
//! `gnnavigate trace-diff` regression gate. [`alloc`] meters the
//! process allocator behind the same enable switch.
//!
//! [`Registry::span`] gives hierarchical RAII wall-clock timers: spans
//! started while another span is open on the same thread record under
//! the dotted path of their ancestors (`backend.execute.epoch`).
//! Worker threads have their own (empty) span stacks, so code that
//! fans out uses [`Registry::span_under`] to re-anchor spans beneath
//! an explicit parent path.
//!
//! A registry is **disabled by default** and every recording call
//! starts with one relaxed atomic load, so instrumentation compiled
//! into hot paths costs near zero until someone opts in (the
//! `obs_overhead` bench in `gnnav-bench` pins this). On the enabled
//! path, histogram cells are memoized per thread (and available as
//! pre-registered [`Histogram`] handles), so repeated observations of
//! one series do not take the global registry lock. Snapshots export
//! as deterministic, sorted-key JSON via [`Snapshot::to_json`], parse
//! back with [`Snapshot::from_json`], and diff against a baseline with
//! [`diff::diff_snapshots`] — the machinery behind the
//! `gnnavigate metrics-diff` regression gate.
//!
//! # Example
//!
//! ```
//! use gnnav_obs::global;
//!
//! global().enable(true);
//! global().add("demo.events", 3);
//! global().gauge_set("demo.level", 0.75);
//! {
//!     let _t = global().span("demo.work");
//!     // ... timed region ...
//! }
//! let snap = global().snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! assert!(snap.to_json().contains("\"demo.level\""));
//! # global().reset();
//! # global().enable(false);
//! ```

#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub mod alloc;
pub mod critical;
pub mod diff;
pub mod flame;
pub mod journal;
pub mod json;
pub mod names;
pub mod tracediff;
pub mod tree;

pub use journal::{ArgValue, Event, EventKind, Journal, JournalSnapshot};

// --- histogram buckets ----------------------------------------------
//
// Fixed log-spaced buckets covering 1e-9 ..= 1e9 (attoseconds-to-years
// when observing seconds; bytes-to-gigabytes when observing sizes)
// with 8 buckets per decade, so neighbouring bucket bounds differ by
// 10^(1/8) ≈ 1.33 and log-interpolated quantiles are accurate to a
// few percent. Observations below the floor (including zero and
// negatives) land in an underflow cell and report `min`; observations
// at or above the ceiling land in an overflow cell and report `max`.

const BUCKET_FLOOR: f64 = 1e-9;
const BUCKET_CEIL: f64 = 1e9;
const BUCKETS_PER_DECADE: usize = 8;
const BUCKET_DECADES: usize = 18;
const NUM_RANGE_BUCKETS: usize = BUCKETS_PER_DECADE * BUCKET_DECADES;
const NUM_CELLS: usize = NUM_RANGE_BUCKETS + 2; // + underflow + overflow

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < BUCKET_FLOOR {
        return 0; // underflow (also zero, negatives, NaN)
    }
    if v >= BUCKET_CEIL {
        return NUM_CELLS - 1;
    }
    let i = ((v / BUCKET_FLOOR).log10() * BUCKETS_PER_DECADE as f64).floor();
    (1 + (i as usize)).min(NUM_CELLS - 2)
}

fn bucket_lower_bound(cell: usize) -> f64 {
    debug_assert!((1..=NUM_RANGE_BUCKETS).contains(&cell));
    BUCKET_FLOOR * 10f64.powf((cell - 1) as f64 / BUCKETS_PER_DECADE as f64)
}

/// Streaming summary of one histogram series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Most recent observation.
    pub last: f64,
    /// Median (log-interpolated from the fixed buckets).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct HistogramData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
    buckets: Vec<u64>, // NUM_CELLS entries, allocated on first observe
}

impl HistogramData {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
            self.buckets = vec![0; NUM_CELLS];
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.last = v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Log-interpolated quantile estimate, clamped to `[min, max]`.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (cell, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                if cell == 0 {
                    return self.min;
                }
                if cell == NUM_CELLS - 1 {
                    return self.max;
                }
                let lo = bucket_lower_bound(cell);
                let step = 10f64.powf(1.0 / BUCKETS_PER_DECADE as f64);
                let into = (rank - (cum - c)) as f64 / c as f64;
                return (lo * step.powf(into)).clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            last: self.last,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>, // f64 bit patterns
    histograms: BTreeMap<String, Arc<Mutex<HistogramData>>>,
}

/// Monotonic source of registry generations: every [`Registry::new`]
/// and every [`Registry::reset`] takes a fresh value, so thread-local
/// cell caches can detect both resets and a new registry reusing a
/// freed one's address.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// A metrics registry: the shared sink all instrumentation writes to.
///
/// Cloneless sharing happens through [`global`]; isolated registries
/// (tests, embedders) are created with [`Registry::new`].
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    generation: AtomicU64,
    inner: Mutex<Inner>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Cow<'static, str>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread histogram cell memo: registry address -> (generation
    /// observed, series name -> cell). Keyed by generation so resets
    /// and address reuse invalidate stale entries.
    #[allow(clippy::type_complexity)]
    static HIST_TLS: RefCell<HashMap<usize, (u64, HashMap<String, Arc<Mutex<HistogramData>>>)>> =
        RefCell::new(HashMap::new());
}

impl Registry {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            generation: AtomicU64::new(fresh_generation()),
            inner: Mutex::new(Inner::default()),
            journal: Journal::new(),
        }
    }

    /// Turns recording on or off. While off, every recording method
    /// returns after a single relaxed atomic load. The [`Journal`] has
    /// its own switch ([`Journal::enable`]).
    ///
    /// On the [`global`] registry this also toggles the process-wide
    /// allocation tracker ([`alloc::set_tracking`]); isolated
    /// registries leave process state alone.
    pub fn enable(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        if std::ptr::eq(self, global()) {
            alloc::set_tracking(on);
        }
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The event journal attached to this registry.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Adds `delta` to the counter `name`.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.gauge_cell(name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records `value` into the histogram `name`.
    ///
    /// The cell handle is memoized per thread, so repeated
    /// observations of one series take only the cell's own lock, not
    /// the global registry lock.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let cell = self.cached_histogram_cell(name);
        cell.lock().unwrap_or_else(|e| e.into_inner()).observe(value);
    }

    /// Records `d` (in seconds) into the histogram `name`.
    #[inline]
    pub fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_secs_f64());
    }

    /// Pre-registers a histogram handle for `name`: the hot-path
    /// alternative to [`Registry::observe`] when the call site can
    /// hold state. The handle bypasses every name lookup; it keeps
    /// recording into the detached series if the registry is
    /// [`reset`](Registry::reset) after registration.
    pub fn histogram(&self, name: &str) -> Histogram<'_> {
        Histogram { registry: self, cell: self.histogram_cell(name) }
    }

    /// Pre-registers a counter handle for `name` (same contract as
    /// [`Registry::histogram`]).
    pub fn counter(&self, name: &str) -> Counter<'_> {
        Counter { registry: self, cell: self.counter_cell(name) }
    }

    /// Starts a hierarchical wall-clock span. The elapsed time lands
    /// in a histogram named after the dotted path of enclosing spans
    /// when the guard drops. Inert (no clock read) while disabled.
    #[inline]
    pub fn span<'r>(&'r self, name: &'static str) -> Span<'r> {
        if !self.is_enabled() {
            return Span { registry: self, start: None, path: String::new(), pushed: 0 };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(Cow::Borrowed(name));
            stack.join(".")
        });
        Span { registry: self, start: Some(Instant::now()), path, pushed: 1 }
    }

    /// Starts a span anchored beneath an explicit `parent` path
    /// instead of (only) the current thread's span stack.
    ///
    /// The span stack is thread-local, so a span opened on a spawned
    /// worker thread records at the top level even while its logical
    /// parent is open on the spawning thread. `span_under` closes that
    /// blindspot: the worker passes the parent's dotted path (see
    /// [`Span::path`]) and both this span and any span nested inside
    /// it on the same thread record under `parent.…`. An empty
    /// `parent` behaves exactly like [`Registry::span`].
    #[inline]
    pub fn span_under<'r>(&'r self, parent: &str, name: &'static str) -> Span<'r> {
        if !self.is_enabled() {
            return Span { registry: self, start: None, path: String::new(), pushed: 0 };
        }
        let (path, pushed) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let mut pushed = 1usize;
            if !parent.is_empty() {
                stack.push(Cow::Owned(parent.to_string()));
                pushed = 2;
            }
            stack.push(Cow::Borrowed(name));
            (stack.join("."), pushed)
        });
        Span { registry: self, start: Some(Instant::now()), path, pushed }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    fn histogram_cell(&self, name: &str) -> Arc<Mutex<HistogramData>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Thread-cached lookup of the histogram cell for `name`.
    fn cached_histogram_cell(&self, name: &str) -> Arc<Mutex<HistogramData>> {
        let key = self as *const Registry as usize;
        let generation = self.generation.load(Ordering::Relaxed);
        HIST_TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let entry = tls.entry(key).or_insert_with(|| (generation, HashMap::new()));
            if entry.0 != generation {
                *entry = (generation, HashMap::new());
            }
            if let Some(cell) = entry.1.get(name) {
                return Arc::clone(cell);
            }
            let cell = self.histogram_cell(name);
            entry.1.insert(name.to_string(), Arc::clone(&cell));
            cell
        })
    }

    /// Reads the current value of counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Reads the current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.get(name).map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Takes a consistent point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            enabled: self.is_enabled(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().unwrap_or_else(|e| e.into_inner()).summary()))
                .collect(),
        }
    }

    /// Drops every metric series and journal event (the enabled flags
    /// are untouched). Thread-local cell caches and outstanding
    /// pre-registered handles are invalidated.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Inner::default();
        self.generation.store(fresh_generation(), Ordering::Relaxed);
        self.journal.reset();
    }
}

/// Pre-registered histogram handle (see [`Registry::histogram`]).
#[derive(Debug, Clone)]
pub struct Histogram<'r> {
    registry: &'r Registry,
    cell: Arc<Mutex<HistogramData>>,
}

impl Histogram<'_> {
    /// Records `value` without any name lookup.
    #[inline]
    pub fn observe(&self, value: f64) {
        if !self.registry.is_enabled() {
            return;
        }
        self.cell.lock().unwrap_or_else(|e| e.into_inner()).observe(value);
    }

    /// Records `d` in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }
}

/// Pre-registered counter handle (see [`Registry::counter`]).
#[derive(Debug, Clone)]
pub struct Counter<'r> {
    registry: &'r Registry,
    cell: Arc<AtomicU64>,
}

impl Counter<'_> {
    /// Adds `delta` without any name lookup.
    #[inline]
    pub fn add(&self, delta: u64) {
        if !self.registry.is_enabled() {
            return;
        }
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }
}

/// RAII wall-clock timer returned by [`Registry::span`] and
/// [`Registry::span_under`].
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span<'r> {
    registry: &'r Registry,
    start: Option<Instant>,
    path: String,
    pushed: usize,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("path", &self.path)
            .field("active", &self.start.is_some())
            .finish()
    }
}

impl Span<'_> {
    /// Elapsed time so far (zero for inert spans).
    pub fn elapsed(&self) -> Duration {
        self.start.map_or(Duration::ZERO, |s| s.elapsed())
    }

    /// The dotted series path this span will record under (empty for
    /// inert spans). Hand this to [`Registry::span_under`] on worker
    /// threads to keep their spans parented.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                for _ in 0..self.pushed {
                    stack.pop();
                }
            });
            self.registry.observe(&self.path, start.elapsed().as_secs_f64());
        }
    }
}

/// Point-in-time copy of a registry, exportable as JSON or a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Whether the source registry was recording.
    pub enabled: bool,
    /// All counters.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, f64>,
    /// All histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Adaptive value formatting for tables: plain fixed-point inside
/// `[1e-4, 1e7)`, scientific notation outside it (byte counts stay
/// readable, tiny simulated times keep their precision), bare `0` for
/// zero.
fn fmt_adaptive(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (1e-4..1e7).contains(&a) {
        format!("{v:.6}")
    } else {
        format!("{v:.6e}")
    }
}

impl Snapshot {
    /// Serializes as pretty-printed JSON with deterministically sorted
    /// keys. Schema:
    ///
    /// ```json
    /// {
    ///   "version": 2,
    ///   "enabled": true,
    ///   "counters": { "name": 42 },
    ///   "gauges": { "name": 1.5 },
    ///   "histograms": {
    ///     "name": {"count": 3, "sum": 0.9, "min": 0.1, "max": 0.5,
    ///              "mean": 0.3, "last": 0.2,
    ///              "p50": 0.3, "p95": 0.5, "p99": 0.5}
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"version\": 2,\n  \"enabled\": ");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_string(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_string(&mut out, k);
            out.push_str(": ");
            json::push_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::push_string(&mut out, k);
            out.push_str(": {");
            out.push_str(&format!("\"count\": {}, \"sum\": ", h.count));
            json::push_f64(&mut out, h.sum);
            for (label, v) in [
                ("min", h.min),
                ("max", h.max),
                ("mean", h.mean()),
                ("last", h.last),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                out.push_str(&format!(", \"{label}\": "));
                json::push_f64(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a snapshot back from its [`Snapshot::to_json`] form.
    /// Accepts schema versions 1 and 2 (v1 carries no percentiles;
    /// they read back as 0).
    ///
    /// # Errors
    ///
    /// Returns a [`json::ParseError`] on malformed JSON or a document
    /// that is not a snapshot.
    pub fn from_json(text: &str) -> Result<Snapshot, json::ParseError> {
        use json::Value;
        let doc = json::parse(text)?;
        let schema_err = |message: &str| json::ParseError { message: message.into(), offset: 0 };
        let version = doc.get("version").and_then(Value::as_f64).unwrap_or(0.0);
        if !(version == 1.0 || version == 2.0) {
            return Err(schema_err("unsupported snapshot version"));
        }
        let enabled = matches!(doc.get("enabled"), Some(Value::Bool(true)));
        let section = |key: &str| -> Result<BTreeMap<String, Value>, json::ParseError> {
            match doc.get(key) {
                Some(Value::Obj(m)) => Ok(m.clone()),
                _ => Err(schema_err(&format!("missing `{key}` object"))),
            }
        };
        let counters = section("counters")?
            .into_iter()
            .map(|(k, v)| (k, v.as_f64().unwrap_or(0.0) as u64))
            .collect();
        let gauges = section("gauges")?
            .into_iter()
            .map(|(k, v)| (k, v.as_f64().unwrap_or(f64::NAN)))
            .collect();
        let histograms = section("histograms")?
            .into_iter()
            .map(|(k, v)| {
                let field = |f: &str| v.get(f).and_then(Value::as_f64).unwrap_or(0.0);
                let summary = HistogramSummary {
                    count: field("count") as u64,
                    sum: field("sum"),
                    min: field("min"),
                    max: field("max"),
                    last: field("last"),
                    p50: field("p50"),
                    p95: field("p95"),
                    p99: field("p99"),
                };
                (k, summary)
            })
            .collect();
        Ok(Snapshot { enabled, counters, gauges, histograms })
    }

    /// A copy keeping only the series whose name satisfies `keep`
    /// (used to strip wall-clock series out of committed baselines).
    pub fn filtered<F: Fn(&str) -> bool>(&self, keep: F) -> Snapshot {
        Snapshot {
            enabled: self.enabled,
            counters: self.counters.iter().filter(|(k, _)| keep(k)).map(clone_kv).collect(),
            gauges: self.gauges.iter().filter(|(k, _)| keep(k)).map(clone_kv).collect(),
            histograms: self.histograms.iter().filter(|(k, _)| keep(k)).map(clone_kv).collect(),
        }
    }

    /// Renders a human-readable table (the CLI's `--verbose` output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {}\n", fmt_adaptive(*v)));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / p50 / p95 / p99 / min / max):\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<44} {} / {} / {} / {} / {} / {} / {}\n",
                    h.count,
                    fmt_adaptive(h.mean()),
                    fmt_adaptive(h.p50),
                    fmt_adaptive(h.p95),
                    fmt_adaptive(h.p99),
                    fmt_adaptive(h.min),
                    fmt_adaptive(h.max),
                ));
            }
        }
        out
    }
}

fn clone_kv<K: Clone, V: Clone>((k, v): (&K, &V)) -> (K, V) {
    (k.clone(), v.clone())
}

/// The process-wide registry all built-in instrumentation writes to.
/// Disabled until someone calls `global().enable(true)`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.add("c", 5);
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        {
            let _s = r.span("s");
        }
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(!snap.enabled);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.enable(true);
        r.add("c", 2);
        r.add("c", 3);
        r.gauge_set("g", 1.0);
        r.gauge_set("g", -4.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], -4.5);
        assert_eq!(r.counter_value("c"), 5);
        assert_eq!(r.gauge_value("g"), Some(-4.5));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let r = Registry::new();
        r.enable(true);
        for v in [3.0, 1.0, 2.0] {
            r.observe("h", v);
        }
        let h = r.snapshot().histograms["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.last, 2.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_from_log_buckets() {
        let r = Registry::new();
        r.enable(true);
        // 99 observations at 1ms, one at 1s: p50/p95 sit at ~1ms,
        // p99 catches the outlier's bucket.
        for _ in 0..99 {
            r.observe("lat", 1e-3);
        }
        r.observe("lat", 1.0);
        let h = r.snapshot().histograms["lat"];
        assert!((0.5e-3..2e-3).contains(&h.p50), "p50 {}", h.p50);
        assert!((0.5e-3..2e-3).contains(&h.p95), "p95 {}", h.p95);
        assert!(h.p99 <= 1.0 + 1e-12);
        // Percentiles are order statistics: monotone and inside range.
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99);
        assert!(h.p50 >= h.min && h.p99 <= h.max);
    }

    #[test]
    fn histogram_percentiles_handle_underflow_and_overflow() {
        let r = Registry::new();
        r.enable(true);
        for v in [0.0, -5.0, 1e-12] {
            r.observe("u", v); // all below the bucket floor
        }
        let u = r.snapshot().histograms["u"];
        assert_eq!(u.p50, u.min);
        assert_eq!(u.p99, u.min);
        r.observe("o", 1e12);
        r.observe("o", 1e13);
        let o = r.snapshot().histograms["o"];
        assert_eq!(o.p99, o.max);
    }

    #[test]
    fn percentile_accuracy_within_bucket_resolution() {
        let r = Registry::new();
        r.enable(true);
        for i in 1..=1000 {
            r.observe("h", i as f64 * 1e-3); // 1ms .. 1s uniform
        }
        let h = r.snapshot().histograms["h"];
        // One bucket spans a 10^(1/8) ≈ 1.33x range; allow 2 buckets.
        assert!((0.28..0.9).contains(&h.p50), "p50 {}", h.p50);
        assert!((0.7..=1.0).contains(&h.p95), "p95 {}", h.p95);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        // A pre-registered but never-observed histogram must not
        // divide by its zero count.
        let r = Registry::new();
        r.enable(true);
        let _handle = r.histogram("empty");
        let h = r.snapshot().histograms["empty"];
        assert_eq!(h.count, 0);
        assert_eq!((h.p50, h.p95, h.p99), (0.0, 0.0, 0.0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_on_single_sample_return_it() {
        let r = Registry::new();
        r.enable(true);
        r.observe("one", 0.125);
        let h = r.snapshot().histograms["one"];
        assert_eq!(h.count, 1);
        // Every quantile of a one-sample distribution is the sample,
        // up to one bucket (10^(1/8) ≈ 1.33x) of interpolation.
        for q in [h.p50, h.p95, h.p99] {
            assert!((0.125..=0.125 * 1.34).contains(&q), "{q}");
            assert!(q >= h.min && q <= h.max);
        }
    }

    #[test]
    fn quantiles_on_saturated_single_bucket_stay_in_bucket() {
        // Many observations of one value land in one bucket; all
        // quantiles must stay inside it (clamped to [min, max]).
        let r = Registry::new();
        r.enable(true);
        for _ in 0..10_000 {
            r.observe("flat", 2e-3);
        }
        let h = r.snapshot().histograms["flat"];
        assert_eq!(h.count, 10_000);
        assert_eq!(h.min, 2e-3);
        assert_eq!(h.max, 2e-3);
        for q in [h.p50, h.p95, h.p99] {
            assert_eq!(q, 2e-3, "clamped to the degenerate [min, max]");
        }
    }

    #[test]
    fn edge_case_histograms_round_trip_v2_and_v1() {
        let r = Registry::new();
        r.enable(true);
        let _empty = r.histogram("edge.empty");
        r.observe("edge.one", 0.125);
        for _ in 0..100 {
            r.observe("edge.flat", 2e-3);
        }
        let snap = r.snapshot();
        // v2: lossless for the summary fields.
        let back = Snapshot::from_json(&snap.to_json()).expect("v2 parse");
        assert_eq!(back, snap);
        // v1 (no percentile fields): counts and extremes survive,
        // percentiles read back as zero.
        let v1 = snap
            .to_json()
            .replace("\"version\": 2", "\"version\": 1")
            .replace(", \"p50\": ", ", \"q50\": ")
            .replace(", \"p95\": ", ", \"q95\": ")
            .replace(", \"p99\": ", ", \"q99\": ");
        let old = Snapshot::from_json(&v1).expect("v1 parse");
        assert_eq!(old.histograms["edge.one"].count, 1);
        assert_eq!(old.histograms["edge.one"].min, 0.125);
        assert_eq!(old.histograms["edge.one"].p50, 0.0);
        assert_eq!(old.histograms["edge.flat"].count, 100);
        assert_eq!(old.histograms["edge.empty"].count, 0);
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        let r = Registry::new();
        r.enable(true);
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let snap = r.snapshot();
        assert!(snap.histograms.contains_key("outer"), "{:?}", snap.histograms);
        assert!(snap.histograms.contains_key("outer.inner"));
        assert!(snap.histograms["outer"].sum >= snap.histograms["outer.inner"].sum);
        // The stack unwound: a fresh span is top-level again.
        {
            let _again = r.span("again");
        }
        assert!(r.snapshot().histograms.contains_key("again"));
    }

    #[test]
    fn span_under_reparents_worker_threads() {
        // Regression: spans opened on spawned threads lost their
        // parent because SPAN_STACK is thread-local. span_under
        // re-anchors them (and their nested children) explicitly.
        let r = std::sync::Arc::new(Registry::new());
        r.enable(true);
        {
            let sweep = r.span("sweep");
            assert_eq!(sweep.path(), "sweep");
            let parent = sweep.path().to_string();
            let rr = std::sync::Arc::clone(&r);
            std::thread::spawn(move || {
                let _cfg = rr.span_under(&parent, "config");
                let _nested = rr.span("execute");
            })
            .join()
            .expect("join");
        }
        let snap = r.snapshot();
        assert!(snap.histograms.contains_key("sweep.config"), "{:?}", snap.histograms);
        assert!(snap.histograms.contains_key("sweep.config.execute"));
        // The worker stack fully unwound.
        {
            let _top = r.span("top");
        }
        assert!(r.snapshot().histograms.contains_key("top"));
    }

    #[test]
    fn span_under_empty_parent_is_plain_span() {
        let r = Registry::new();
        r.enable(true);
        {
            let _s = r.span_under("", "solo");
        }
        assert!(r.snapshot().histograms.contains_key("solo"));
    }

    #[test]
    fn preregistered_handles_record_and_respect_enable() {
        let r = Registry::new();
        let h = r.histogram("hand.hist");
        let c = r.counter("hand.count");
        h.observe(1.0); // disabled: dropped
        c.add(7);
        assert_eq!(r.counter_value("hand.count"), 0);
        r.enable(true);
        h.observe(2.0);
        h.observe_duration(Duration::from_millis(500));
        c.add(7);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["hand.hist"].count, 2);
        assert_eq!(snap.counters["hand.count"], 7);
    }

    #[test]
    fn tls_cache_survives_reset_correctly() {
        let r = Registry::new();
        r.enable(true);
        r.observe("h", 1.0);
        r.observe("h", 2.0); // cached-path hit
        assert_eq!(r.snapshot().histograms["h"].count, 2);
        r.reset();
        // A stale thread-local cell must not swallow this observation.
        r.observe("h", 3.0);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["h"].last, 3.0);
    }

    #[test]
    fn json_snapshot_is_sorted_and_parsable_shape() {
        let r = Registry::new();
        r.enable(true);
        r.add("b.count", 1);
        r.add("a.count", 2);
        r.gauge_set("z.value", 0.5);
        r.observe("t.hist", 1.25);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\n  \"version\": 2"));
        assert!(json.find("\"a.count\"").unwrap() < json.find("\"b.count\"").unwrap());
        assert!(json.contains("\"z.value\": 0.5"));
        assert!(json.contains("\"count\": 1, \"sum\": 1.25"));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p99\":"));
        assert!(json.trim_end().ends_with('}'));
        // Balanced braces (cheap structural sanity check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        let r = Registry::new();
        r.enable(true);
        r.gauge_set("weird\"name\\with\tescapes", f64::NAN);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"weird\\\"name\\\\with\\tescapes\": null"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.enable(true);
        r.add("c.one", 3);
        r.gauge_set("g.level", -0.125);
        for v in [0.1, 0.2, 0.4] {
            r.observe("h.lat", v);
        }
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_numeric_edge_cases_round_trip() {
        // Negative zero, subnormals, and values straddling the 1e15
        // integral-formatting cutoff must survive the exporter
        // bit-for-bit and stay valid JSON.
        let mut snap = Snapshot {
            enabled: true,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let cases = [
            ("neg_zero", -0.0),
            ("subnormal", 5e-324),
            ("subnormal_mid", f64::MIN_POSITIVE / 2.0),
            ("below_cutoff", 999_999_999_999_999.0),
            ("cutoff", 1e15),
            ("above_cutoff", 1e15 + 2.0),
            ("fractional_large", 999_999_999_999_999.9),
            ("max", f64::MAX),
            ("min_positive", f64::MIN_POSITIVE),
        ];
        for (name, v) in cases {
            snap.gauges.insert(name.to_string(), v);
        }
        let text = snap.to_json();
        json::parse(&text).expect("well-formed JSON");
        let back = Snapshot::from_json(&text).expect("snapshot parse");
        for (name, v) in cases {
            let got = back.gauges[name];
            assert_eq!(got.to_bits(), v.to_bits(), "{name}: {v} -> {got}");
        }
        // Non-finite gauges degrade to null, not malformed tokens.
        snap.gauges.insert("nan".into(), f64::NAN);
        snap.gauges.insert("inf".into(), f64::INFINITY);
        let text = snap.to_json();
        assert!(!text.contains("inf") || text.contains("\"inf\""), "{text}");
        json::parse(&text).expect("still well-formed");
    }

    #[test]
    fn filtered_keeps_matching_series_only() {
        let r = Registry::new();
        r.enable(true);
        r.add("keep.c", 1);
        r.add("drop.wall.c", 1);
        r.gauge_set("keep.g", 1.0);
        r.observe("drop.wall.h", 1.0);
        let snap = r.snapshot().filtered(|name| !name.contains("wall"));
        assert!(snap.counters.contains_key("keep.c"));
        assert!(!snap.counters.contains_key("drop.wall.c"));
        assert!(snap.gauges.contains_key("keep.g"));
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn reset_clears_series() {
        let r = Registry::new();
        r.enable(true);
        r.add("c", 1);
        r.journal().enable(true);
        r.journal().instant("e", "t", None, Vec::new());
        r.reset();
        assert_eq!(r.counter_value("c"), 0);
        assert!(r.is_enabled(), "reset must not flip the enabled bit");
        assert!(r.journal().is_empty(), "reset clears the journal");
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        r.enable(true);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.add("par", 1);
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(r.counter_value("par"), 8000);
    }

    #[test]
    fn concurrent_observations_are_lossless() {
        let r = std::sync::Arc::new(Registry::new());
        r.enable(true);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    r.observe("par.h", 1e-3 * (1 + i % 7) as f64);
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(r.snapshot().histograms["par.h"].count, 4000);
    }

    #[test]
    fn table_rendering_mentions_every_series() {
        let r = Registry::new();
        r.enable(true);
        r.add("events", 7);
        r.gauge_set("level", 0.25);
        r.observe("latency", 0.5);
        let table = r.snapshot().to_table();
        assert!(table.contains("events"));
        assert!(table.contains("level"));
        assert!(table.contains("latency"));
    }

    #[test]
    fn table_formats_adaptively() {
        // Regression: `{v:.6}` rendered byte counts as
        // `25000000000.000000` and tiny values as `0.000000`.
        let r = Registry::new();
        r.enable(true);
        r.gauge_set("bytes", 2.5e10);
        r.gauge_set("tiny", 3.2e-7);
        r.gauge_set("mid", 1.5);
        r.gauge_set("zero", 0.0);
        let table = r.snapshot().to_table();
        assert!(table.contains("2.500000e10"), "{table}");
        assert!(table.contains("3.200000e-7"), "{table}");
        assert!(table.contains("1.500000"), "{table}");
        assert!(!table.contains("25000000000.000000"), "{table}");
        assert!(!table.contains("0.000000\n"), "{table}");
        let zero_line = table.lines().find(|l| l.contains("zero")).expect("zero row");
        assert!(zero_line.trim_end().ends_with(" 0"), "{zero_line}");
    }
}
