//! Snapshot comparison for the `gnnavigate metrics-diff` perf gate.
//!
//! [`diff_snapshots`] compares two [`Snapshot`]s series-by-series and
//! produces a [`DiffReport`]: one row per series, sorted by magnitude
//! of relative change, with a breach flag per row. CI commits baseline
//! snapshots (`BENCH_backend.json`, `BENCH_explorer.json`), regenerates
//! the current ones with a fixed seed, and fails the build when any
//! gated series moved more than the threshold.
//!
//! Gating rules (what can fail the build):
//!
//! - **Counters** are gated: they count deterministic work (batches
//!   run, candidates evaluated, cache hits), so any drift beyond the
//!   threshold is a real behaviour change.
//! - **Gauges** are gated unless their name contains `"wall"`:
//!   simulated times, hit rates, and model-quality figures are
//!   deterministic under a fixed seed, while wall-clock gauges vary
//!   with machine load.
//! - **Histograms** are compared on their mean but never gated — every
//!   histogram in the registry today records wall seconds.
//! - A gated series that **disappears** from the current snapshot is a
//!   breach (instrumentation silently lost is a regression too); a
//!   series **new** in the current snapshot is reported but never
//!   fails the gate, so adding instrumentation does not require a
//!   lockstep baseline update.

use crate::Snapshot;
use std::collections::BTreeMap;

/// Which metric family a [`DiffRow`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Histogram (compared on its mean).
    Histogram,
}

impl SeriesKind {
    fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One compared series.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric family.
    pub kind: SeriesKind,
    /// Series name.
    pub name: String,
    /// Baseline value (`None` when the series is new).
    pub baseline: Option<f64>,
    /// Current value (`None` when the series disappeared).
    pub current: Option<f64>,
    /// Relative change in percent (`None` when not computable: a
    /// missing side, or a zero baseline).
    pub delta_pct: Option<f64>,
    /// Whether this series can fail the gate.
    pub gated: bool,
    /// Whether this row fails the gate at the report's threshold.
    pub breach: bool,
}

impl DiffRow {
    fn sort_key(&self) -> f64 {
        match self.delta_pct {
            Some(d) => d.abs(),
            // Disappeared gated series outrank everything; other
            // incomparable rows (new series, zero baselines) sink to
            // the bottom of the table.
            None if self.breach => f64::INFINITY,
            None => -1.0,
        }
    }
}

/// The outcome of [`diff_snapshots`].
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The gate threshold, in percent.
    pub threshold_pct: f64,
    /// All compared rows, sorted by `|delta|` descending.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Number of rows failing the gate.
    pub fn breaches(&self) -> usize {
        self.rows.iter().filter(|r| r.breach).count()
    }

    /// Whether any row fails the gate.
    pub fn has_breach(&self) -> bool {
        self.rows.iter().any(|r| r.breach)
    }

    /// Renders the regression table, worst offenders first.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "metrics-diff: {} series compared, {} breach(es) at ±{}% threshold\n",
            self.rows.len(),
            self.breaches(),
            self.threshold_pct
        );
        out.push_str(&format!(
            "{:<9} {:<10} {:<44} {:>14} {:>14} {:>9}\n",
            "status", "kind", "series", "baseline", "current", "delta"
        ));
        for row in &self.rows {
            let status = if row.breach {
                "BREACH"
            } else if row.gated {
                "ok"
            } else {
                "info"
            };
            let fmt_side = |v: Option<f64>| match v {
                Some(v) => fmt_value(v),
                None => "-".to_string(),
            };
            let delta = match row.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None if row.current.is_none() => "gone".to_string(),
                None if row.baseline.is_none() => "new".to_string(),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "{status:<9} {:<10} {:<44} {:>14} {:>14} {:>9}\n",
                row.kind.label(),
                row.name,
                fmt_side(row.baseline),
                fmt_side(row.current),
                delta,
            ));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v:.0}")
    } else if v.abs() >= 1e-4 && v.abs() < 1e7 {
        format!("{v:.6}")
    } else {
        format!("{v:.4e}")
    }
}

fn is_gated(kind: SeriesKind, name: &str) -> bool {
    match kind {
        SeriesKind::Counter => true,
        SeriesKind::Gauge => !name.contains("wall"),
        SeriesKind::Histogram => false,
    }
}

fn diff_family(
    kind: SeriesKind,
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold_pct: f64,
    rows: &mut Vec<DiffRow>,
) {
    let mut names: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let b = baseline.get(name.as_str()).copied();
        let c = current.get(name.as_str()).copied();
        let gated = is_gated(kind, name);
        let (delta_pct, breach) = match (b, c) {
            (Some(b), Some(c)) => {
                if b == 0.0 {
                    // No percentage exists; any movement on a gated
                    // zero-baseline series fails the gate.
                    (None, gated && c != 0.0)
                } else {
                    let d = (c - b) / b.abs() * 100.0;
                    (Some(d), gated && d.abs() > threshold_pct)
                }
            }
            // Lost instrumentation on a gated series is a regression.
            (Some(_), None) => (None, gated),
            // New series never fail the gate.
            (None, Some(_)) => (None, false),
            (None, None) => continue,
        };
        rows.push(DiffRow {
            kind,
            name: name.clone(),
            baseline: b,
            current: c,
            delta_pct,
            gated,
            breach,
        });
    }
}

/// Compares `current` against `baseline` at `threshold_pct`.
pub fn diff_snapshots(baseline: &Snapshot, current: &Snapshot, threshold_pct: f64) -> DiffReport {
    let mut rows = Vec::new();
    let counters = |s: &Snapshot| {
        s.counters.iter().map(|(k, v)| (k.clone(), *v as f64)).collect::<BTreeMap<_, _>>()
    };
    let hist_means = |s: &Snapshot| {
        s.histograms.iter().map(|(k, h)| (k.clone(), h.mean())).collect::<BTreeMap<_, _>>()
    };
    diff_family(
        SeriesKind::Counter,
        &counters(baseline),
        &counters(current),
        threshold_pct,
        &mut rows,
    );
    diff_family(SeriesKind::Gauge, &baseline.gauges, &current.gauges, threshold_pct, &mut rows);
    diff_family(
        SeriesKind::Histogram,
        &hist_means(baseline),
        &hist_means(current),
        threshold_pct,
        &mut rows,
    );
    rows.sort_by(|a, b| b.sort_key().total_cmp(&a.sort_key()).then_with(|| a.name.cmp(&b.name)));
    DiffReport { threshold_pct, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap(build: impl Fn(&Registry)) -> Snapshot {
        let r = Registry::new();
        r.enable(true);
        build(&r);
        r.snapshot()
    }

    #[test]
    fn within_threshold_passes() {
        let base = snap(|r| {
            r.add("c", 100);
            r.gauge_set("g", 10.0);
        });
        let cur = snap(|r| {
            r.add("c", 110);
            r.gauge_set("g", 9.5);
        });
        let report = diff_snapshots(&base, &cur, 20.0);
        assert!(!report.has_breach(), "{}", report.to_table());
        assert_eq!(report.breaches(), 0);
    }

    #[test]
    fn counter_regression_breaches_and_sorts_first() {
        let base = snap(|r| {
            r.add("cache.hits", 100);
            r.add("batches", 50);
        });
        let cur = snap(|r| {
            r.add("cache.hits", 10); // -90%
            r.add("batches", 55); // +10%
        });
        let report = diff_snapshots(&base, &cur, 20.0);
        assert_eq!(report.breaches(), 1);
        assert_eq!(report.rows[0].name, "cache.hits");
        assert!(report.rows[0].breach);
        assert!(report.to_table().contains("BREACH"));
    }

    #[test]
    fn wall_gauges_are_informational_only() {
        let base = snap(|r| r.gauge_set("backend.wall.train_s", 1.0));
        let cur = snap(|r| r.gauge_set("backend.wall.train_s", 50.0));
        let report = diff_snapshots(&base, &cur, 20.0);
        assert!(!report.has_breach());
        assert!(!report.rows[0].gated);
    }

    #[test]
    fn histograms_reported_but_never_gated() {
        let base = snap(|r| r.observe("h", 1.0));
        let cur = snap(|r| r.observe("h", 100.0));
        let report = diff_snapshots(&base, &cur, 20.0);
        assert!(!report.has_breach());
        assert_eq!(report.rows[0].kind, SeriesKind::Histogram);
        assert!(report.rows[0].delta_pct.unwrap() > 1000.0);
    }

    #[test]
    fn disappeared_gated_series_is_a_breach_new_series_is_not() {
        let base = snap(|r| r.add("gone", 5));
        let cur = snap(|r| r.add("fresh", 5));
        let report = diff_snapshots(&base, &cur, 20.0);
        assert_eq!(report.breaches(), 1);
        let gone = report.rows.iter().find(|r| r.name == "gone").expect("gone row");
        assert!(gone.breach && gone.current.is_none());
        let fresh = report.rows.iter().find(|r| r.name == "fresh").expect("fresh row");
        assert!(!fresh.breach && fresh.baseline.is_none());
        // Disappearances sort above ordinary rows.
        assert_eq!(report.rows[0].name, "gone");
        let table = report.to_table();
        assert!(table.contains("gone"));
        assert!(table.contains("new"));
    }

    #[test]
    fn zero_baseline_movement_breaches() {
        let base = snap(|r| r.add("z", 0));
        let cur = snap(|r| r.add("z", 3));
        let report = diff_snapshots(&base, &cur, 20.0);
        assert!(report.has_breach());
        let row = &report.rows[0];
        assert!(row.delta_pct.is_none());
        // And zero-to-zero passes.
        let report = diff_snapshots(&base, &base.clone(), 20.0);
        assert!(!report.has_breach());
    }

    #[test]
    fn exact_threshold_is_not_a_breach() {
        let base = snap(|r| r.add("c", 100));
        let cur = snap(|r| r.add("c", 120));
        let report = diff_snapshots(&base, &cur, 20.0);
        assert!(!report.has_breach(), "20% move at 20% threshold passes");
        let report = diff_snapshots(&base, &cur, 19.9);
        assert!(report.has_breach());
    }
}
