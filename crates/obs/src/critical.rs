//! Critical-path extraction and the `--trace-summary` report.
//!
//! Answers "where did the simulated time go" from a journal snapshot
//! (live or imported from a `--trace-out` file): per-track rollups, a
//! top-K table of span paths by exclusive time, the critical path
//! (heaviest root-to-leaf chain), and a per-epoch phase-attribution
//! table that assigns every `phase.*` span to the epoch it started
//! in.
//!
//! The report is built exclusively on the **sim clock** so it is
//! byte-identical across runs of the same `(seed, plan,
//! GNNAV_THREADS)`; wall-only spans (profiler workers) are excluded
//! and surfaced as a single count.

use crate::journal::JournalSnapshot;
use crate::names;
use crate::tree::{Clock, SpanForest, SpanNode};
use std::collections::BTreeMap;

/// Default number of rows in the top-paths table.
pub const DEFAULT_TOP_K: usize = 20;

/// Phase columns in their pipeline order; phases outside this list
/// append alphabetically.
const PHASE_ORDER: [&str; 6] =
    ["sample", "transfer", "replace", "compute", "recovery", "migration"];

fn secs(us: f64) -> String {
    format!("{:.6}", us / 1e6)
}

/// Renders the deterministic `--trace-summary` report from
/// `snapshot`, with `top_k` rows in the span-path table.
pub fn render_summary(snapshot: &JournalSnapshot, top_k: usize) -> String {
    let forest = SpanForest::build(snapshot, Clock::Sim);
    let mut out = String::new();
    out.push_str("trace-summary (sim clock)\n");
    if forest.dropped > 0 {
        out.push_str(&format!(
            "WARNING: journal ring dropped {} events; totals are partial\n",
            forest.dropped
        ));
    }

    // --- per-track rollups -------------------------------------------
    out.push_str("\ntracks (spans / roots / total sim s):\n");
    if forest.tracks.is_empty() {
        out.push_str("  (no sim-clock spans)\n");
    }
    for r in forest.rollups() {
        out.push_str(&format!(
            "  {:<28} {:>6} / {:>5} / {}\n",
            r.track,
            r.spans,
            r.roots,
            secs(r.inclusive_us)
        ));
    }
    out.push_str(&format!("  total accounted: {} s", secs(forest.total_inclusive_us())));
    if forest.skipped_spans > 0 {
        out.push_str(&format!("  (wall-only spans excluded: {})", forest.skipped_spans));
    }
    out.push('\n');

    // --- top-K span paths by exclusive time --------------------------
    let mut paths: Vec<_> = forest.aggregate_paths().into_iter().collect();
    paths.sort_by(|a, b| b.1.exclusive_us.total_cmp(&a.1.exclusive_us).then_with(|| a.0.cmp(&b.0)));
    out.push_str(&format!("\ntop {} span paths by exclusive sim time:\n", top_k.min(paths.len())));
    out.push_str(&format!(
        "  {:<4} {:>12} {:>12} {:>6}  {}\n",
        "rank", "excl s", "incl s", "count", "path"
    ));
    for (rank, (path, agg)) in paths.iter().take(top_k).enumerate() {
        out.push_str(&format!(
            "  {:<4} {:>12} {:>12} {:>6}  {}\n",
            rank + 1,
            secs(agg.exclusive_us),
            secs(agg.inclusive_us),
            agg.count,
            path
        ));
    }

    // --- critical path ------------------------------------------------
    out.push_str("\ncritical path (heaviest chain by inclusive sim time):\n");
    match critical_path(&forest) {
        Some(chain) => {
            for (depth, node) in chain.iter().enumerate() {
                out.push_str(&format!(
                    "  {}{}  incl {} s  excl {} s\n",
                    "  ".repeat(depth),
                    node.path,
                    secs(node.inclusive_us),
                    secs(node.exclusive_us)
                ));
            }
        }
        None => out.push_str("  (empty forest)\n"),
    }

    // --- per-epoch phase attribution ---------------------------------
    out.push('\n');
    out.push_str(&phase_table(&forest));
    out
}

/// The heaviest root-to-leaf chain: start from the root span with the
/// largest inclusive time across every track, then repeatedly descend
/// into the heaviest child. Ties break on path order so the chain is
/// deterministic.
pub fn critical_path(forest: &SpanForest) -> Option<Vec<&SpanNode>> {
    let heaviest = |nodes: &[SpanNode]| -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.inclusive_us.total_cmp(&b.inclusive_us).then_with(|| b.path.cmp(&a.path))
            })
            .map(|(i, _)| i)
    };
    let all_roots: Vec<&SpanNode> = forest.tracks.values().flatten().collect();
    let mut node = *all_roots.iter().max_by(|a, b| {
        a.inclusive_us.total_cmp(&b.inclusive_us).then_with(|| b.path.cmp(&a.path))
    })?;
    let mut chain = vec![node];
    while let Some(i) = heaviest(&node.children) {
        node = &node.children[i];
        chain.push(node);
    }
    Some(chain)
}

/// Renders the per-epoch phase-attribution table.
///
/// Epochs are the spans named [`names::EVENT_EPOCH`] on
/// [`names::TRACK_BACKEND`]; each `phase.*` root span is attributed
/// to the last epoch starting at or before it (so a migration span
/// sitting *between* two epochs lands on the epoch that triggered
/// it). `residual` is the epoch time not covered by its phases — it
/// goes negative when a pipelined configuration overlaps phases,
/// which is signal, not an error.
pub fn phase_table(forest: &SpanForest) -> String {
    let epochs: Vec<&SpanNode> = forest
        .tracks
        .get(names::TRACK_BACKEND)
        .map(|roots| roots.iter().filter(|r| r.name == names::EVENT_EPOCH).collect())
        .unwrap_or_default();
    if epochs.is_empty() {
        return "per-epoch phase attribution: (no epoch spans)\n".to_string();
    }

    // Column set: phase-track suffixes present in the forest, in
    // pipeline order, then any stragglers alphabetically.
    let mut present: Vec<&str> =
        forest.tracks.keys().filter_map(|t| t.strip_prefix(names::TRACK_PHASE_PREFIX)).collect();
    present.sort_by_key(|p| {
        (PHASE_ORDER.iter().position(|k| k == p).unwrap_or(PHASE_ORDER.len()), p.to_string())
    });

    // epoch index -> phase suffix -> summed sim µs.
    let mut cells: Vec<BTreeMap<&str, f64>> = vec![BTreeMap::new(); epochs.len()];
    for (track, roots) in &forest.tracks {
        let Some(phase) = track.strip_prefix(names::TRACK_PHASE_PREFIX) else { continue };
        for span in roots {
            // Last epoch with start <= span start.
            let idx = match epochs.binary_search_by(|e| e.start_us.total_cmp(&span.start_us)) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            *cells[idx].entry(phase).or_default() += span.inclusive_us;
        }
    }

    let mut out = String::from("per-epoch phase attribution (sim s):\n");
    out.push_str(&format!("  {:<5} {:>12}", "epoch", "total"));
    for p in &present {
        out.push_str(&format!(" {:>12}", p));
    }
    out.push_str(&format!(" {:>12}\n", "residual"));
    for (i, epoch) in epochs.iter().enumerate() {
        let label = epoch.arg_f64("epoch").map_or(i as u64, |v| v as u64);
        let attributed: f64 = cells[i].values().sum();
        out.push_str(&format!("  {:<5} {:>12}", label, secs(epoch.inclusive_us)));
        for p in &present {
            out.push_str(&format!(" {:>12}", secs(cells[i].get(p).copied().unwrap_or(0.0))));
        }
        out.push_str(&format!(" {:>12}\n", secs(epoch.inclusive_us - attributed)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{ArgValue, Journal};
    use std::borrow::Cow;

    fn epoch_args(i: u64) -> Vec<(Cow<'static, str>, ArgValue)> {
        vec![(Cow::Borrowed("epoch"), ArgValue::U64(i))]
    }

    /// Two epochs with phases, a migration between them, and a
    /// wall-only profiler span.
    fn demo() -> Journal {
        let j = Journal::new();
        j.enable(true);
        j.span_complete("epoch", "backend", 0.0, Some(5.0), Some(0.0), Some(100.0), epoch_args(0));
        j.span_complete("sample", "phase.sample", 0.0, None, Some(0.0), Some(30.0), Vec::new());
        j.span_complete("compute", "phase.compute", 0.0, None, Some(30.0), Some(60.0), Vec::new());
        j.span_complete(
            "migration",
            "phase.migration",
            5.0,
            None,
            Some(100.0),
            Some(20.0),
            Vec::new(),
        );
        j.span_complete("epoch", "backend", 5.0, Some(4.0), Some(120.0), Some(80.0), epoch_args(1));
        j.span_complete("sample", "phase.sample", 5.0, None, Some(120.0), Some(25.0), Vec::new());
        j.span_complete(
            "profile.config",
            "profiler.worker-0",
            0.0,
            Some(2.0),
            None,
            None,
            Vec::new(),
        );
        j
    }

    #[test]
    fn summary_is_deterministic_and_mentions_sections() {
        let a = render_summary(&demo().snapshot(), DEFAULT_TOP_K);
        let b = render_summary(&demo().snapshot(), DEFAULT_TOP_K);
        assert_eq!(a, b, "summary must not depend on wall timings");
        assert!(a.contains("tracks (spans / roots / total sim s):"));
        assert!(a.contains("top "));
        assert!(a.contains("critical path"));
        assert!(a.contains("per-epoch phase attribution"));
        assert!(a.contains("wall-only spans excluded: 1"), "{a}");
        assert!(!a.contains("WARNING"), "{a}");
    }

    #[test]
    fn truncated_snapshot_warns() {
        let j = demo();
        j.set_capacity(3);
        let out = render_summary(&j.snapshot(), DEFAULT_TOP_K);
        assert!(out.contains("WARNING: journal ring dropped 4 events"), "{out}");
    }

    #[test]
    fn critical_path_descends_heaviest_chain() {
        let j = Journal::new();
        j.enable(true);
        j.span_complete("root", "t", 0.0, None, Some(0.0), Some(100.0), Vec::new());
        j.span_complete("light", "t", 0.0, None, Some(0.0), Some(10.0), Vec::new());
        j.span_complete("heavy", "t", 0.0, None, Some(10.0), Some(80.0), Vec::new());
        j.span_complete("leaf", "t", 0.0, None, Some(20.0), Some(50.0), Vec::new());
        let forest = SpanForest::build(&j.snapshot(), Clock::Sim);
        let chain = critical_path(&forest).expect("chain");
        let names: Vec<_> = chain.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["root", "heavy", "leaf"]);
    }

    #[test]
    fn phase_attribution_assigns_epochs_and_between_epoch_migration() {
        let forest = SpanForest::build(&demo().snapshot(), Clock::Sim);
        let table = phase_table(&forest);
        let lines: Vec<&str> = table.lines().collect();
        // Header: pipeline order, residual last.
        assert!(lines[1].contains("sample"));
        let sample_col = lines[1].find("sample").expect("sample col");
        let compute_col = lines[1].find("compute").expect("compute col");
        let migration_col = lines[1].find("migration").expect("migration col");
        assert!(sample_col < compute_col && compute_col < migration_col);
        // Epoch 0: sample 30, compute 60, migration 20 (the switch
        // between epochs lands on the epoch that triggered it),
        // residual 100 - 110 = -0.00001.
        let row0 = lines[2];
        assert!(row0.trim_start().starts_with('0'), "{row0}");
        assert!(row0.contains("0.000030"), "{row0}");
        assert!(row0.contains("0.000060"), "{row0}");
        assert!(row0.contains("0.000020"), "{row0}");
        assert!(row0.contains("-0.000010"), "{row0}");
        // Epoch 1: sample 25 only.
        let row1 = lines[3];
        assert!(row1.trim_start().starts_with('1'), "{row1}");
        assert!(row1.contains("0.000025"), "{row1}");
    }

    #[test]
    fn empty_snapshot_renders_placeholders() {
        let j = Journal::new();
        j.enable(true);
        let out = render_summary(&j.snapshot(), 5);
        assert!(out.contains("(no sim-clock spans)"));
        assert!(out.contains("(empty forest)"));
        assert!(out.contains("(no epoch spans)"));
    }
}
