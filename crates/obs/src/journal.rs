//! Time-ordered event journal with dual clocks.
//!
//! Aggregate counters answer "how much"; the journal answers "what
//! happened *when*". It is a bounded ring buffer of structured
//! [`Event`]s — completed spans, instant markers, counter samples —
//! each stamped with a **wall-clock** timestamp (microseconds since
//! the journal epoch) and optionally a **simulated-clock** timestamp
//! (microseconds of `gnnav-hwsim` `SimTime`, passed in as raw `f64`
//! so this crate stays dependency-free). Snapshots export as Chrome
//! trace-event JSON loadable in Perfetto / `chrome://tracing`, with
//! one process per clock (`wall`, `sim`) and one track per event
//! `track` name, so simulated phase timelines and real overheads sit
//! side by side in the same view.
//!
//! Recording is off by default; while off every call returns after a
//! single relaxed atomic load. When the ring fills, the oldest events
//! are dropped and counted in [`JournalSnapshot::dropped`].

use crate::json;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A typed argument attached to an event (rendered into the Chrome
/// trace `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// A float argument.
    F64(f64),
    /// An integer argument.
    U64(u64),
    /// A boolean argument.
    Bool(bool),
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Event argument list.
pub type Args = Vec<(Cow<'static, str>, ArgValue)>;

/// What kind of event this is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span. At least one duration is present: `wall_dur_us`
    /// for measured regions, `sim_dur_us` for simulated phases, both
    /// for regions that exist on the two clocks at once.
    Span {
        /// Wall-clock duration in microseconds, if measured.
        wall_dur_us: Option<f64>,
        /// Simulated duration in microseconds, if simulated.
        sim_dur_us: Option<f64>,
    },
    /// An instantaneous marker.
    Instant,
    /// A sampled counter value (rendered as a Chrome `C` counter track).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (Chrome trace `name`).
    pub name: Cow<'static, str>,
    /// Track the event belongs to; one Chrome trace thread per track.
    pub track: Cow<'static, str>,
    /// Wall-clock timestamp, microseconds since the journal epoch.
    pub wall_us: f64,
    /// Simulated-clock timestamp in microseconds, when the event has a
    /// position on the simulated timeline.
    pub sim_us: Option<f64>,
    /// Kind and durations.
    pub kind: EventKind,
    /// Structured arguments.
    pub args: Args,
}

#[derive(Debug, Default)]
struct JournalInner {
    events: VecDeque<Event>,
    dropped: u64,
}

/// The bounded event journal. Usually reached through
/// [`Registry::journal`](crate::Registry::journal).
#[derive(Debug)]
pub struct Journal {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    epoch: OnceLock<Instant>,
    inner: Mutex<JournalInner>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// Creates a disabled journal with the default capacity.
    pub fn new() -> Self {
        Journal {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_CAPACITY),
            epoch: OnceLock::new(),
            inner: Mutex::new(JournalInner::default()),
        }
    }

    /// Turns event recording on or off. While off, every recording
    /// call returns after one relaxed atomic load.
    pub fn enable(&self, on: bool) {
        if on {
            // Pin the epoch before the first event so timestamps are
            // non-negative.
            let _ = self.epoch.get_or_init(Instant::now);
        }
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether event recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the ring capacity (existing overflow is trimmed).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while inner.events.len() > capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
    }

    /// Microseconds of wall clock since the journal epoch (initializes
    /// the epoch on first use).
    pub fn now_us(&self) -> f64 {
        self.epoch.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
    }

    /// Appends `event`, evicting the oldest entry when full.
    pub fn push(&self, event: Event) {
        if !self.is_enabled() {
            return;
        }
        let capacity = self.capacity.load(Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() >= capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Records an instant marker at the current wall time.
    pub fn instant(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: impl Into<Cow<'static, str>>,
        sim_us: Option<f64>,
        args: Args,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            name: name.into(),
            track: track.into(),
            wall_us: self.now_us(),
            sim_us,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Records a completed span with explicit timestamps. Pass
    /// `wall_dur_us: None` for simulated-only phases and
    /// `sim_*: None` for wall-only regions.
    #[allow(clippy::too_many_arguments)]
    pub fn span_complete(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: impl Into<Cow<'static, str>>,
        wall_us: f64,
        wall_dur_us: Option<f64>,
        sim_us: Option<f64>,
        sim_dur_us: Option<f64>,
        args: Args,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            name: name.into(),
            track: track.into(),
            wall_us,
            sim_us,
            kind: EventKind::Span { wall_dur_us, sim_dur_us },
            args,
        });
    }

    /// Records a counter sample at the current wall time.
    pub fn counter(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: impl Into<Cow<'static, str>>,
        value: f64,
        sim_us: Option<f64>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            name: name.into(),
            track: track.into(),
            wall_us: self.now_us(),
            sim_us,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Takes a point-in-time copy of the journal, ordered by wall
    /// timestamp.
    pub fn snapshot(&self) -> JournalSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut events: Vec<Event> = inner.events.iter().cloned().collect();
        events.sort_by(|a, b| a.wall_us.total_cmp(&b.wall_us));
        JournalSnapshot { events, dropped: inner.dropped }
    }

    /// Drops every recorded event (enabled flag and epoch untouched).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = JournalInner::default();
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Point-in-time copy of a [`Journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSnapshot {
    /// Buffered events, ordered by wall timestamp.
    pub events: Vec<Event>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

/// Chrome trace process id of the wall clock.
const PID_WALL: u64 = 1;
/// Chrome trace process id of the simulated clock.
const PID_SIM: u64 = 2;

impl JournalSnapshot {
    /// Serializes as Chrome trace-event JSON (the object form, with a
    /// `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Two trace processes separate the clocks: `wall` (pid 1) carries
    /// every event at its wall timestamp; `sim` (pid 2) carries the
    /// events that also have simulated timestamps, positioned on the
    /// simulated timeline. Within each process, one named thread per
    /// event `track`.
    pub fn to_chrome_trace(&self) -> String {
        // Stable track -> tid mapping, sorted by name.
        let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &self.events {
            let next = tids.len() as u64 + 1;
            tids.entry(e.track.as_ref()).or_insert(next);
        }

        let mut out = String::with_capacity(4096 + self.events.len() * 160);
        out.push_str("{\n\"traceEvents\": [\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };

        // Metadata: process and thread names.
        for (pid, label) in [(PID_WALL, "wall"), (PID_SIM, "sim")] {
            emit(
                format!(
                    "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                     \"args\": {{\"name\": \"{label} clock\"}}}}"
                ),
                &mut out,
            );
            for (track, tid) in &tids {
                let mut line = format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                     \"args\": {{\"name\": "
                );
                json::push_string(&mut line, track);
                line.push_str("}}");
                emit(line, &mut out);
            }
        }

        for e in &self.events {
            let tid = tids[e.track.as_ref()];
            match &e.kind {
                EventKind::Span { wall_dur_us, sim_dur_us } => {
                    if let Some(dur) = wall_dur_us {
                        emit(complete_event(e, PID_WALL, tid, e.wall_us, *dur), &mut out);
                    }
                    if let (Some(ts), Some(dur)) = (e.sim_us, sim_dur_us) {
                        emit(complete_event(e, PID_SIM, tid, ts, *dur), &mut out);
                    }
                }
                EventKind::Instant => {
                    emit(instant_event(e, PID_WALL, tid, e.wall_us), &mut out);
                    if let Some(ts) = e.sim_us {
                        emit(instant_event(e, PID_SIM, tid, ts), &mut out);
                    }
                }
                EventKind::Counter { value } => {
                    emit(counter_event(e, PID_WALL, tid, e.wall_us, *value), &mut out);
                    if let Some(ts) = e.sim_us {
                        emit(counter_event(e, PID_SIM, tid, ts, *value), &mut out);
                    }
                }
            }
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"droppedEvents\": ");
        out.push_str(&self.dropped.to_string());
        out.push_str("\n}\n");
        out
    }
}

fn event_head(e: &Event, ph: char, pid: u64, tid: u64, ts: f64) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"ph\": \"");
    line.push(ph);
    line.push_str("\", \"name\": ");
    json::push_string(&mut line, &e.name);
    line.push_str(&format!(", \"pid\": {pid}, \"tid\": {tid}, \"ts\": "));
    json::push_f64(&mut line, ts);
    line
}

fn push_args(line: &mut String, args: &Args) {
    line.push_str(", \"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        json::push_string(line, k);
        line.push_str(": ");
        match v {
            ArgValue::Str(s) => json::push_string(line, s),
            ArgValue::F64(f) => json::push_f64(line, *f),
            ArgValue::U64(u) => line.push_str(&u.to_string()),
            ArgValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
}

fn complete_event(e: &Event, pid: u64, tid: u64, ts: f64, dur: f64) -> String {
    let mut line = event_head(e, 'X', pid, tid, ts);
    line.push_str(", \"dur\": ");
    json::push_f64(&mut line, dur);
    push_args(&mut line, &e.args);
    line.push('}');
    line
}

fn instant_event(e: &Event, pid: u64, tid: u64, ts: f64) -> String {
    let mut line = event_head(e, 'i', pid, tid, ts);
    line.push_str(", \"s\": \"t\"");
    push_args(&mut line, &e.args);
    line.push('}');
    line
}

fn counter_event(e: &Event, pid: u64, tid: u64, ts: f64, value: f64) -> String {
    let mut line = event_head(e, 'C', pid, tid, ts);
    line.push_str(", \"args\": {\"value\": ");
    json::push_f64(&mut line, value);
    line.push_str("}}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn args(pairs: &[(&'static str, f64)]) -> Args {
        pairs.iter().map(|(k, v)| (Cow::Borrowed(*k), ArgValue::F64(*v))).collect()
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::new();
        j.instant("a", "t", None, Vec::new());
        j.counter("c", "t", 1.0, None);
        j.span_complete("s", "t", 0.0, Some(1.0), None, None, Vec::new());
        assert!(j.is_empty());
        assert_eq!(j.snapshot().events.len(), 0);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let j = Journal::new();
        j.enable(true);
        j.set_capacity(3);
        for i in 0..5 {
            j.span_complete("e", "t", i as f64, Some(1.0), None, None, Vec::new());
        }
        let snap = j.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 2);
        // Oldest evicted: timestamps 2, 3, 4 remain.
        assert_eq!(snap.events[0].wall_us, 2.0);
    }

    #[test]
    fn snapshot_orders_by_wall_time() {
        let j = Journal::new();
        j.enable(true);
        j.span_complete("b", "t", 5.0, Some(1.0), None, None, Vec::new());
        j.span_complete("a", "t", 1.0, Some(1.0), None, None, Vec::new());
        let snap = j.snapshot();
        assert_eq!(snap.events[0].name, "a");
        assert_eq!(snap.events[1].name, "b");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_clocks() {
        let j = Journal::new();
        j.enable(true);
        j.span_complete(
            "epoch",
            "backend",
            10.0,
            Some(50.0),
            Some(0.0),
            Some(1500.0),
            args(&[("batches", 4.0)]),
        );
        j.span_complete("sample", "phase.sample", 10.0, None, Some(0.0), Some(400.0), Vec::new());
        j.instant("reject", "explorer", None, Vec::new());
        j.counter("hit_rate", "cache", 0.75, Some(1500.0));
        let trace = j.snapshot().to_chrome_trace();
        let doc = parse(&trace).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
        // Find at least one X event on each clock pid.
        let phase = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_string);
        let pid = |e: &Value| e.get("pid").and_then(Value::as_f64);
        assert!(events.iter().any(|e| phase(e).as_deref() == Some("X") && pid(e) == Some(1.0)));
        assert!(events.iter().any(|e| phase(e).as_deref() == Some("X") && pid(e) == Some(2.0)));
        assert!(events.iter().any(|e| phase(e).as_deref() == Some("i")));
        assert!(events.iter().any(|e| phase(e).as_deref() == Some("C")));
        // Thread-name metadata names each track on both processes.
        let names: Vec<_> = events
            .iter()
            .filter(|e| phase(e).as_deref() == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
            .collect();
        assert!(names.iter().any(|n| n == "backend"));
        assert!(names.iter().any(|n| n == "phase.sample"));
        assert!(names.iter().any(|n| n == "wall clock"));
        assert!(names.iter().any(|n| n == "sim clock"));
        // Every X event carries a duration.
        for e in events.iter().filter(|e| phase(e).as_deref() == Some("X")) {
            assert!(e.get("dur").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn sim_only_span_skips_wall_process() {
        let j = Journal::new();
        j.enable(true);
        j.span_complete("p", "t", 3.0, None, Some(7.0), Some(2.0), Vec::new());
        let trace = j.snapshot().to_chrome_trace();
        let doc = parse(&trace).expect("valid");
        let xs: Vec<_> = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].get("pid").and_then(Value::as_f64), Some(2.0));
        assert_eq!(xs[0].get("ts").and_then(Value::as_f64), Some(7.0));
    }

    #[test]
    fn hostile_names_survive_chrome_export() {
        // Escaping audit: every string that reaches the exporter —
        // span names, track names, arg keys, arg string values —
        // must be escaped, or one hostile name corrupts the whole
        // trace file.
        let hostile = "q\"uote\\back\nnew\tta\u{1}b";
        let j = Journal::new();
        j.enable(true);
        let args: Args = vec![
            (Cow::Owned(format!("k{hostile}")), ArgValue::Str(format!("v{hostile}"))),
            (Cow::Borrowed("n"), ArgValue::F64(0.5)),
        ];
        j.span_complete(
            format!("span{hostile}"),
            format!("track{hostile}"),
            0.0,
            Some(1.0),
            Some(0.0),
            Some(2.0),
            args.clone(),
        );
        j.instant(format!("i{hostile}"), format!("track{hostile}"), None, args);
        j.counter(format!("c{hostile}"), format!("track{hostile}"), 1.0, None);
        let trace = j.snapshot().to_chrome_trace();
        let doc = parse(&trace).expect("hostile names must still parse");
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("array");
        // The hostile content round-trips intact through the escape.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("span event");
        assert_eq!(
            span.get("name").and_then(Value::as_str),
            Some(format!("span{hostile}").as_str())
        );
        let arg = span
            .get("args")
            .and_then(|a| a.get(&format!("k{hostile}")))
            .and_then(Value::as_str)
            .expect("hostile arg key");
        assert_eq!(arg, format!("v{hostile}"));
        // Track name appears escaped in thread metadata.
        let thread_names: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
            .collect();
        assert!(thread_names.iter().any(|n| n == &format!("track{hostile}")), "{thread_names:?}");
    }

    #[test]
    fn hostile_names_round_trip_through_importer() {
        let hostile = "a\"b\\c\nd";
        let j = Journal::new();
        j.enable(true);
        j.span_complete(
            format!("s{hostile}"),
            format!("t{hostile}"),
            0.0,
            None,
            Some(0.0),
            Some(5.0),
            Vec::new(),
        );
        let imported =
            crate::tree::import_chrome_trace(&j.snapshot().to_chrome_trace()).expect("import");
        assert_eq!(imported.events.len(), 1);
        assert_eq!(imported.events[0].name, format!("s{hostile}"));
        assert_eq!(imported.events[0].track, format!("t{hostile}"));
    }

    #[test]
    fn set_capacity_trims_existing_overflow() {
        let j = Journal::new();
        j.enable(true);
        for i in 0..10 {
            j.instant(format!("e{i}"), "t", None, Vec::new());
        }
        j.set_capacity(4);
        assert_eq!(j.len(), 4);
        assert_eq!(j.snapshot().dropped, 6);
    }
}
