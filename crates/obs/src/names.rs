//! Canonical metric names.
//!
//! Centralized so instrumentation sites, the CLI exporter, and the
//! schema tests agree on spelling. Naming scheme:
//! `<component>.<subject>[.<unit-suffix>]`, with `_s` marking seconds
//! (simulated unless the name says `wall`).

// --- runtime backend -------------------------------------------------

/// Backend executions completed.
pub const BACKEND_RUNS: &str = "backend.runs";
/// Mini-batches processed (all epochs, all runs).
pub const BACKEND_BATCHES: &str = "backend.batches";
/// Feature-cache lookup hits.
pub const CACHE_HITS: &str = "backend.cache.hits";
/// Feature-cache lookup misses.
pub const CACHE_MISSES: &str = "backend.cache.misses";
/// Cache rows evicted/replaced by updates.
pub const CACHE_EVICTIONS: &str = "backend.cache.evictions";
/// Per-epoch simulated host sampling time (gauge, last run).
pub const PHASE_SAMPLE: &str = "backend.phase.sample_s";
/// Per-epoch simulated host→device transfer time.
pub const PHASE_TRANSFER: &str = "backend.phase.transfer_s";
/// Per-epoch simulated cache-replacement time.
pub const PHASE_REPLACE: &str = "backend.phase.replace_s";
/// Per-epoch simulated device compute time.
pub const PHASE_COMPUTE: &str = "backend.phase.compute_s";
/// Per-epoch simulated epoch time (gauge, last run).
pub const EPOCH_TIME: &str = "backend.epoch_time_s";
/// Wall time spent in host-side sampling (gauge, last run).
pub const WALL_SAMPLE: &str = "backend.wall.sample_s";
/// Wall time spent in training steps (gauge, last run).
pub const WALL_TRAIN: &str = "backend.wall.train_s";
/// Full `RuntimeBackend::execute` wall time (histogram, seconds).
pub const EXECUTE_WALL: &str = "backend.execute";
/// Last training loss of the most recent run (gauge).
pub const LOSS_LAST: &str = "backend.loss.last";
/// Mean training loss of the most recent run (gauge).
pub const LOSS_MEAN: &str = "backend.loss.mean";

// --- gray-box profiler ----------------------------------------------

/// Ground-truth records collected by profiling sweeps.
pub const PROFILER_RECORDS: &str = "profiler.records";
/// Configurations that failed to execute during sweeps.
pub const PROFILER_FAILED: &str = "profiler.failed_configs";
/// Records per wall second of the last sweep (gauge).
pub const PROFILER_RECORDS_PER_S: &str = "profiler.records_per_s";
/// Mean worker utilization of the last sweep in [0, 1] (gauge).
pub const PROFILER_UTILIZATION: &str = "profiler.thread_utilization";
/// Worker threads used by the last sweep (gauge).
pub const PROFILER_THREADS: &str = "profiler.threads";
/// Full profiling-sweep wall time (histogram, seconds).
pub const PROFILER_SWEEP_WALL: &str = "profiler.sweep";

// --- gray-box estimator ---------------------------------------------

/// `GrayBoxEstimator::fit` invocations.
pub const ESTIMATOR_FITS: &str = "estimator.fits";
/// Wall seconds of the last fit (gauge).
pub const ESTIMATOR_FIT_WALL: &str = "estimator.fit_wall_s";
/// Predictions served.
pub const ESTIMATOR_PREDICTIONS: &str = "estimator.predictions";
/// In-sample MAPE of epoch-time prediction after the last fit.
pub const ESTIMATOR_MAPE_TIME: &str = "estimator.mape.time";
/// In-sample MAPE of peak-memory prediction after the last fit.
pub const ESTIMATOR_MAPE_MEMORY: &str = "estimator.mape.memory";
/// In-sample MAPE of accuracy prediction after the last fit (absent
/// in timing-only mode).
pub const ESTIMATOR_MAPE_ACCURACY: &str = "estimator.mape.accuracy";

// --- explorer --------------------------------------------------------

/// Explorations completed.
pub const EXPLORER_RUNS: &str = "explorer.runs";
/// Constraint-satisfying candidates evaluated by the search.
pub const EXPLORER_EVALUATED: &str = "explorer.candidates.evaluated";
/// Candidates rejected by runtime constraints.
pub const EXPLORER_REJECTED: &str = "explorer.candidates.rejected";
/// Subtrees pruned by the DFS bound.
pub const EXPLORER_PRUNED: &str = "explorer.subtrees.pruned";
/// Size of the estimated Pareto front of the last exploration (gauge).
pub const EXPLORER_FRONT_SIZE: &str = "explorer.front.size";
/// Wall seconds the decision maker took on the last exploration
/// (gauge).
pub const EXPLORER_DECISION_LATENCY: &str = "explorer.decision.latency_s";
/// Full exploration wall time (histogram, seconds).
pub const EXPLORER_EXPLORE_WALL: &str = "explorer.explore";
