//! Canonical metric, event, and track names.
//!
//! Centralized so instrumentation sites, the CLI exporter, and the
//! schema tests agree on spelling. Naming scheme:
//! `<component>.<subject>[.<unit-suffix>]`, with `_s` marking seconds
//! (simulated unless the name says `wall`).
//!
//! # Catalogue
//!
//! Registry series (type / unit / emitting call site):
//!
//! | series | type | unit | emitted by |
//! |---|---|---|---|
//! | `backend.runs` | counter | runs | `RuntimeBackend::execute` |
//! | `backend.batches` | counter | batches | `RuntimeBackend::execute` |
//! | `backend.cache.hits` | counter | lookups | `RuntimeBackend::execute` |
//! | `backend.cache.misses` | counter | lookups | `RuntimeBackend::execute` |
//! | `backend.cache.evictions` | counter | rows | `RuntimeBackend::execute` |
//! | `backend.phase.sample_s` | gauge | sim s/epoch | `RuntimeBackend::execute` (last run) |
//! | `backend.phase.transfer_s` | gauge | sim s/epoch | `RuntimeBackend::execute` (last run) |
//! | `backend.phase.replace_s` | gauge | sim s/epoch | `RuntimeBackend::execute` (last run) |
//! | `backend.phase.compute_s` | gauge | sim s/epoch | `RuntimeBackend::execute` (last run) |
//! | `backend.epoch_time_s` | gauge | sim s/epoch | `RuntimeBackend::execute` (last run) |
//! | `backend.epoch.sim_s` | histogram | sim s | `RuntimeBackend::execute`, one obs/epoch |
//! | `backend.epoch.hit_rate` | histogram | ratio | `RuntimeBackend::execute`, one obs/epoch |
//! | `backend.peak_mem_bytes` | gauge | bytes | `RuntimeBackend::execute` (last run) |
//! | `backend.wall.sample_s` | gauge | wall s | `RuntimeBackend::execute` (last run) |
//! | `backend.wall.train_s` | gauge | wall s | `RuntimeBackend::execute` (last run) |
//! | `backend.execute[.epoch]` | histogram | wall s | span in `RuntimeBackend::execute` |
//! | `backend.loss.last` / `.mean` | gauge | loss | `RuntimeBackend::execute` (last run) |
//! | `profiler.records` | counter | records | `Profiler::profile` |
//! | `profiler.failed_configs` | counter | configs | `Profiler::profile` |
//! | `profiler.records_per_s` | gauge | rec/wall s | `Profiler::profile` (last sweep) |
//! | `profiler.thread_utilization` | gauge | ratio | `Profiler::profile` (last sweep) |
//! | `profiler.threads` | gauge | threads | `Profiler::profile` (last sweep) |
//! | `profiler.sweep` | histogram | wall s | span in `Profiler::profile` |
//! | `profiler.sweep.config[.backend.execute[.epoch]]` | histogram | wall s | `span_under` on sweep workers |
//! | `estimator.fits` / `.predictions` | counter | calls | `GrayBoxEstimator` |
//! | `estimator.predictions.memoized` | counter | calls | `GrayBoxEstimator::predict_batch` |
//! | `estimator.fit_wall_s` | gauge | wall s | `GrayBoxEstimator::fit` |
//! | `estimator.mape.{time,memory,accuracy}` | gauge | ratio | `GrayBoxEstimator::fit` |
//! | `explorer.runs` | counter | runs | `Explorer::explore` |
//! | `explorer.candidates.evaluated` | counter | candidates | `DfsExplorer::run` |
//! | `explorer.candidates.rejected` | counter | candidates | `DfsExplorer::run` |
//! | `explorer.subtrees.pruned` | counter | subtrees | `DfsExplorer::run` |
//! | `explorer.front.size` | gauge | candidates | `Explorer::explore` |
//! | `explorer.explore` | histogram | wall s | span in `Explorer::explore` |
//! | `explorer.decide` | histogram | wall s | `Explorer::explore` decision step (flat, not span-nested) |
//! | `explorer.cache.hits` | counter | lookups | `ExploreCache::lookup` |
//! | `explorer.cache.misses` | counter | lookups | `ExploreCache::lookup` |
//! | `explorer.cache.inserts` | counter | results | `ExploreCache::insert` |
//! | `faults.injected` | counter | faults | `FaultInjector::inject` |
//! | `faults.injected.<kind>` | counter | faults | `FaultInjector::inject` |
//! | `backend.retries` | counter | retries | `RuntimeBackend::execute` |
//! | `backend.degradations` | counter | ladder steps | `RuntimeBackend::execute` |
//! | `backend.nan_loss_skips` | counter | steps | `RuntimeBackend::execute` |
//! | `profiler.retries` | counter | retries | `Profiler::profile` |
//! | `profiler.quarantined` | counter | configs | `Profiler::profile` |
//! | `profiler.timeouts` | counter | configs | `Profiler::profile` |
//! | `explorer.fallbacks` | counter | guidelines | `Explorer::explore` |
//! | `explorer.predictions.nonfinite` | counter | candidates | `DfsExplorer::run` |
//! | `nn.matmul.calls` | counter | kernel calls | `RuntimeBackend::execute` |
//! | `nn.matmul.flops` | counter | flops | `RuntimeBackend::execute` |
//! | `nn.matmul_gflops_wall` | gauge | GFLOP/wall s | `RuntimeBackend::execute` (last run) |
//! | `nn.matmul_gflops_floor` | counter | GFLOP/s | `perf_baseline` (the committed throughput floor) |
//! | `nn.kernel.par_tasks` | counter | chunks | `RuntimeBackend::execute` |
//! | `nn.kernel.par_regions` | counter | regions | `RuntimeBackend::execute` |
//! | `par.pool_threads` | gauge | threads | `RuntimeBackend::execute` (last run) |
//! | `adapt.drift_score` | gauge | ratio | `AdaptiveRunner::run`, one/epoch |
//! | `adapt.switches` | counter | switches | `AdaptiveRunner::run`, one/switch |
//! | `adapt.reexplore_ms` | gauge | wall ms | `AdaptiveRunner::run` (last re-exploration) |
//! | `alloc.allocs` | gauge | allocations | `RuntimeBackend::execute` (last run, tracking on) |
//! | `alloc.frees` | gauge | frees | `RuntimeBackend::execute` (last run, tracking on) |
//! | `alloc.alloc_bytes` | gauge | bytes | `RuntimeBackend::execute` (last run, tracking on) |
//! | `alloc.peak_bytes` | gauge | bytes | `RuntimeBackend::execute` (last run, tracking on) |
//! | `alloc.steady_state_allocs_per_epoch` | counter | allocations | `RuntimeBackend::execute`; gated at 0 in CI |
//! | `store.wal.appends` | counter | records | `Wal::append` |
//! | `store.wal.replayed` | counter | records | `Wal::open` recovery scan |
//! | `store.wal.torn_truncated` | counter | tails | `Wal::open` recovery scan |
//! | `store.wal.crc_failures` | counter | records | `Wal::open` recovery scan |
//! | `store.checkpoint.writes` | counter | checkpoints | `write_checkpoint` |
//! | `store.checkpoint.resumes` | counter | checkpoints | `read_checkpoint` (verified) |
//! | `store.checkpoint.rejected` | counter | checkpoints | `read_checkpoint` (damaged) |
//! | `store.checkpoint.bytes` | gauge | bytes | durable drivers (last write) |
//! | `serve.requests.admitted` | counter | requests | `NavService::submit` |
//! | `serve.requests.rejected` | counter | requests | `NavService::submit` |
//! | `serve.requests.degraded` | counter | requests | `NavService::submit` |
//! | `serve.requests.coalesced` | counter | requests | `NavService::drain` |
//! | `serve.responses` | counter | responses | `NavService::drain` |
//! | `serve.explorations` | counter | DSE runs | `NavService::drain` |
//! | `serve.waves` | counter | waves | `NavService::drain` |
//! | `serve.cache.hits` | counter | requests | `NavService::drain` (memory or `ExploreCache`) |
//! | `serve.neighbor.served` | counter | requests | `NavService::drain` (cache-only ladder rung) |
//! | `serve.pool.hits` | counter | lookups | `EstimatorPool::get_or_insert_with` |
//! | `serve.pool.misses` | counter | lookups | `EstimatorPool::get_or_insert_with` |
//! | `serve.pool.evictions` | counter | estimators | `EstimatorPool::get_or_insert_with` |
//! | `serve.queue.depth` | gauge | requests | `NavService` submit/drain |
//! | `serve.latency` | histogram | wall s | `NavService::drain`, one obs/response |
//!
//! Journal events (name @ track / kind / emitting call site):
//!
//! | event | track | kind | emitted by |
//! |---|---|---|---|
//! | `epoch` | `backend` | span (wall + sim) | `RuntimeBackend::execute`, one/epoch |
//! | `sample` / `transfer` / `replace` / `compute` | `phase.<name>` | span (sim only) | `RuntimeBackend::execute`, one/epoch |
//! | `recovery` | `phase.recovery` | span (sim only) | `RuntimeBackend::execute`, one/epoch with recovery time |
//! | `migration` | `phase.migration` | span (sim only) | `ExecutionSession::switch_config`, one/switch |
//! | `alloc` | `backend` | instant | `RuntimeBackend::execute`, one/run with tracking on |
//! | `backend.epoch.hit_rate` | `backend` | counter sample | `RuntimeBackend::execute`, one/epoch |
//! | `profile.config` | `profiler.worker-<i>` | span (wall) | `Profiler::profile`, one/config |
//! | `candidate` | `explorer` | instant | `DfsExplorer::run`, one/evaluation |
//! | `prune` | `explorer` | instant | `DfsExplorer::run`, one/pruned subtree |
//! | `guideline` | `explorer` | instant | `Explorer::explore`, selected config |
//! | `explore` / `decide` | `explorer` | span (wall) | `Explorer::explore`, one/run |
//! | `explore.cache` | `explorer` | instant | `ExploreCache` lookup/insert |
//! | `fault` | `faults` | instant | `FaultInjector::inject`, one/injection |
//! | `recovery` | `backend` | instant | `RuntimeBackend::execute`, one/recovery action |
//! | `kernels` | `backend` | instant | `RuntimeBackend::execute`, one/run |
//! | `drift` | `adapt` | instant | `AdaptiveRunner::run`, one/epoch with drift verdict |
//! | `switch` | `adapt` | instant | `AdaptiveRunner::run`, one/guideline switch |
//! | `wal.recovery` | `store` | instant | `Wal::open`, when the scan found damage |
//! | `checkpoint` | `store` | instant | `write_checkpoint`, one/write |
//! | `resume` | `store` | instant | `read_checkpoint`, one/verified read |
//! | `kill` | `store` | instant | durable drivers, one/ProcessKill fired |
//! | `serve.admit` | `serve` | instant | `NavService::submit`, one/admitted request |
//! | `serve.reject` | `serve` | instant | `NavService::submit`, one/rejected request |
//! | `serve.wave` | `serve` | span (wall) | `NavService::drain`, one/wave |

// --- runtime backend -------------------------------------------------

/// Backend executions completed.
pub const BACKEND_RUNS: &str = "backend.runs";
/// Mini-batches processed (all epochs, all runs).
pub const BACKEND_BATCHES: &str = "backend.batches";
/// Feature-cache lookup hits.
pub const CACHE_HITS: &str = "backend.cache.hits";
/// Feature-cache lookup misses.
pub const CACHE_MISSES: &str = "backend.cache.misses";
/// Cache rows evicted/replaced by updates.
pub const CACHE_EVICTIONS: &str = "backend.cache.evictions";
/// Per-epoch simulated host sampling time (gauge, last run).
pub const PHASE_SAMPLE: &str = "backend.phase.sample_s";
/// Per-epoch simulated host→device transfer time.
pub const PHASE_TRANSFER: &str = "backend.phase.transfer_s";
/// Per-epoch simulated cache-replacement time.
pub const PHASE_REPLACE: &str = "backend.phase.replace_s";
/// Per-epoch simulated device compute time.
pub const PHASE_COMPUTE: &str = "backend.phase.compute_s";
/// Per-epoch simulated epoch time (gauge, last run).
pub const EPOCH_TIME: &str = "backend.epoch_time_s";
/// Simulated seconds per epoch (histogram, one observation per epoch).
pub const EPOCH_SIM: &str = "backend.epoch.sim_s";
/// Cache hit rate per epoch (histogram, one observation per epoch).
pub const EPOCH_HIT_RATE: &str = "backend.epoch.hit_rate";
/// Estimated peak device memory of the last run (gauge, bytes).
pub const PEAK_MEM_BYTES: &str = "backend.peak_mem_bytes";
/// Wall time spent in host-side sampling (gauge, last run).
pub const WALL_SAMPLE: &str = "backend.wall.sample_s";
/// Wall time spent in training steps (gauge, last run).
pub const WALL_TRAIN: &str = "backend.wall.train_s";
/// Full `RuntimeBackend::execute` wall time (histogram, seconds).
pub const EXECUTE_WALL: &str = "backend.execute";
/// Last training loss of the most recent run (gauge).
pub const LOSS_LAST: &str = "backend.loss.last";
/// Mean training loss of the most recent run (gauge).
pub const LOSS_MEAN: &str = "backend.loss.mean";
/// Bounded retries of transient faults (sampling + memory claims).
pub const BACKEND_RETRIES: &str = "backend.retries";
/// Graceful-degradation ladder steps taken under persistent OOM.
pub const BACKEND_DEGRADATIONS: &str = "backend.degradations";
/// Training steps skipped by the NaN-loss guard.
pub const BACKEND_NAN_SKIPS: &str = "backend.nan_loss_skips";

// --- gray-box profiler ----------------------------------------------

/// Ground-truth records collected by profiling sweeps.
pub const PROFILER_RECORDS: &str = "profiler.records";
/// Configurations that failed to execute during sweeps.
pub const PROFILER_FAILED: &str = "profiler.failed_configs";
/// Records per wall second of the last sweep (gauge).
pub const PROFILER_RECORDS_PER_S: &str = "profiler.records_per_s";
/// Mean worker utilization of the last sweep in [0, 1] (gauge).
pub const PROFILER_UTILIZATION: &str = "profiler.thread_utilization";
/// Worker threads used by the last sweep (gauge).
pub const PROFILER_THREADS: &str = "profiler.threads";
/// Full profiling-sweep wall time (histogram, seconds).
pub const PROFILER_SWEEP_WALL: &str = "profiler.sweep";
/// Per-config retries performed by sweep workers.
pub const PROFILER_RETRIES: &str = "profiler.retries";
/// Configurations quarantined after exhausting their retry budget.
pub const PROFILER_QUARANTINED: &str = "profiler.quarantined";
/// Config executions classified as timed out.
pub const PROFILER_TIMEOUTS: &str = "profiler.timeouts";

// --- gray-box estimator ---------------------------------------------

/// `GrayBoxEstimator::fit` invocations.
pub const ESTIMATOR_FITS: &str = "estimator.fits";
/// Wall seconds of the last fit (gauge).
pub const ESTIMATOR_FIT_WALL: &str = "estimator.fit_wall_s";
/// Predictions served.
pub const ESTIMATOR_PREDICTIONS: &str = "estimator.predictions";
/// Predictions served from a `PredictionContext` memo instead of
/// being recomputed (duplicate configs within one exploration).
pub const ESTIMATOR_MEMOIZED: &str = "estimator.predictions.memoized";
/// In-sample MAPE of epoch-time prediction after the last fit.
pub const ESTIMATOR_MAPE_TIME: &str = "estimator.mape.time";
/// In-sample MAPE of peak-memory prediction after the last fit.
pub const ESTIMATOR_MAPE_MEMORY: &str = "estimator.mape.memory";
/// In-sample MAPE of accuracy prediction after the last fit (absent
/// in timing-only mode).
pub const ESTIMATOR_MAPE_ACCURACY: &str = "estimator.mape.accuracy";

// --- explorer --------------------------------------------------------

/// Explorations completed.
pub const EXPLORER_RUNS: &str = "explorer.runs";
/// Constraint-satisfying candidates evaluated by the search.
pub const EXPLORER_EVALUATED: &str = "explorer.candidates.evaluated";
/// Candidates rejected by runtime constraints.
pub const EXPLORER_REJECTED: &str = "explorer.candidates.rejected";
/// Subtrees pruned by the DFS bound.
pub const EXPLORER_PRUNED: &str = "explorer.subtrees.pruned";
/// Size of the estimated Pareto front of the last exploration (gauge).
pub const EXPLORER_FRONT_SIZE: &str = "explorer.front.size";
/// Full exploration wall time (histogram, seconds).
pub const EXPLORER_EXPLORE_WALL: &str = "explorer.explore";
/// Decision-maker wall time (histogram, seconds; the journal carries
/// the matching monotonic span on the explorer track).
pub const EXPLORER_DECIDE_WALL: &str = "explorer.decide";
/// Exploration-cache lookups answered from the cache.
pub const EXPLORER_CACHE_HITS: &str = "explorer.cache.hits";
/// Exploration-cache lookups that missed.
pub const EXPLORER_CACHE_MISSES: &str = "explorer.cache.misses";
/// Exploration results durably appended to the cache.
pub const EXPLORER_CACHE_INSERTS: &str = "explorer.cache.inserts";
/// Explorations that fell back to a nearest-feasible guideline.
pub const EXPLORER_FALLBACKS: &str = "explorer.fallbacks";
/// Candidate predictions rejected for non-finite components.
pub const EXPLORER_NONFINITE: &str = "explorer.predictions.nonfinite";

// --- nn kernels and thread pool ---------------------------------------

/// Dense matmul-family kernel invocations (all three variants).
pub const NN_MATMUL_CALLS: &str = "nn.matmul.calls";
/// Floating-point operations performed by the matmul kernels.
pub const NN_MATMUL_FLOPS: &str = "nn.matmul.flops";
/// Matmul throughput of the last run in GFLOP per wall second (gauge;
/// the `wall` suffix keeps it out of deterministic baselines).
pub const NN_MATMUL_GFLOPS: &str = "nn.matmul_gflops_wall";
/// The committed single-thread matmul throughput floor in GFLOP/s
/// (counter, recorded as a whole number). Deliberately *not* a wall
/// series: baking the floor into `BENCH_nn.json` lets
/// `gnnavigate metrics-diff` flag any PR that silently lowers the
/// kernel performance bar, while the measured-vs-floor assertion
/// itself runs in the `gflops_sweep` bench binary.
pub const NN_MATMUL_GFLOPS_FLOOR: &str = "nn.matmul_gflops_floor";
/// Chunks dispatched by the gnnav-par pool inside nn kernels.
pub const NN_KERNEL_PAR_TASKS: &str = "nn.kernel.par_tasks";
/// Parallel regions entered by the gnnav-par pool inside nn kernels.
pub const NN_KERNEL_PAR_REGIONS: &str = "nn.kernel.par_regions";
/// Effective gnnav-par worker budget of the last run (gauge).
pub const PAR_POOL_THREADS: &str = "par.pool_threads";

// --- adaptive training ------------------------------------------------

/// EWMA drift score of the last adaptive epoch (gauge; relative
/// deviation of observed vs predicted per-epoch metrics).
pub const ADAPT_DRIFT_SCORE: &str = "adapt.drift_score";
/// Mid-training guideline switches performed by the adaptive layer.
pub const ADAPT_SWITCHES: &str = "adapt.switches";
/// Wall milliseconds of the last incremental re-exploration (gauge;
/// refit + explore; the `wall`-free name is still excluded from
/// deterministic baselines because adaptive runs never feed them).
pub const ADAPT_REEXPLORE_MS: &str = "adapt.reexplore_ms";

// --- allocation telemetry ---------------------------------------------

/// Heap allocations observed during the last run while tracking was
/// on (gauge, delta over the run).
pub const ALLOC_ALLOCS: &str = "alloc.allocs";
/// Heap frees observed during the last run (gauge, delta).
pub const ALLOC_FREES: &str = "alloc.frees";
/// Bytes allocated during the last run (gauge, delta).
pub const ALLOC_BYTES: &str = "alloc.alloc_bytes";
/// High-water mark of live tracked bytes (gauge, absolute).
pub const ALLOC_PEAK_BYTES: &str = "alloc.peak_bytes";
/// Allocations charged to the per-batch training hot path per
/// steady-state (post-warmup) epoch, rounded up (counter). Zero on a
/// healthy build; pinned to zero in the committed perf baselines so
/// any steady-state allocation regression fails `metrics-diff`.
pub const ALLOC_STEADY_PER_EPOCH: &str = "alloc.steady_state_allocs_per_epoch";

// --- fault injection --------------------------------------------------

/// Total faults injected by the active `FaultPlan`.
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Per-kind injected-fault counter prefix (`faults.injected.<kind>`).
pub const FAULTS_INJECTED_PREFIX: &str = "faults.injected.";

// --- durability store ------------------------------------------------

/// WAL records appended durably.
pub const STORE_WAL_APPENDS: &str = "store.wal.appends";
/// WAL records replayed intact by the recovery scan.
pub const STORE_WAL_REPLAYED: &str = "store.wal.replayed";
/// Torn WAL tails truncated by the recovery scan.
pub const STORE_WAL_TORN_TRUNCATED: &str = "store.wal.torn_truncated";
/// WAL records dropped on CRC failure by the recovery scan.
pub const STORE_WAL_CRC_FAILURES: &str = "store.wal.crc_failures";
/// Checkpoint files written atomically.
pub const STORE_CHECKPOINT_WRITES: &str = "store.checkpoint.writes";
/// Checkpoint files read and verified for resume.
pub const STORE_CHECKPOINT_RESUMES: &str = "store.checkpoint.resumes";
/// Checkpoint files rejected (bad magic, version, or checksum).
pub const STORE_CHECKPOINT_REJECTED: &str = "store.checkpoint.rejected";
/// Encoded size of the last checkpoint payload (gauge, bytes) — the
/// per-epoch durability cost pinned in the perf baselines.
pub const STORE_CHECKPOINT_BYTES: &str = "store.checkpoint.bytes";

// --- navigation service ----------------------------------------------

/// Requests admitted past the bounded queue and the tenant budget.
pub const SERVE_REQUESTS_ADMITTED: &str = "serve.requests.admitted";
/// Requests rejected by admission control (queue full or tenant
/// budget exhausted).
pub const SERVE_REQUESTS_REJECTED: &str = "serve.requests.rejected";
/// Admitted requests whose exploration budget was degraded by queue
/// pressure (reduced budget or cache-only).
pub const SERVE_REQUESTS_DEGRADED: &str = "serve.requests.degraded";
/// Admitted requests coalesced onto another in-wave exploration with
/// an identical fingerprint.
pub const SERVE_REQUESTS_COALESCED: &str = "serve.requests.coalesced";
/// Responses committed in request order.
pub const SERVE_RESPONSES: &str = "serve.responses";
/// Fresh design-space explorations executed by waves.
pub const SERVE_EXPLORATIONS: &str = "serve.explorations";
/// Wave drains completed.
pub const SERVE_WAVES: &str = "serve.waves";
/// Requests served from a prior exploration result (in-memory or the
/// durable `ExploreCache`) without running the DSE.
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";
/// Cache-only-degraded requests served by the nearest-neighbor index.
pub const SERVE_NEIGHBOR_SERVED: &str = "serve.neighbor.served";
/// Estimator-pool lookups that found a warm fit for the platform.
pub const SERVE_POOL_HITS: &str = "serve.pool.hits";
/// Estimator-pool lookups that had to calibrate a fresh fit.
pub const SERVE_POOL_MISSES: &str = "serve.pool.misses";
/// Warm estimators evicted by the pool's LRU bound.
pub const SERVE_POOL_EVICTIONS: &str = "serve.pool.evictions";
/// Pending requests in the admission queue (gauge).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Submit-to-commit latency per response (histogram, wall seconds;
/// excluded from deterministic baselines like every wall series).
pub const SERVE_LATENCY: &str = "serve.latency";

// --- journal tracks and events ---------------------------------------

/// Journal track for per-epoch backend events.
pub const TRACK_BACKEND: &str = "backend";
/// Journal track prefix for per-phase simulated spans
/// (`phase.sample`, `phase.transfer`, ...).
pub const TRACK_PHASE_PREFIX: &str = "phase.";
/// Journal track prefix for profiler worker threads
/// (`profiler.worker-0`, ...).
pub const TRACK_PROFILER_WORKER_PREFIX: &str = "profiler.worker-";
/// Journal track for explorer decision events.
pub const TRACK_EXPLORER: &str = "explorer";
/// Journal track for fault injections.
pub const TRACK_FAULTS: &str = "faults";
/// Journal track for adaptive-training drift and switch events.
pub const TRACK_ADAPT: &str = "adapt";
/// Journal track for durability events (WAL recovery, checkpoints,
/// resumes, simulated kills).
pub const TRACK_STORE: &str = "store";
/// Journal track for navigation-service admission and wave events.
pub const TRACK_SERVE: &str = "serve";

/// Per-epoch span event on [`TRACK_BACKEND`] (wall + sim clocks).
pub const EVENT_EPOCH: &str = "epoch";
/// Per-config span event on a profiler worker track.
pub const EVENT_PROFILE_CONFIG: &str = "profile.config";
/// Per-candidate audit instant on [`TRACK_EXPLORER`].
pub const EVENT_CANDIDATE: &str = "candidate";
/// Pruned-subtree audit instant on [`TRACK_EXPLORER`].
pub const EVENT_PRUNE: &str = "prune";
/// Selected-guideline audit instant on [`TRACK_EXPLORER`].
pub const EVENT_GUIDELINE: &str = "guideline";
/// Full-exploration monotonic span on [`TRACK_EXPLORER`].
pub const EVENT_EXPLORE: &str = "explore";
/// Decision-maker monotonic span on [`TRACK_EXPLORER`].
pub const EVENT_DECIDE: &str = "decide";
/// Exploration-cache lookup/insert instant on [`TRACK_EXPLORER`].
pub const EVENT_EXPLORE_CACHE: &str = "explore.cache";
/// Per-injection instant on [`TRACK_FAULTS`].
pub const EVENT_FAULT: &str = "fault";
/// Per-recovery-action instant on [`TRACK_BACKEND`].
pub const EVENT_RECOVERY: &str = "recovery";
/// Per-run kernel-stats instant on [`TRACK_BACKEND`] (matmul calls,
/// flops, parallel chunks).
pub const EVENT_KERNELS: &str = "kernels";
/// Per-epoch drift-verdict instant on [`TRACK_ADAPT`].
pub const EVENT_DRIFT: &str = "drift";
/// Per-switch instant on [`TRACK_ADAPT`].
pub const EVENT_SWITCH: &str = "switch";
/// Sim-time guideline-migration span on the `phase.migration` track,
/// one per `switch_config`.
pub const EVENT_MIGRATION: &str = "migration";
/// Per-run allocator-telemetry instant on [`TRACK_BACKEND`] (allocs,
/// frees, bytes, peak; emitted when tracking is on).
pub const EVENT_ALLOC: &str = "alloc";
/// WAL-recovery instant on [`TRACK_STORE`] (emitted when the scan
/// found damage).
pub const EVENT_WAL_RECOVERY: &str = "wal.recovery";
/// Checkpoint-write instant on [`TRACK_STORE`].
pub const EVENT_CHECKPOINT: &str = "checkpoint";
/// Verified checkpoint-read instant on [`TRACK_STORE`].
pub const EVENT_RESUME: &str = "resume";
/// Simulated process-kill instant on [`TRACK_STORE`], one per
/// `ProcessKill` fault fired by a durable driver.
pub const EVENT_KILL: &str = "kill";
/// Per-admitted-request instant on [`TRACK_SERVE`].
pub const EVENT_SERVE_ADMIT: &str = "serve.admit";
/// Per-rejected-request instant on [`TRACK_SERVE`] — rejections emit
/// only this instant, never an open span.
pub const EVENT_SERVE_REJECT: &str = "serve.reject";
/// Per-wave monotonic span on [`TRACK_SERVE`].
pub const EVENT_SERVE_WAVE: &str = "serve.wave";
