//! Folded-stacks (flamegraph) export of a span forest.
//!
//! Produces the line-per-stack format `flamegraph.pl` and `inferno`
//! consume: `track;frame;…;frame <weight>`, one line per distinct
//! span path, sorted lexicographically. Weights are **exclusive**
//! time in integer microseconds, so the flamegraph's box widths sum
//! to the total traced time without double counting parents.
//!
//! Two weightings are available (`gnnavigate --flame-weight`):
//! [`Clock::Sim`] is deterministic for a fixed seed and is what CI
//! byte-compares; [`Clock::Wall`] shows real overheads (profiler
//! workers, exploration) and varies run to run.

use crate::journal::JournalSnapshot;
use crate::tree::{Clock, SpanForest};

/// Renders `snapshot`'s spans as folded stacks on `clock`.
///
/// Paths whose weight rounds to zero microseconds are omitted (a
/// folded stack with weight 0 renders as nothing but still perturbs
/// diffs).
pub fn folded_stacks(snapshot: &JournalSnapshot, clock: Clock) -> String {
    render(&SpanForest::build(snapshot, clock))
}

/// Renders an already-built forest as folded stacks (see
/// [`folded_stacks`]).
pub fn render(forest: &SpanForest) -> String {
    let mut out = String::new();
    for (path, agg) in forest.aggregate_paths() {
        let weight = agg.exclusive_us.round() as u64;
        if weight == 0 {
            continue;
        }
        out.push_str(&path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Journal;

    fn demo_journal() -> Journal {
        let j = Journal::new();
        j.enable(true);
        // Sim timeline: two epochs with a nested inner span.
        j.span_complete("epoch", "backend", 0.0, Some(11.0), Some(0.0), Some(100.0), Vec::new());
        j.span_complete("inner", "backend", 1.0, None, Some(10.0), Some(40.0), Vec::new());
        j.span_complete("epoch", "backend", 11.0, Some(9.0), Some(100.0), Some(60.0), Vec::new());
        // Wall-only span: appears in wall weighting only.
        j.span_complete(
            "profile.config",
            "profiler.worker-0",
            0.0,
            Some(5.5),
            None,
            None,
            Vec::new(),
        );
        j
    }

    #[test]
    fn folded_stacks_use_exclusive_weights() {
        let out = folded_stacks(&demo_journal().snapshot(), Clock::Sim);
        // 100 - 40 + 60 = 120 exclusive across both epochs.
        assert_eq!(out, "backend;epoch 120\nbackend;epoch;inner 40\n");
    }

    #[test]
    fn wall_weighting_includes_wall_only_tracks() {
        let out = folded_stacks(&demo_journal().snapshot(), Clock::Wall);
        assert!(out.contains("profiler.worker-0;profile.config 6\n"), "{out}");
        assert!(out.contains("backend;epoch 20\n"), "{out}");
        // The sim-only inner span is absent on the wall clock.
        assert!(!out.contains("inner"), "{out}");
    }

    #[test]
    fn zero_weight_paths_are_omitted() {
        let j = Journal::new();
        j.enable(true);
        j.span_complete("z", "t", 0.0, None, Some(0.0), Some(0.2), Vec::new());
        assert_eq!(folded_stacks(&j.snapshot(), Clock::Sim), "");
    }

    #[test]
    fn every_line_parses_as_path_space_weight() {
        let out = folded_stacks(&demo_journal().snapshot(), Clock::Wall);
        for line in out.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("separator");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer weight");
        }
    }
}
