//! Span-forest reconstruction from journal snapshots.
//!
//! Spans in the [`Journal`](crate::Journal) carry no parent ids: the
//! runtime emits *completed* spans with timestamps and durations only.
//! [`SpanForest::build`] recovers the hierarchy per track and per
//! clock by interval containment — a span is a child of the innermost
//! span on the same track whose interval contains it — which is exact
//! for single-timeline tracks like the backend's epoch/phase spans and
//! degrades gracefully (partial overlaps become siblings) for
//! pipelined phases that spill past their epoch.
//!
//! The forest is the substrate of the trace analytics built on top:
//! [`critical`](crate::critical) (critical path + per-epoch phase
//! attribution), [`flame`](crate::flame) (folded-stacks export), and
//! [`tracediff`](crate::tracediff) (differential profiling). Saved
//! `--trace-out` files round-trip back into a [`JournalSnapshot`]
//! through [`import_chrome_trace`], so every analysis works on live
//! journals and on-disk traces alike.

use crate::journal::{ArgValue, Args, Event, EventKind, JournalSnapshot};
use crate::json::{self, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Which timeline a forest is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Measured wall-clock time. Varies run to run; never gated.
    Wall,
    /// Simulated time. Deterministic for a fixed `(seed, plan,
    /// GNNAV_THREADS)`, so it is the clock every gated report uses.
    Sim,
}

impl Clock {
    /// Lowercase label used in report headers.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Sim => "sim",
        }
    }
}

/// One reconstructed span with its children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Event name.
    pub name: String,
    /// Track the span was recorded on.
    pub track: String,
    /// Folded path `track;ancestors…;name` — the flamegraph frame key
    /// and the alignment key of `trace-diff`. Frames are sanitized
    /// (`;` and whitespace replaced) so the folded-stack grammar stays
    /// unambiguous under hostile names.
    pub path: String,
    /// Start timestamp on the forest's clock, microseconds.
    pub start_us: f64,
    /// Inclusive duration (self plus descendants), microseconds.
    pub inclusive_us: f64,
    /// Exclusive duration (inclusive minus children), microseconds,
    /// clamped at zero.
    pub exclusive_us: f64,
    /// Structured arguments copied from the journal event.
    pub args: Args,
    /// Child spans ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// End timestamp on the forest's clock, microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.inclusive_us
    }

    /// Looks up a numeric argument by key (`U64` and `F64` both
    /// answer; imported traces store integral numbers as `U64`).
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            ArgValue::F64(f) => Some(*f),
            ArgValue::U64(u) => Some(*u as f64),
            _ => None,
        })
    }
}

/// Aggregate statistics of one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackRollup {
    /// Track name.
    pub track: String,
    /// Total spans on the track.
    pub spans: u64,
    /// Root spans (not contained by any other span).
    pub roots: u64,
    /// Sum of root inclusive durations, microseconds.
    pub inclusive_us: f64,
}

/// Aggregate of all spans sharing one folded path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathAgg {
    /// Number of spans.
    pub count: u64,
    /// Summed inclusive duration, microseconds.
    pub inclusive_us: f64,
    /// Summed exclusive duration, microseconds.
    pub exclusive_us: f64,
}

/// A per-track span hierarchy on one clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanForest {
    /// The clock the forest was built on.
    pub clock: Clock,
    /// Root spans per track, ordered by start time.
    pub tracks: BTreeMap<String, Vec<SpanNode>>,
    /// Span events skipped because they carry no duration on this
    /// clock (e.g. wall-only profiler spans in a sim forest).
    pub skipped_spans: u64,
    /// Events the journal ring evicted before the snapshot was taken
    /// (propagated so downstream reports can refuse to gate).
    pub dropped: u64,
}

impl SpanForest {
    /// Reconstructs the span forest of `snapshot` on `clock`.
    ///
    /// Deterministic regardless of event order in the snapshot: spans
    /// are re-sorted per track by `(start asc, end desc, name asc)`,
    /// so two snapshots of the same simulated timeline produce
    /// identical forests even though their wall timestamps differ.
    pub fn build(snapshot: &JournalSnapshot, clock: Clock) -> SpanForest {
        let mut per_track: BTreeMap<&str, Vec<(f64, f64, &Event)>> = BTreeMap::new();
        let mut skipped = 0u64;
        for e in &snapshot.events {
            let EventKind::Span { wall_dur_us, sim_dur_us } = &e.kind else { continue };
            let picked = match clock {
                Clock::Wall => wall_dur_us.map(|d| (e.wall_us, d)),
                Clock::Sim => match (e.sim_us, sim_dur_us) {
                    (Some(ts), Some(d)) => Some((ts, *d)),
                    _ => None,
                },
            };
            match picked {
                Some((ts, dur)) if ts.is_finite() && dur.is_finite() && dur >= 0.0 => {
                    per_track.entry(e.track.as_ref()).or_default().push((ts, ts + dur, e));
                }
                _ => skipped += 1,
            }
        }
        let mut tracks = BTreeMap::new();
        for (track, mut spans) in per_track {
            // Outer spans first: start ascending, longer first. The
            // name breaks exact interval ties so rebuilds do not
            // depend on the snapshot's (wall-ordered) event order.
            spans.sort_by(|a, b| {
                a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)).then_with(|| a.2.name.cmp(&b.2.name))
            });
            tracks.insert(track.to_string(), nest(track, &spans));
        }
        SpanForest { clock, tracks, skipped_spans: skipped, dropped: snapshot.dropped }
    }

    /// Per-track aggregates, sorted by track name.
    pub fn rollups(&self) -> Vec<TrackRollup> {
        fn count(nodes: &[SpanNode], spans: &mut u64) {
            for n in nodes {
                *spans += 1;
                count(&n.children, spans);
            }
        }
        self.tracks
            .iter()
            .map(|(track, roots)| {
                let mut spans = 0u64;
                count(roots, &mut spans);
                TrackRollup {
                    track: track.clone(),
                    spans,
                    roots: roots.len() as u64,
                    inclusive_us: roots.iter().map(|r| r.inclusive_us).sum(),
                }
            })
            .collect()
    }

    /// Sum of root inclusive durations across every track,
    /// microseconds — "all the time the trace accounts for".
    pub fn total_inclusive_us(&self) -> f64 {
        self.tracks.values().flatten().map(|r| r.inclusive_us).sum()
    }

    /// Visits every span (tracks in name order, spans pre-order) with
    /// its depth.
    pub fn visit<F: FnMut(&SpanNode, usize)>(&self, mut f: F) {
        fn walk<F: FnMut(&SpanNode, usize)>(nodes: &[SpanNode], depth: usize, f: &mut F) {
            for n in nodes {
                f(n, depth);
                walk(&n.children, depth + 1, f);
            }
        }
        for roots in self.tracks.values() {
            walk(roots, 0, &mut f);
        }
    }

    /// Aggregates every span by folded path.
    pub fn aggregate_paths(&self) -> BTreeMap<String, PathAgg> {
        let mut map: BTreeMap<String, PathAgg> = BTreeMap::new();
        self.visit(|node, _| {
            let agg = map.entry(node.path.clone()).or_default();
            agg.count += 1;
            agg.inclusive_us += node.inclusive_us;
            agg.exclusive_us += node.exclusive_us;
        });
        map
    }
}

/// Sanitizes a name into a folded-stack frame: `;` separates frames
/// and the final space separates the weight, so neither may appear
/// inside one.
fn frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c if (c as u32) < 0x20 => '_',
            c => c,
        })
        .collect()
}

struct Open {
    node: SpanNode,
    end: f64,
    child_inclusive: f64,
}

fn close(open: Open, stack: &mut [Open], roots: &mut Vec<SpanNode>) {
    let mut node = open.node;
    node.exclusive_us = (node.inclusive_us - open.child_inclusive).max(0.0);
    match stack.last_mut() {
        Some(parent) => {
            parent.child_inclusive += node.inclusive_us;
            parent.node.children.push(node);
        }
        None => roots.push(node),
    }
}

/// Stack-based containment nesting over spans sorted outer-first.
fn nest(track: &str, spans: &[(f64, f64, &Event)]) -> Vec<SpanNode> {
    let mut roots = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    for &(start, end, event) in spans {
        while stack.last().is_some_and(|top| start >= top.end) {
            let open = stack.pop().expect("non-empty stack");
            close(open, &mut stack, &mut roots);
        }
        // A span that straddles the open one (starts inside, ends
        // outside — pipelined phases do this) cannot be its child:
        // flush until it fits, then treat it as a sibling.
        while stack.last().is_some_and(|top| end > top.end) {
            let open = stack.pop().expect("non-empty stack");
            close(open, &mut stack, &mut roots);
        }
        let path = match stack.last() {
            Some(top) => format!("{};{}", top.node.path, frame(&event.name)),
            None => format!("{};{}", frame(track), frame(&event.name)),
        };
        stack.push(Open {
            node: SpanNode {
                name: event.name.to_string(),
                track: track.to_string(),
                path,
                start_us: start,
                inclusive_us: end - start,
                exclusive_us: 0.0,
                args: event.args.clone(),
                children: Vec::new(),
            },
            end,
            child_inclusive: 0.0,
        });
    }
    while let Some(open) = stack.pop() {
        close(open, &mut stack, &mut roots);
    }
    roots
}

/// Parses a saved `--trace-out` Chrome trace back into a
/// [`JournalSnapshot`].
///
/// Inverse of [`JournalSnapshot::to_chrome_trace`] up to clock
/// splitting: a dual-clock span exports as two `X` events (one per
/// clock process) and imports as two single-clock events, which is
/// equivalent for per-clock forests. Instants and counter samples are
/// taken from the wall process only (the exporter mirrors them onto
/// both); integral non-negative numeric args come back as `U64`. The
/// top-level `droppedEvents` count is preserved so truncation stays
/// loud after a round trip.
///
/// # Errors
///
/// Returns a [`json::ParseError`] on malformed JSON or a document
/// without a `traceEvents` array.
pub fn import_chrome_trace(text: &str) -> Result<JournalSnapshot, json::ParseError> {
    let doc = json::parse(text)?;
    let schema = |msg: &str| json::ParseError { message: msg.into(), offset: 0 };
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| schema("missing `traceEvents` array"))?;

    // (pid, tid) -> track name, from thread_name metadata.
    let mut tracks: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("name").and_then(Value::as_str) == Some("thread_name")
        {
            let pid = e.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            if let Some(name) = e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str) {
                tracks.insert((pid, tid), name.to_string());
            }
        }
    }

    let mut out = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let Some(ts) = e.get("ts").and_then(Value::as_f64) else { continue };
        let name = e.get("name").and_then(Value::as_str).unwrap_or("").to_string();
        let track = tracks.get(&(pid, tid)).cloned().unwrap_or_else(|| format!("tid-{tid}"));
        let sim = pid == 2; // PID_SIM in the exporter
        match ph {
            "X" => {
                let Some(dur) = e.get("dur").and_then(Value::as_f64) else { continue };
                out.push(Event {
                    name: name.into(),
                    track: track.into(),
                    wall_us: if sim { 0.0 } else { ts },
                    sim_us: sim.then_some(ts),
                    kind: EventKind::Span {
                        wall_dur_us: (!sim).then_some(dur),
                        sim_dur_us: sim.then_some(dur),
                    },
                    args: import_args(e.get("args")),
                });
            }
            "i" if !sim => {
                out.push(Event {
                    name: name.into(),
                    track: track.into(),
                    wall_us: ts,
                    sim_us: None,
                    kind: EventKind::Instant,
                    args: import_args(e.get("args")),
                });
            }
            "C" if !sim => {
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                out.push(Event {
                    name: name.into(),
                    track: track.into(),
                    wall_us: ts,
                    sim_us: None,
                    kind: EventKind::Counter { value },
                    args: Vec::new(),
                });
            }
            _ => {}
        }
    }
    let dropped = doc.get("droppedEvents").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    Ok(JournalSnapshot { events: out, dropped })
}

fn import_args(v: Option<&Value>) -> Args {
    let Some(Value::Obj(map)) = v else { return Vec::new() };
    map.iter()
        .map(|(k, v)| {
            let val = match v {
                Value::Bool(b) => ArgValue::Bool(*b),
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.007_199_254_740_992e15 => {
                    ArgValue::U64(*n as u64)
                }
                Value::Num(n) => ArgValue::F64(*n),
                Value::Str(s) => ArgValue::Str(s.clone()),
                _ => ArgValue::Str(String::new()),
            };
            (Cow::Owned(k.clone()), val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Journal;

    fn sim_span(j: &Journal, name: &'static str, track: &'static str, start: f64, dur: f64) {
        j.span_complete(name, track, 0.0, None, Some(start), Some(dur), Vec::new());
    }

    #[test]
    fn containment_nesting_recovers_hierarchy() {
        let j = Journal::new();
        j.enable(true);
        sim_span(&j, "epoch", "backend", 0.0, 100.0);
        sim_span(&j, "inner", "backend", 10.0, 30.0);
        sim_span(&j, "leaf", "backend", 15.0, 5.0);
        sim_span(&j, "epoch", "backend", 100.0, 50.0);
        let f = SpanForest::build(&j.snapshot(), Clock::Sim);
        let roots = &f.tracks["backend"];
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "epoch");
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "inner");
        assert_eq!(roots[0].children[0].children[0].name, "leaf");
        assert_eq!(roots[0].children[0].children[0].path, "backend;epoch;inner;leaf");
        // Exclusive = inclusive minus direct children.
        assert_eq!(roots[0].inclusive_us, 100.0);
        assert_eq!(roots[0].exclusive_us, 70.0);
        assert_eq!(roots[0].children[0].exclusive_us, 25.0);
        assert_eq!(roots[1].children.len(), 0);
        assert_eq!(roots[1].exclusive_us, 50.0);
    }

    #[test]
    fn build_is_independent_of_event_order() {
        let build = |order: &[usize]| {
            let spans = [
                ("epoch", 0.0, 100.0),
                ("inner", 10.0, 30.0),
                ("leaf", 15.0, 5.0),
                ("tail", 60.0, 20.0),
            ];
            let j = Journal::new();
            j.enable(true);
            for (i, &idx) in order.iter().enumerate() {
                let (name, start, dur) = spans[idx];
                // Vary wall timestamps with insertion order to mimic
                // scheduler-dependent snapshot ordering.
                j.span_complete(name, "t", i as f64, None, Some(start), Some(dur), Vec::new());
            }
            SpanForest::build(&j.snapshot(), Clock::Sim)
        };
        let a = build(&[0, 1, 2, 3]);
        let b = build(&[3, 2, 1, 0]);
        let c = build(&[2, 0, 3, 1]);
        assert_eq!(a.tracks, b.tracks);
        assert_eq!(a.tracks, c.tracks);
    }

    #[test]
    fn partial_overlap_becomes_sibling_not_child() {
        let j = Journal::new();
        j.enable(true);
        // Pipelined phases: the second starts inside the first but
        // ends after it.
        sim_span(&j, "a", "t", 0.0, 50.0);
        sim_span(&j, "b", "t", 30.0, 50.0);
        let f = SpanForest::build(&j.snapshot(), Clock::Sim);
        let roots = &f.tracks["t"];
        assert_eq!(roots.len(), 2, "{roots:?}");
        assert!(roots.iter().all(|r| r.children.is_empty()));
    }

    #[test]
    fn clocks_partition_spans_and_count_skips() {
        let j = Journal::new();
        j.enable(true);
        // Dual-clock span: on both forests.
        j.span_complete("both", "t", 5.0, Some(10.0), Some(0.0), Some(100.0), Vec::new());
        // Wall-only: skipped by the sim forest.
        j.span_complete("wall", "w", 0.0, Some(3.0), None, None, Vec::new());
        let sim = SpanForest::build(&j.snapshot(), Clock::Sim);
        assert_eq!(sim.tracks.len(), 1);
        assert_eq!(sim.skipped_spans, 1);
        let wall = SpanForest::build(&j.snapshot(), Clock::Wall);
        assert_eq!(wall.tracks.len(), 2);
        assert_eq!(wall.skipped_spans, 0);
    }

    #[test]
    fn rollups_and_path_aggregation() {
        let j = Journal::new();
        j.enable(true);
        sim_span(&j, "epoch", "backend", 0.0, 100.0);
        sim_span(&j, "epoch", "backend", 100.0, 60.0);
        sim_span(&j, "sample", "phase.sample", 0.0, 40.0);
        let f = SpanForest::build(&j.snapshot(), Clock::Sim);
        let rollups = f.rollups();
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].track, "backend");
        assert_eq!(rollups[0].spans, 2);
        assert_eq!(rollups[0].inclusive_us, 160.0);
        assert_eq!(f.total_inclusive_us(), 200.0);
        let paths = f.aggregate_paths();
        assert_eq!(paths["backend;epoch"].count, 2);
        assert_eq!(paths["backend;epoch"].inclusive_us, 160.0);
        assert_eq!(paths["phase.sample;sample"].count, 1);
    }

    #[test]
    fn hostile_names_are_sanitized_in_paths() {
        let j = Journal::new();
        j.enable(true);
        sim_span(&j, "a;b c\td", "tr;ck", 0.0, 10.0);
        let f = SpanForest::build(&j.snapshot(), Clock::Sim);
        let (path, _) = f.aggregate_paths().into_iter().next().expect("one path");
        assert_eq!(path, "tr:ck;a:b_c_d");
    }

    #[test]
    fn chrome_trace_round_trip_preserves_forest_and_dropped() {
        let j = Journal::new();
        j.enable(true);
        j.set_capacity(4);
        j.instant("evicted", "backend", None, Vec::new());
        j.span_complete(
            "epoch",
            "backend",
            1.0,
            Some(9.0),
            Some(0.0),
            Some(100.0),
            vec![(Cow::Borrowed("epoch"), ArgValue::U64(0))],
        );
        sim_span(&j, "sample", "phase.sample", 0.0, 40.0);
        j.instant("recovery", "backend", None, Vec::new());
        j.counter("hit_rate", "backend", 0.5, None);
        let snap = j.snapshot();
        assert_eq!(snap.dropped, 1);
        let imported = import_chrome_trace(&snap.to_chrome_trace()).expect("import");
        assert_eq!(imported.dropped, 1);
        let orig = SpanForest::build(&snap, Clock::Sim);
        let back = SpanForest::build(&imported, Clock::Sim);
        assert_eq!(orig.tracks, back.tracks);
        // The epoch arg survives the round trip as a number.
        let epoch = &back.tracks["backend"][0];
        assert_eq!(epoch.arg_f64("epoch"), Some(0.0));
        // Instants and counters import once (wall process only).
        let instants =
            imported.events.iter().filter(|e| matches!(e.kind, EventKind::Instant)).count();
        assert_eq!(instants, 1);
        let counters =
            imported.events.iter().filter(|e| matches!(e.kind, EventKind::Counter { .. })).count();
        assert_eq!(counters, 1);
    }

    #[test]
    fn import_rejects_non_trace_documents() {
        assert!(import_chrome_trace("{}").is_err());
        assert!(import_chrome_trace("[1, 2]").is_err());
        assert!(import_chrome_trace("not json").is_err());
    }
}
