//! Differential trace profiling for the `gnnavigate trace-diff` gate.
//!
//! [`diff_traces`] aligns two journal snapshots (typically imported
//! from saved `--trace-out` files) by folded span path on the **sim
//! clock** and attributes the total regression to specific spans:
//! per-path inclusive/exclusive deltas, appeared/disappeared paths,
//! and a total-time row. Mirrors [`diff`](crate::diff) for metric
//! snapshots.
//!
//! Gating rules (what exits non-zero):
//!
//! - An existing path whose inclusive sim time **grew** more than the
//!   threshold is a breach; shrinking is reported as an improvement
//!   but never fails (a faster run should not break the gate).
//! - An **appeared** path is a breach when its inclusive time exceeds
//!   the threshold as a share of the baseline total (new incidental
//!   spans stay informational; a new stall does not).
//! - A **disappeared** path is informational: spans vanish when work
//!   gets faster or instrumentation moves, and the metrics-diff gate
//!   already guards lost instrumentation.
//! - The **total** row (sum of root spans) gates like any path.
//! - A truncated input ([`JournalSnapshot::dropped`] > 0 on either
//!   side) makes the comparison unsound — missing spans read as
//!   improvements. [`TraceDiffReport::truncated`] is surfaced by the
//!   CLI as a distinct exit code (2) and no gate verdict is issued.

use crate::journal::JournalSnapshot;
use crate::tree::{Clock, PathAgg, SpanForest};

/// One aligned span path.
#[derive(Debug, Clone)]
pub struct TraceDiffRow {
    /// Folded span path (`track;frames…`).
    pub path: String,
    /// Baseline aggregate (`None` when the path appeared).
    pub baseline: Option<PathAgg>,
    /// Current aggregate (`None` when the path disappeared).
    pub current: Option<PathAgg>,
    /// Relative inclusive-time change in percent (`None` when not
    /// computable).
    pub delta_pct: Option<f64>,
    /// Whether this row fails the gate at the report threshold.
    pub breach: bool,
}

impl TraceDiffRow {
    fn sort_key(&self) -> f64 {
        match self.delta_pct {
            Some(d) => d.abs(),
            None if self.breach => f64::INFINITY,
            None => -1.0,
        }
    }
}

/// The outcome of [`diff_traces`].
#[derive(Debug, Clone)]
pub struct TraceDiffReport {
    /// The gate threshold, in percent.
    pub threshold_pct: f64,
    /// Baseline total inclusive sim time (root spans), microseconds.
    pub baseline_total_us: f64,
    /// Current total inclusive sim time (root spans), microseconds.
    pub current_total_us: f64,
    /// Relative total change in percent, when computable.
    pub total_delta_pct: Option<f64>,
    /// Events the baseline journal ring dropped.
    pub baseline_dropped: u64,
    /// Events the current journal ring dropped.
    pub current_dropped: u64,
    /// Per-path rows, sorted by |delta| descending.
    pub rows: Vec<TraceDiffRow>,
}

impl TraceDiffReport {
    /// Whether either input lost events to ring eviction, making the
    /// gate verdict unsound.
    pub fn truncated(&self) -> bool {
        self.baseline_dropped > 0 || self.current_dropped > 0
    }

    /// Whether the total-time row breaches the threshold.
    pub fn total_breach(&self) -> bool {
        self.total_delta_pct.is_some_and(|d| d > self.threshold_pct)
    }

    /// Number of breaching path rows (excludes the total row).
    pub fn breaches(&self) -> usize {
        self.rows.iter().filter(|r| r.breach).count()
    }

    /// Whether anything (path or total) fails the gate.
    pub fn has_breach(&self) -> bool {
        self.total_breach() || self.rows.iter().any(|r| r.breach)
    }

    /// Renders the regression table, worst offenders first.
    pub fn to_table(&self) -> String {
        let secs = |us: f64| format!("{:.6}", us / 1e6);
        let mut out = format!(
            "trace-diff (sim clock): {} paths compared, {} breach(es) at +{}% threshold\n",
            self.rows.len(),
            self.breaches() + usize::from(self.total_breach()),
            self.threshold_pct
        );
        if self.truncated() {
            out.push_str(&format!(
                "WARNING: truncated input (baseline dropped {}, current dropped {}): \
                 comparison is partial, refusing to gate\n",
                self.baseline_dropped, self.current_dropped
            ));
        }
        let total_delta = match self.total_delta_pct {
            Some(d) => format!("{d:+.1}%"),
            None => "n/a".to_string(),
        };
        out.push_str(&format!(
            "{:<8} total inclusive sim time: baseline {} s, current {} s ({})\n",
            if self.total_breach() { "BREACH" } else { "total" },
            secs(self.baseline_total_us),
            secs(self.current_total_us),
            total_delta,
        ));
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>9} {:>12} {:>12}  {}\n",
            "status", "base incl s", "cur incl s", "delta", "base excl s", "cur excl s", "path"
        ));
        for row in &self.rows {
            let status = if row.breach { "BREACH" } else { "ok" };
            let side = |agg: Option<PathAgg>, f: fn(&PathAgg) -> f64| match agg {
                Some(ref a) => secs(f(a)),
                None => "-".to_string(),
            };
            let delta = match row.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None if row.current.is_none() => "gone".to_string(),
                None if row.baseline.is_none() => "new".to_string(),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "{status:<8} {:>12} {:>12} {delta:>9} {:>12} {:>12}  {}\n",
                side(row.baseline, |a| a.inclusive_us),
                side(row.current, |a| a.inclusive_us),
                side(row.baseline, |a| a.exclusive_us),
                side(row.current, |a| a.exclusive_us),
                row.path,
            ));
        }
        out
    }
}

/// Compares `current` against `baseline` on the sim clock at
/// `threshold_pct`.
pub fn diff_traces(
    baseline: &JournalSnapshot,
    current: &JournalSnapshot,
    threshold_pct: f64,
) -> TraceDiffReport {
    let base_forest = SpanForest::build(baseline, Clock::Sim);
    let cur_forest = SpanForest::build(current, Clock::Sim);
    let base_paths = base_forest.aggregate_paths();
    let cur_paths = cur_forest.aggregate_paths();
    let baseline_total_us = base_forest.total_inclusive_us();
    let current_total_us = cur_forest.total_inclusive_us();

    let mut names: Vec<&String> = base_paths.keys().chain(cur_paths.keys()).collect();
    names.sort();
    names.dedup();

    let mut rows = Vec::new();
    for name in names {
        let b = base_paths.get(name.as_str()).copied();
        let c = cur_paths.get(name.as_str()).copied();
        // An appeared path (or one growing from zero) gates on its
        // share of the baseline total: there is no per-path baseline
        // to take a percentage of.
        let share_breach = |cur_incl: f64| {
            baseline_total_us > 0.0 && cur_incl / baseline_total_us * 100.0 > threshold_pct
        };
        let (delta_pct, breach) = match (b, c) {
            (Some(b), Some(c)) => {
                if b.inclusive_us == 0.0 {
                    (None, c.inclusive_us > 0.0 && share_breach(c.inclusive_us))
                } else {
                    let d = (c.inclusive_us - b.inclusive_us) / b.inclusive_us * 100.0;
                    (Some(d), d > threshold_pct)
                }
            }
            (Some(_), None) => (None, false), // disappeared: informational
            (None, Some(c)) => (None, share_breach(c.inclusive_us)),
            (None, None) => continue,
        };
        rows.push(TraceDiffRow { path: name.clone(), baseline: b, current: c, delta_pct, breach });
    }
    rows.sort_by(|a, b| b.sort_key().total_cmp(&a.sort_key()).then_with(|| a.path.cmp(&b.path)));

    let total_delta_pct = (baseline_total_us > 0.0)
        .then(|| (current_total_us - baseline_total_us) / baseline_total_us * 100.0);
    TraceDiffReport {
        threshold_pct,
        baseline_total_us,
        current_total_us,
        total_delta_pct,
        baseline_dropped: baseline.dropped,
        current_dropped: current.dropped,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Journal;

    fn run(phases: &[(&'static str, f64)]) -> JournalSnapshot {
        let j = Journal::new();
        j.enable(true);
        let total: f64 = phases.iter().map(|(_, d)| d).sum();
        j.span_complete("epoch", "backend", 0.0, Some(1.0), Some(0.0), Some(total), Vec::new());
        let mut t = 0.0;
        for &(name, dur) in phases {
            let track: String = format!("phase.{name}");
            j.span_complete(name, track, 0.0, None, Some(t), Some(dur), Vec::new());
            t += dur;
        }
        j.snapshot()
    }

    #[test]
    fn self_diff_is_clean_with_zero_deltas() {
        let snap = run(&[("sample", 30.0), ("compute", 70.0)]);
        let report = diff_traces(&snap, &snap, 20.0);
        assert!(!report.has_breach(), "{}", report.to_table());
        assert_eq!(report.breaches(), 0);
        assert_eq!(report.total_delta_pct, Some(0.0));
        for row in &report.rows {
            assert_eq!(row.delta_pct, Some(0.0), "{}", row.path);
        }
    }

    #[test]
    fn inflated_phase_is_attributed_and_breaches() {
        let base = run(&[("sample", 30.0), ("transfer", 10.0), ("compute", 70.0)]);
        let cur = run(&[("sample", 30.0), ("transfer", 50.0), ("compute", 70.0)]);
        let report = diff_traces(&base, &cur, 20.0);
        assert!(report.has_breach());
        assert!(report.total_breach(), "total 220 -> 300 is +36%");
        let worst = &report.rows[0];
        assert_eq!(worst.path, "phase.transfer;transfer");
        assert!(worst.breach);
        assert!((worst.delta_pct.unwrap() - 400.0).abs() < 1e-9);
        // Untouched phases pass.
        let sample = report.rows.iter().find(|r| r.path.contains("sample")).expect("row");
        assert!(!sample.breach);
        assert!(report.to_table().contains("BREACH"));
    }

    #[test]
    fn improvement_never_breaches() {
        let base = run(&[("compute", 100.0)]);
        let cur = run(&[("compute", 10.0)]);
        let report = diff_traces(&base, &cur, 20.0);
        assert!(!report.has_breach(), "{}", report.to_table());
        let row = report.rows.iter().find(|r| r.path.contains("compute")).expect("row");
        assert!(row.delta_pct.unwrap() < -80.0);
    }

    #[test]
    fn appeared_path_gates_on_share_of_baseline_total() {
        let base = run(&[("compute", 100.0)]);
        // A new phase worth 50% of the old total: breach at 20%.
        let cur = run(&[("compute", 100.0), ("migration", 100.0)]);
        let report = diff_traces(&base, &cur, 20.0);
        let row = report.rows.iter().find(|r| r.path.contains("migration")).expect("row");
        assert!(row.breach && row.baseline.is_none());
        assert!(report.to_table().contains("new"));
        // A tiny new path stays informational.
        let cur_small = run(&[("compute", 100.0), ("migration", 1.0)]);
        let report = diff_traces(&base, &cur_small, 20.0);
        let row = report.rows.iter().find(|r| r.path.contains("migration")).expect("row");
        assert!(!row.breach);
    }

    #[test]
    fn disappeared_path_is_informational() {
        let base = run(&[("sample", 50.0), ("compute", 100.0)]);
        let cur = run(&[("compute", 100.0)]);
        let report = diff_traces(&base, &cur, 20.0);
        let row = report.rows.iter().find(|r| r.path.contains("sample")).expect("row");
        assert!(!row.breach && row.current.is_none());
        assert!(report.to_table().contains("gone"));
    }

    #[test]
    fn truncated_inputs_are_flagged() {
        let j = Journal::new();
        j.enable(true);
        j.set_capacity(1);
        j.span_complete("a", "t", 0.0, None, Some(0.0), Some(10.0), Vec::new());
        j.span_complete("b", "t", 0.0, None, Some(10.0), Some(10.0), Vec::new());
        let truncated = j.snapshot();
        assert!(truncated.dropped > 0);
        let clean = run(&[("compute", 10.0)]);
        let report = diff_traces(&truncated, &clean, 20.0);
        assert!(report.truncated());
        assert!(report.to_table().contains("refusing to gate"));
        assert!(!diff_traces(&clean, &clean, 20.0).truncated());
    }
}
