//! Offline mini `proptest`.
//!
//! A dependency-free property-testing harness exposing the exact API
//! subset this workspace's test suites use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], [`strategy::any`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: no shrinking (a failing case
//! reports its inputs via `Debug`-free messages and the case index),
//! and generation is fully deterministic — each test function derives
//! its RNG seed from its own name, so failures reproduce exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) {...}`
/// becomes a `#[test]` that runs the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut rng,
                            );
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, usize)> {
        (0usize..50, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 0usize..50, f in -1.0f64..1.0) {
            prop_assert!(a < 50);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps((a, b) in pairs(), v in crate::collection::vec(0u32..5, 1..8)) {
            prop_assert!(a < 50 && b >= 1);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_threads_dependency(
            (n, idx) in (1usize..20).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(idx < n);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
