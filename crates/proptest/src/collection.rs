//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
