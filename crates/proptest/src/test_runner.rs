//! Harness configuration, failure type, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Controls how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }

    /// Alias kept for proptest API compatibility.
    pub fn reject(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG: the seed is an FNV-1a hash of the test
/// name, so every test has an independent but fully reproducible
/// stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG seeded from `test_name`.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
