//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrink tree: `generate` draws one
/// value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying generation.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform strategy over a type's full natural domain (`any::<bool>()`
/// etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical `any()` strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_unit_float {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_unit_float!(f32, f64);

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
}
