//! Cache policy identifiers — one axis of the design space.

use std::fmt;
use std::str::FromStr;

/// The cache-update policies the reconfigurable backend supports
/// (the "cache update policy" blue box of the paper's Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CachePolicy {
    /// No device cache at all (PyG's behavior).
    None,
    /// Static pre-fill with the highest-degree nodes, never updated
    /// (PaGraph's computation-aware static cache).
    StaticDegree,
    /// First-in-first-out replacement.
    Fifo,
    /// Least-recently-used replacement.
    Lru,
    /// Least-frequently-used replacement.
    Lfu,
}

impl CachePolicy {
    /// Every policy, in display order.
    pub const ALL: [CachePolicy; 5] = [
        CachePolicy::None,
        CachePolicy::StaticDegree,
        CachePolicy::Fifo,
        CachePolicy::Lru,
        CachePolicy::Lfu,
    ];

    /// Whether this policy performs runtime updates (false for
    /// [`CachePolicy::None`] and [`CachePolicy::StaticDegree`]).
    pub fn is_dynamic(self) -> bool {
        matches!(self, CachePolicy::Fifo | CachePolicy::Lru | CachePolicy::Lfu)
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CachePolicy::None => "none",
            CachePolicy::StaticDegree => "static-degree",
            CachePolicy::Fifo => "fifo",
            CachePolicy::Lru => "lru",
            CachePolicy::Lfu => "lfu",
        })
    }
}

/// Error returned when parsing an unknown cache policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cache policy `{}`", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for CachePolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CachePolicy::None),
            "static-degree" | "static" => Ok(CachePolicy::StaticDegree),
            "fifo" => Ok(CachePolicy::Fifo),
            "lru" => Ok(CachePolicy::Lru),
            "lfu" => Ok(CachePolicy::Lfu),
            other => Err(ParsePolicyError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for p in CachePolicy::ALL {
            let parsed: CachePolicy = p.to_string().parse().expect("roundtrip");
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "mru".parse::<CachePolicy>().unwrap_err();
        assert!(err.to_string().contains("mru"));
    }

    #[test]
    fn dynamism_classification() {
        assert!(!CachePolicy::None.is_dynamic());
        assert!(!CachePolicy::StaticDegree.is_dynamic());
        assert!(CachePolicy::Lru.is_dynamic());
    }
}
