//! Device feature-cache implementations.
//!
//! All transmission strategies reduce to the same abstraction (paper
//! §3.2): given a mini-batch, split it into cache *hits* (already on
//! device) and *misses* (must cross the link), then optionally update
//! the cache. The concrete policies differ only in what they keep.

use crate::policy::CachePolicy;
use gnnav_graph::{stats::nodes_by_degree_desc, Graph, NodeId};
use std::collections::VecDeque;

/// Result of a cache lookup over a batch's nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Nodes whose feature rows are resident on the device.
    pub hits: Vec<NodeId>,
    /// Nodes that must be transferred from the host.
    pub misses: Vec<NodeId>,
}

impl LookupOutcome {
    /// Hit fraction of this lookup (0 when the batch was empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.len() + self.misses.len();
        if total == 0 {
            0.0
        } else {
            self.hits.len() as f64 / total as f64
        }
    }
}

/// Cumulative hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total node lookups.
    pub lookups: usize,
    /// Total hits.
    pub hits: usize,
}

impl CacheStats {
    /// Cumulative hit rate (`hit` in the paper's Eq. 5–6).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Serializable snapshot of a cache's observable state, for
/// checkpoint/resume. `resident` is in the policy's canonical order
/// (FIFO queue front→back, LRU MRU→LRU, LFU/static ascending id);
/// the `freq`/`heap`/`seq` fields are LFU-only and empty elsewhere.
///
/// Restoring a snapshot onto a freshly built cache of the same
/// policy, capacity, and graph reproduces the original's observable
/// behavior exactly: every subsequent lookup/update/eviction decision
/// matches what the snapshotted instance would have done.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Capacity the snapshot was taken at (restore sanity check).
    pub capacity: usize,
    /// Resident node ids in canonical per-policy order.
    pub resident: Vec<NodeId>,
    /// LFU per-node access-frequency table.
    pub freq: Vec<u32>,
    /// LFU lazy-heap entries `(freq, seq, node)`. All entries are
    /// distinct (`seq` is unique), so pop order — and therefore
    /// eviction behavior — is a pure function of this multiset,
    /// independent of internal heap layout.
    pub heap: Vec<(u32, u64, NodeId)>,
    /// LFU reindex sequence counter.
    pub seq: u64,
    /// Cumulative stats at snapshot time.
    pub stats: CacheStats,
}

/// A device feature cache.
///
/// Implementations store node *ids* (each standing for one resident
/// feature row); the backend charges bytes via the row size.
pub trait Cache: std::fmt::Debug + Send {
    /// Splits `nodes` into hits and misses, updating recency/frequency
    /// metadata and cumulative stats.
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome;

    /// Admits `missed` nodes per the policy. Returns the number of
    /// rows written to the device (insertions, including those that
    /// evicted an older entry) — the paper's replaced-volume input to
    /// `t_replace`.
    fn update(&mut self, missed: &[NodeId]) -> usize;

    /// Maximum number of resident entries.
    fn capacity(&self) -> usize;

    /// Current number of resident entries.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This cache's policy.
    fn policy(&self) -> CachePolicy;

    /// Whether `v` is resident.
    fn contains(&self, v: NodeId) -> bool;

    /// Snapshot of resident node ids (order unspecified); used to seed
    /// the locality bias of cache-aware samplers.
    fn resident(&self) -> Vec<NodeId>;

    /// Cumulative statistics.
    fn stats(&self) -> CacheStats;

    /// Captures the cache's observable state for checkpointing.
    fn snapshot(&self) -> CacheSnapshot;

    /// Restores state captured by [`Cache::snapshot`] from a cache of
    /// the same policy, capacity, and graph.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch (wrong capacity, node id
    /// out of range) without modifying the cache.
    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String>;
}

/// Shared restore sanity checks.
fn check_snapshot(snap: &CacheSnapshot, capacity: usize, num_nodes: usize) -> Result<(), String> {
    if snap.capacity != capacity {
        return Err(format!(
            "snapshot capacity {} does not match cache capacity {capacity}",
            snap.capacity
        ));
    }
    if let Some(&v) = snap.resident.iter().find(|&&v| v as usize >= num_nodes) {
        return Err(format!("snapshot resident node {v} out of range (graph has {num_nodes})"));
    }
    Ok(())
}

/// Builds a cache of `capacity` entries with the given policy.
///
/// [`CachePolicy::StaticDegree`] pre-fills with the highest-degree
/// nodes of `graph`; other policies start empty.
pub fn build_cache(policy: CachePolicy, capacity: usize, graph: &Graph) -> Box<dyn Cache> {
    match policy {
        CachePolicy::None => Box::new(NoCache::new(graph.num_nodes())),
        CachePolicy::StaticDegree => Box::new(StaticDegreeCache::new(capacity, graph)),
        CachePolicy::Fifo => Box::new(FifoCache::new(capacity, graph.num_nodes())),
        CachePolicy::Lru => Box::new(LruCache::new(capacity, graph.num_nodes())),
        CachePolicy::Lfu => Box::new(LfuCache::new(capacity, graph.num_nodes())),
    }
}

/// Number of cache entries affordable within `budget_bytes` when each
/// row costs `row_bytes`.
pub fn entries_for_budget(budget_bytes: usize, row_bytes: usize) -> usize {
    budget_bytes.checked_div(row_bytes).unwrap_or(0)
}

// ---------------------------------------------------------------------
// No cache.
// ---------------------------------------------------------------------

/// The degenerate cache: everything misses (PyG's default path).
#[derive(Debug)]
pub struct NoCache {
    stats: CacheStats,
    num_nodes: usize,
}

impl NoCache {
    /// Creates a no-op cache for a graph of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        NoCache { stats: CacheStats::default(), num_nodes }
    }
}

impl Cache for NoCache {
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome {
        self.stats.lookups += nodes.len();
        LookupOutcome { hits: Vec::new(), misses: nodes.to_vec() }
    }

    fn update(&mut self, _missed: &[NodeId]) -> usize {
        0
    }

    fn capacity(&self) -> usize {
        0
    }

    fn len(&self) -> usize {
        0
    }

    fn policy(&self) -> CachePolicy {
        CachePolicy::None
    }

    fn contains(&self, v: NodeId) -> bool {
        debug_assert!((v as usize) < self.num_nodes);
        false
    }

    fn resident(&self) -> Vec<NodeId> {
        Vec::new()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot { capacity: 0, stats: self.stats, ..CacheSnapshot::default() }
    }

    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        check_snapshot(snap, 0, self.num_nodes)?;
        self.stats = snap.stats;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Static degree-ordered cache (PaGraph).
// ---------------------------------------------------------------------

/// PaGraph-style static cache: pre-filled with the top-degree nodes,
/// never updated at runtime.
#[derive(Debug)]
pub struct StaticDegreeCache {
    resident: Vec<bool>,
    entries: Vec<NodeId>,
    capacity: usize,
    stats: CacheStats,
}

impl StaticDegreeCache {
    /// Creates the cache pre-filled with the `capacity` highest-degree
    /// nodes of `graph`.
    pub fn new(capacity: usize, graph: &Graph) -> Self {
        let order = nodes_by_degree_desc(graph);
        let entries: Vec<NodeId> = order.into_iter().take(capacity).collect();
        let mut resident = vec![false; graph.num_nodes()];
        for &v in &entries {
            resident[v as usize] = true;
        }
        StaticDegreeCache { resident, entries, capacity, stats: CacheStats::default() }
    }
}

impl Cache for StaticDegreeCache {
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for &v in nodes {
            if self.resident[v as usize] {
                hits.push(v);
            } else {
                misses.push(v);
            }
        }
        self.stats.lookups += nodes.len();
        self.stats.hits += hits.len();
        LookupOutcome { hits, misses }
    }

    fn update(&mut self, _missed: &[NodeId]) -> usize {
        0 // static: never replaced
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn policy(&self) -> CachePolicy {
        CachePolicy::StaticDegree
    }

    fn contains(&self, v: NodeId) -> bool {
        self.resident[v as usize]
    }

    fn resident(&self) -> Vec<NodeId> {
        self.entries.clone()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn snapshot(&self) -> CacheSnapshot {
        // The entry set is a pure function of (graph, capacity), so
        // only the stats are mutable state; entries ride along for
        // the restore sanity check.
        CacheSnapshot {
            capacity: self.capacity,
            resident: self.entries.clone(),
            stats: self.stats,
            ..CacheSnapshot::default()
        }
    }

    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        check_snapshot(snap, self.capacity, self.resident.len())?;
        if snap.resident != self.entries {
            return Err("static-degree snapshot resident set does not match graph".into());
        }
        self.stats = snap.stats;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// FIFO.
// ---------------------------------------------------------------------

/// First-in-first-out cache.
#[derive(Debug)]
pub struct FifoCache {
    resident: Vec<bool>,
    queue: VecDeque<NodeId>,
    capacity: usize,
    stats: CacheStats,
}

impl FifoCache {
    /// Creates an empty FIFO cache.
    pub fn new(capacity: usize, num_nodes: usize) -> Self {
        FifoCache {
            resident: vec![false; num_nodes],
            queue: VecDeque::with_capacity(capacity),
            capacity,
            stats: CacheStats::default(),
        }
    }
}

impl Cache for FifoCache {
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for &v in nodes {
            if self.resident[v as usize] {
                hits.push(v);
            } else {
                misses.push(v);
            }
        }
        self.stats.lookups += nodes.len();
        self.stats.hits += hits.len();
        LookupOutcome { hits, misses }
    }

    fn update(&mut self, missed: &[NodeId]) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inserted = 0usize;
        for &v in missed {
            if self.resident[v as usize] {
                continue;
            }
            if self.queue.len() == self.capacity {
                if let Some(old) = self.queue.pop_front() {
                    self.resident[old as usize] = false;
                }
            }
            self.queue.push_back(v);
            self.resident[v as usize] = true;
            inserted += 1;
        }
        inserted
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn policy(&self) -> CachePolicy {
        CachePolicy::Fifo
    }

    fn contains(&self, v: NodeId) -> bool {
        self.resident[v as usize]
    }

    fn resident(&self) -> Vec<NodeId> {
        self.queue.iter().copied().collect()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            capacity: self.capacity,
            resident: self.queue.iter().copied().collect(),
            stats: self.stats,
            ..CacheSnapshot::default()
        }
    }

    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        check_snapshot(snap, self.capacity, self.resident.len())?;
        self.resident.iter_mut().for_each(|r| *r = false);
        self.queue.clear();
        for &v in &snap.resident {
            self.queue.push_back(v);
            self.resident[v as usize] = true;
        }
        self.stats = snap.stats;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LRU (intrusive doubly-linked list over node-id slots: O(1) ops).
// ---------------------------------------------------------------------

const NIL: u32 = u32::MAX;

/// Least-recently-used cache with O(1) lookup, touch, and eviction.
#[derive(Debug)]
pub struct LruCache {
    prev: Vec<u32>,
    next: Vec<u32>,
    resident: Vec<bool>,
    head: u32, // most recently used
    tail: u32, // least recently used
    len: usize,
    capacity: usize,
    stats: CacheStats,
}

impl LruCache {
    /// Creates an empty LRU cache.
    pub fn new(capacity: usize, num_nodes: usize) -> Self {
        LruCache {
            prev: vec![NIL; num_nodes],
            next: vec![NIL; num_nodes],
            resident: vec![false; num_nodes],
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
            stats: CacheStats::default(),
        }
    }

    fn unlink(&mut self, v: u32) {
        let (p, n) = (self.prev[v as usize], self.next[v as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[v as usize] = NIL;
        self.next[v as usize] = NIL;
    }

    fn push_front(&mut self, v: u32) {
        self.prev[v as usize] = NIL;
        self.next[v as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = v;
        }
        self.head = v;
        if self.tail == NIL {
            self.tail = v;
        }
    }

    fn touch(&mut self, v: u32) {
        if self.head == v {
            return;
        }
        self.unlink(v);
        self.push_front(v);
    }
}

impl Cache for LruCache {
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for &v in nodes {
            if self.resident[v as usize] {
                self.touch(v);
                hits.push(v);
            } else {
                misses.push(v);
            }
        }
        self.stats.lookups += nodes.len();
        self.stats.hits += hits.len();
        LookupOutcome { hits, misses }
    }

    fn update(&mut self, missed: &[NodeId]) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inserted = 0usize;
        for &v in missed {
            if self.resident[v as usize] {
                self.touch(v);
                continue;
            }
            if self.len == self.capacity {
                let victim = self.tail;
                debug_assert_ne!(victim, NIL);
                self.unlink(victim);
                self.resident[victim as usize] = false;
                self.len -= 1;
            }
            self.push_front(v);
            self.resident[v as usize] = true;
            self.len += 1;
            inserted += 1;
        }
        inserted
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.len
    }

    fn policy(&self) -> CachePolicy {
        CachePolicy::Lru
    }

    fn contains(&self, v: NodeId) -> bool {
        self.resident[v as usize]
    }

    fn resident(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(cur);
            cur = self.next[cur as usize];
        }
        out
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            capacity: self.capacity,
            resident: Cache::resident(self),
            stats: self.stats,
            ..CacheSnapshot::default()
        }
    }

    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        check_snapshot(snap, self.capacity, self.resident.len())?;
        self.resident.iter_mut().for_each(|r| *r = false);
        self.prev.iter_mut().for_each(|p| *p = NIL);
        self.next.iter_mut().for_each(|n| *n = NIL);
        self.head = NIL;
        self.tail = NIL;
        // `resident` is MRU→LRU; rebuilding front-first in reverse
        // order reconstructs the exact recency list.
        for &v in snap.resident.iter().rev() {
            self.push_front(v);
            self.resident[v as usize] = true;
        }
        self.len = snap.resident.len();
        self.stats = snap.stats;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LFU (lazy min-heap keyed by access frequency).
// ---------------------------------------------------------------------

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Least-frequently-used cache. Eviction uses a lazy heap: stale heap
/// entries (whose recorded frequency no longer matches) are skipped.
#[derive(Debug)]
pub struct LfuCache {
    freq: Vec<u32>,
    resident: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u64, NodeId)>>,
    seq: u64,
    len: usize,
    capacity: usize,
    stats: CacheStats,
}

impl LfuCache {
    /// Creates an empty LFU cache.
    pub fn new(capacity: usize, num_nodes: usize) -> Self {
        LfuCache {
            freq: vec![0; num_nodes],
            resident: vec![false; num_nodes],
            heap: BinaryHeap::new(),
            seq: 0,
            len: 0,
            capacity,
            stats: CacheStats::default(),
        }
    }

    fn evict_one(&mut self) {
        while let Some(Reverse((f, _, v))) = self.heap.pop() {
            if self.resident[v as usize] && self.freq[v as usize] == f {
                self.resident[v as usize] = false;
                self.len -= 1;
                return;
            }
            // Stale entry: skip.
        }
    }

    fn reindex(&mut self, v: NodeId) {
        self.seq += 1;
        self.heap.push(Reverse((self.freq[v as usize], self.seq, v)));
    }
}

impl Cache for LfuCache {
    fn lookup(&mut self, nodes: &[NodeId]) -> LookupOutcome {
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for &v in nodes {
            self.freq[v as usize] = self.freq[v as usize].saturating_add(1);
            if self.resident[v as usize] {
                self.reindex(v);
                hits.push(v);
            } else {
                misses.push(v);
            }
        }
        self.stats.lookups += nodes.len();
        self.stats.hits += hits.len();
        LookupOutcome { hits, misses }
    }

    fn update(&mut self, missed: &[NodeId]) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inserted = 0usize;
        for &v in missed {
            if self.resident[v as usize] {
                continue;
            }
            if self.len == self.capacity {
                self.evict_one();
            }
            self.resident[v as usize] = true;
            self.len += 1;
            self.reindex(v);
            inserted += 1;
        }
        inserted
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.len
    }

    fn policy(&self) -> CachePolicy {
        CachePolicy::Lfu
    }

    fn contains(&self, v: NodeId) -> bool {
        self.resident[v as usize]
    }

    fn resident(&self) -> Vec<NodeId> {
        (0..self.resident.len() as u32).filter(|&v| self.resident[v as usize]).collect()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn snapshot(&self) -> CacheSnapshot {
        // The lazy heap's entries are all distinct (unique `seq`), so
        // its pop sequence is determined by the entry multiset alone;
        // capturing the entries in internal order and re-heapifying on
        // restore reproduces eviction behavior exactly.
        CacheSnapshot {
            capacity: self.capacity,
            resident: Cache::resident(self),
            freq: self.freq.clone(),
            heap: self.heap.iter().map(|Reverse(t)| *t).collect(),
            seq: self.seq,
            stats: self.stats,
        }
    }

    fn restore(&mut self, snap: &CacheSnapshot) -> Result<(), String> {
        check_snapshot(snap, self.capacity, self.resident.len())?;
        if snap.freq.len() != self.freq.len() {
            return Err(format!(
                "LFU snapshot frequency table covers {} nodes, cache has {}",
                snap.freq.len(),
                self.freq.len()
            ));
        }
        self.freq.copy_from_slice(&snap.freq);
        self.resident.iter_mut().for_each(|r| *r = false);
        for &v in &snap.resident {
            self.resident[v as usize] = true;
        }
        self.heap = snap.heap.iter().map(|&t| Reverse(t)).collect();
        self.seq = snap.seq;
        self.len = snap.resident.len();
        self.stats = snap.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::GraphBuilder;

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(0, v);
        }
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn hit_rate_zero_lookups_is_zero() {
        // Fresh stats must report 0.0, not NaN, before any lookup.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let empty = LookupOutcome { hits: Vec::new(), misses: Vec::new() };
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn no_cache_always_misses() {
        let g = star(5);
        let mut c = build_cache(CachePolicy::None, 100, &g);
        let out = c.lookup(&[0, 1, 2]);
        assert!(out.hits.is_empty());
        assert_eq!(out.misses, vec![0, 1, 2]);
        assert_eq!(c.update(&out.misses), 0);
        assert_eq!(c.stats().hit_rate(), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn static_degree_prefills_hub() {
        let g = star(10);
        let mut c = build_cache(CachePolicy::StaticDegree, 1, &g);
        assert!(c.contains(0), "hub must be cached");
        let out = c.lookup(&[0, 3]);
        assert_eq!(out.hits, vec![0]);
        assert_eq!(out.misses, vec![3]);
        assert_eq!(c.update(&out.misses), 0, "static cache never updates");
        assert!(!c.contains(3));
        assert_eq!(c.resident(), vec![0]);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let g = star(10);
        let mut c = FifoCache::new(2, g.num_nodes());
        assert_eq!(c.update(&[1, 2]), 2);
        assert_eq!(c.update(&[3]), 1); // evicts 1
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fifo_skips_already_resident() {
        let g = star(10);
        let mut c = FifoCache::new(2, g.num_nodes());
        c.update(&[1]);
        assert_eq!(c.update(&[1]), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let g = star(10);
        let mut c = LruCache::new(2, g.num_nodes());
        c.update(&[1, 2]);
        let _ = c.lookup(&[1]); // 1 now most recent
        c.update(&[3]); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.resident(), vec![3, 1], "MRU order");
    }

    #[test]
    fn lru_capacity_never_exceeded() {
        let g = star(50);
        let mut c = LruCache::new(5, g.num_nodes());
        for batch in (0u32..40).collect::<Vec<_>>().chunks(7) {
            let out = c.lookup(batch);
            c.update(&out.misses);
            assert!(c.len() <= 5, "len {} > capacity", c.len());
        }
    }

    #[test]
    fn lfu_keeps_frequent_nodes() {
        let g = star(10);
        let mut c = LfuCache::new(2, g.num_nodes());
        // Node 1 accessed many times; node 2 once.
        for _ in 0..5 {
            let out = c.lookup(&[1]);
            c.update(&out.misses);
        }
        let out = c.lookup(&[2]);
        c.update(&out.misses);
        // Insert 3: should evict the less-frequent 2, not 1.
        let out = c.lookup(&[3]);
        c.update(&out.misses);
        assert!(c.contains(1), "frequent node survives");
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn hit_rate_accumulates() {
        let g = star(10);
        let mut c = FifoCache::new(4, g.num_nodes());
        let out = c.lookup(&[1, 2]); // 2 misses
        c.update(&out.misses);
        let _ = c.lookup(&[1, 2]); // 2 hits
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_dynamic_cache_never_stores() {
        let g = star(5);
        for policy in [CachePolicy::Fifo, CachePolicy::Lru, CachePolicy::Lfu] {
            let mut c = build_cache(policy, 0, &g);
            assert_eq!(c.update(&[1, 2, 3]), 0, "{policy}");
            assert_eq!(c.len(), 0);
        }
    }

    #[test]
    fn entries_for_budget_division() {
        assert_eq!(entries_for_budget(1000, 100), 10);
        assert_eq!(entries_for_budget(1000, 0), 0);
        assert_eq!(entries_for_budget(99, 100), 0);
    }

    #[test]
    fn lookup_outcome_hit_rate() {
        let o = LookupOutcome { hits: vec![1], misses: vec![2, 3, 4] };
        assert!((o.hit_rate() - 0.25).abs() < 1e-12);
        let empty = LookupOutcome { hits: vec![], misses: vec![] };
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn skewed_access_gives_high_hit_rate_with_small_cache() {
        // The phenomenon PaGraph exploits: power-law access means a
        // small degree-ordered cache already captures most traffic.
        use gnnav_graph::generators::barabasi_albert;
        let g = barabasi_albert(1000, 4, 3).expect("gen");
        let mut c = build_cache(CachePolicy::StaticDegree, 200, &g);
        // Access pattern proportional to degree: walk the edge list.
        let accesses: Vec<NodeId> = g.edges().map(|(_, v)| v).collect();
        for chunk in accesses.chunks(64) {
            let _ = c.lookup(chunk);
        }
        let hr = c.stats().hit_rate();
        assert!(hr > 0.4, "20% cache should catch >40% of skewed traffic, got {hr}");
        // A uniform access pattern over the same cache would only hit
        // ~20%; skew roughly doubles it.
    }
}
