//! Device feature-cache policies for the GNNavigator reproduction.
//!
//! Transmission strategies (paper §3.2) all reduce to: initialize a
//! device cache within the free memory budget, split each mini-batch
//! into hits and misses, transfer only the misses, then update the
//! cache per policy. This crate provides that abstraction
//! ([`Cache`]) and the concrete policies ([`CachePolicy`]):
//! PaGraph's static degree-ordered cache, FIFO, LRU, LFU, and the
//! no-cache baseline.
//!
//! # Example
//!
//! ```
//! use gnnav_cache::{build_cache, CachePolicy};
//! use gnnav_graph::generators::barabasi_albert;
//!
//! # fn main() -> Result<(), gnnav_graph::GraphError> {
//! let g = barabasi_albert(100, 3, 1)?;
//! let mut cache = build_cache(CachePolicy::Lru, 16, &g);
//! let outcome = cache.lookup(&[0, 1, 2]);
//! cache.update(&outcome.misses);
//! assert!(cache.len() <= 16);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod policy;

pub use cache::{
    build_cache, entries_for_budget, Cache, CacheSnapshot, CacheStats, FifoCache, LfuCache,
    LookupOutcome, LruCache, NoCache, StaticDegreeCache,
};
pub use policy::{CachePolicy, ParsePolicyError};
