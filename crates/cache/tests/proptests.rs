//! Property-based tests for the cache policies.

use gnnav_cache::{build_cache, CachePolicy};
use gnnav_graph::generators::barabasi_albert;
use proptest::prelude::*;

fn access_sequence() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..200, 1..40), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn capacity_never_exceeded(batches in access_sequence(), cap in 0usize..60) {
        let g = barabasi_albert(200, 3, 1).expect("gen");
        for policy in CachePolicy::ALL {
            let mut cache = build_cache(policy, cap, &g);
            for batch in &batches {
                let out = cache.lookup(batch);
                cache.update(&out.misses);
                prop_assert!(
                    cache.len() <= cache.capacity().max(cap),
                    "{policy}: len {} over capacity {}",
                    cache.len(),
                    cap
                );
            }
        }
    }

    #[test]
    fn lookup_partitions_input(batches in access_sequence()) {
        let g = barabasi_albert(200, 3, 2).expect("gen");
        for policy in CachePolicy::ALL {
            let mut cache = build_cache(policy, 30, &g);
            for batch in &batches {
                let out = cache.lookup(batch);
                prop_assert_eq!(
                    out.hits.len() + out.misses.len(),
                    batch.len(),
                    "{} lost nodes in lookup",
                    policy
                );
                // Every returned id came from the input batch.
                for v in out.hits.iter().chain(&out.misses) {
                    prop_assert!(batch.contains(v));
                }
            }
        }
    }

    #[test]
    fn resident_set_agrees_with_contains(batches in access_sequence()) {
        let g = barabasi_albert(200, 3, 3).expect("gen");
        for policy in CachePolicy::ALL {
            let mut cache = build_cache(policy, 25, &g);
            for batch in &batches {
                let out = cache.lookup(batch);
                cache.update(&out.misses);
            }
            let resident = cache.resident();
            prop_assert_eq!(resident.len(), cache.len(), "{}", policy);
            for &v in &resident {
                prop_assert!(cache.contains(v), "{}: resident {} not contained", policy, v);
            }
        }
    }

    #[test]
    fn second_lookup_of_updated_batch_hits_dynamic_caches(batch in proptest::collection::vec(0u32..200, 1..30)) {
        let g = barabasi_albert(200, 3, 4).expect("gen");
        for policy in [CachePolicy::Fifo, CachePolicy::Lru, CachePolicy::Lfu] {
            let mut cache = build_cache(policy, 200, &g); // capacity >= universe
            let out = cache.lookup(&batch);
            cache.update(&out.misses);
            let again = cache.lookup(&batch);
            prop_assert!(again.misses.is_empty(), "{policy}: second lookup missed");
        }
    }

    #[test]
    fn hit_rate_is_a_valid_fraction(batches in access_sequence()) {
        let g = barabasi_albert(200, 3, 5).expect("gen");
        let mut cache = build_cache(CachePolicy::Lru, 20, &g);
        for batch in &batches {
            let out = cache.lookup(batch);
            cache.update(&out.misses);
        }
        let hr = cache.stats().hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
    }
}
