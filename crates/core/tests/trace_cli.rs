//! End-to-end tests for the trace-analytics CLI surface:
//! `--trace-summary`, `--flame-out`, and the `trace-diff` gate.
//!
//! Determinism contract: with the same `(seed, plan, GNNAV_THREADS)`
//! two runs produce byte-identical folded stacks and `--trace-summary`
//! tables, and `trace-diff` between their traces reports zero deltas.
//! Sensitivity contract: a committed LinkDegrade fault plan inflates
//! exactly the transfer phase, and `trace-diff` attributes the breach
//! to `phase.transfer;transfer` with a non-zero exit.

use std::path::{Path, PathBuf};
use std::process::Command;

fn gnnavigate() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_gnnavigate"));
    // Pin the worker pool: the determinism contract is per thread
    // count, and the sim clock is what the gates compare.
    c.env("GNNAV_THREADS", "1");
    c
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gnnav-trace-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// One small full-pipeline run writing a trace and folded stacks;
/// returns (stdout, stderr).
fn pipeline_run(trace: &Path, flame: &Path, extra: &[&str]) -> (String, String) {
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--seed", "7"])
        .args(["--profile-samples", "8", "--explore-budget", "100", "--epochs", "2"])
        .arg("--trace-out")
        .arg(trace)
        .arg("--flame-out")
        .arg(flame)
        .arg("--trace-summary")
        .args(extra)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

/// The `--trace-summary` block of a run's stdout (everything from the
/// header on: sim-clock tables only, no wall timings).
fn summary_section(stdout: &str) -> &str {
    let start = stdout.find("trace-summary (sim clock)").expect("summary header");
    &stdout[start..]
}

#[test]
fn identical_runs_are_byte_identical_and_self_diff_clean() {
    let dir = tmpdir("determinism");
    let (t1, f1) = (dir.join("t1.json"), dir.join("f1.txt"));
    let (t2, f2) = (dir.join("t2.json"), dir.join("f2.txt"));
    let (stdout1, _) = pipeline_run(&t1, &f1, &[]);
    let (stdout2, _) = pipeline_run(&t2, &f2, &[]);

    // Folded stacks: byte-identical across runs, well-formed lines.
    let flame1 = std::fs::read_to_string(&f1).expect("flame written");
    let flame2 = std::fs::read_to_string(&f2).expect("flame written");
    assert_eq!(flame1, flame2, "folded stacks must be byte-identical across identical runs");
    assert!(!flame1.is_empty());
    for line in flame1.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("`path weight` format");
        assert!(!path.is_empty(), "{line}");
        assert!(weight.parse::<u64>().is_ok(), "non-integer weight in {line}");
    }
    assert!(
        flame1.lines().any(|l| l.starts_with("phase.transfer;transfer ")),
        "transfer phase missing from folded stacks:\n{flame1}"
    );

    // The printed sim-time summary is identical too.
    assert_eq!(summary_section(&stdout1), summary_section(&stdout2));
    assert!(stdout1.contains("critical path"), "{stdout1}");
    assert!(stdout1.contains("per-epoch phase attribution"), "{stdout1}");

    // Self-diff: zero deltas, exit 0.
    let out = gnnavigate().arg("trace-diff").args([&t1, &t2]).output().expect("spawn");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(table.contains("0 breach(es)"), "{table}");
    assert!(!table.contains("BREACH"), "{table}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn link_degrade_breach_is_attributed_to_transfer_phase() {
    let dir = tmpdir("sensitivity");
    let (clean_t, clean_f) = (dir.join("clean.json"), dir.join("clean-flame.txt"));
    let (slow_t, slow_f) = (dir.join("degraded.json"), dir.join("degraded-flame.txt"));
    let plan = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ci/link_degrade_plan.json");
    pipeline_run(&clean_t, &clean_f, &[]);
    pipeline_run(&slow_t, &slow_f, &["--fault-plan", plan]);

    let out = gnnavigate()
        .arg("trace-diff")
        .args([&clean_t, &slow_t])
        .args(["--threshold", "20"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "gated regression must exit 1");
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    // Rows sort worst-first, so the top breach names the degraded
    // phase. The enclosing `backend;epoch` span may legitimately
    // breach too (transfer time is part of epoch time), but no
    // sibling phase may.
    let breaches: Vec<&str> =
        table.lines().filter(|l| l.starts_with("BREACH") && l.contains(';')).collect();
    assert!(!breaches.is_empty(), "{table}");
    assert!(
        breaches[0].ends_with("phase.transfer;transfer"),
        "worst breach is not the degraded phase:\n{table}"
    );
    assert!(
        breaches
            .iter()
            .all(|l| { l.ends_with("phase.transfer;transfer") || l.ends_with("backend;epoch") }),
        "breach attributed to an untouched phase:\n{table}"
    );
    // The untouched phases stay clean.
    for phase in ["phase.sample;sample", "phase.compute;compute"] {
        let row = table.lines().find(|l| l.ends_with(phase)).expect("phase row");
        assert!(row.starts_with("ok"), "{row}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_diff_refuses_to_gate_truncated_traces() {
    let dir = tmpdir("truncated");
    let (t, f) = (dir.join("t.json"), dir.join("f.txt"));
    pipeline_run(&t, &f, &[]);
    let trace = std::fs::read_to_string(&t).expect("trace");
    assert!(trace.contains("\"droppedEvents\": 0"), "{trace}");
    let truncated = dir.join("truncated.json");
    std::fs::write(&truncated, trace.replace("\"droppedEvents\": 0", "\"droppedEvents\": 3"))
        .expect("write truncated");

    let out = gnnavigate().arg("trace-diff").args([&t, &truncated]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "truncated input must exit 2, not gate");
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(table.contains("refusing to gate"), "{table}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_diff_rejects_bad_invocations() {
    let out = gnnavigate().args(["trace-diff", "only-one.json"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two"));

    let out = gnnavigate()
        .args(["trace-diff", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/a.json"));

    let out = gnnavigate().args(["trace-diff", "--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace-diff flag"));
}

#[test]
fn flame_weight_wall_differs_from_sim() {
    let dir = tmpdir("flame-weight");
    let (t, f_sim) = (dir.join("t.json"), dir.join("sim.txt"));
    pipeline_run(&t, &f_sim, &[]);
    let f_wall = dir.join("wall.txt");
    pipeline_run(&dir.join("t2.json"), &f_wall, &["--flame-weight", "wall"]);
    let sim = std::fs::read_to_string(&f_sim).expect("sim flame");
    let wall = std::fs::read_to_string(&f_wall).expect("wall flame");
    // Wall weighting includes wall-only spans (profiler workers…)
    // that the sim-weighted view excludes, and vice versa: the
    // simulated phase spans carry no wall duration.
    assert!(
        wall.lines().any(|l| l.starts_with("profiler.worker-")),
        "profiler workers missing from wall view:\n{wall}"
    );
    assert!(!sim.lines().any(|l| l.starts_with("profiler.worker-")), "{sim}");
    assert!(
        sim.lines().any(|l| l.starts_with("phase.")),
        "simulated phases missing from sim view:\n{sim}"
    );
    assert!(!wall.lines().any(|l| l.starts_with("phase.")), "{wall}");
    std::fs::remove_dir_all(&dir).ok();
}
