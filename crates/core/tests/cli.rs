//! Integration tests for the `gnnavigate` CLI binary.

use std::process::Command;

fn gnnavigate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnavigate"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gnnavigate().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--priority"));
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = gnnavigate().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "{text}");
}

#[test]
fn bad_dataset_fails() {
    let out = gnnavigate().args(["--dataset", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_value_fails() {
    let out = gnnavigate().arg("--scale").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

#[test]
fn tiny_end_to_end_run_succeeds() {
    // A very small full-pipeline run: profile, explore, apply.
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--priority", "bal"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guideline:"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn metrics_out_writes_schema_with_phase_cache_and_explorer_series() {
    let dir = std::env::temp_dir().join(format!("gnnav-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("metrics.json");
    let out = gnnavigate()
        .args([
            "--dataset",
            "RD2",
            "--scale",
            "0.01",
            "--priority",
            "bal",
            "--verbose",
            "--metrics-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_dir_all(&dir).ok();

    // Envelope.
    assert!(json.contains("\"version\": 2"), "{json}");
    assert!(json.contains("\"enabled\": true"), "{json}");
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
    // Version-2 histograms carry log-bucket percentiles.
    for field in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // The four phase timers of the paper's Eq. 4.
    for phase in [
        "\"backend.phase.sample_s\"",
        "\"backend.phase.transfer_s\"",
        "\"backend.phase.replace_s\"",
        "\"backend.phase.compute_s\"",
    ] {
        assert!(json.contains(phase), "missing {phase} in {json}");
    }
    // Cache hit/miss counters and explorer candidate counts.
    assert!(json.contains("\"backend.cache.hits\""), "{json}");
    assert!(json.contains("\"backend.cache.misses\""), "{json}");
    assert!(json.contains("\"explorer.candidates.evaluated\""), "{json}");
    assert!(json.contains("\"explorer.candidates.rejected\""), "{json}");

    // --verbose prints the metrics table and the phase breakdown.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase breakdown"), "{text}");
    assert!(text.contains("backend.cache.hits"), "{text}");

    // Gauge cells use adaptive formatting: round-trippable, and
    // magnitudes outside [1e-4, 1e7) rendered in scientific notation
    // rather than a mangled fixed-point expansion.
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("backend.peak_mem_bytes"))
        .expect("peak_mem_bytes gauge in verbose table");
    let cell = line.split_whitespace().last().expect("value cell");
    let value: f64 = cell.parse().expect("table cell parses back to f64");
    assert!(value > 0.0, "{line}");
    let fixed_range = value == 0.0 || (1e-4..1e7).contains(&value.abs());
    assert_eq!(cell.contains('e'), !fixed_range, "adaptive formatting violated: {cell}");
}

#[test]
fn trace_and_audit_outputs_are_valid() {
    use gnnavigator::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join(format!("gnnav-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let trace_path = dir.join("trace.json");
    let audit_path = dir.join("audit.json");
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--seed", "7"])
        .args(["--profile-samples", "24", "--explore-budget", "300", "--epochs", "2"])
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--audit-out")
        .arg(&audit_path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let audit = std::fs::read_to_string(&audit_path).expect("audit written");
    std::fs::remove_dir_all(&dir).ok();

    // The trace must be valid JSON with complete (X) events on both
    // the wall-clock (pid 1) and sim-clock (pid 2) processes.
    let doc = parse(&trace).expect("trace parses as JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    let ph = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_string);
    let pid = |e: &Value| e.get("pid").and_then(Value::as_f64);
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("X") && pid(e) == Some(1.0)));
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("X") && pid(e) == Some(2.0)));
    for e in events.iter().filter(|e| ph(e).as_deref() == Some("X")) {
        assert!(e.get("dur").and_then(Value::as_f64).is_some(), "X event without dur");
    }
    // Phase tracks, the profiler workers, and the explorer all leave
    // named threads behind.
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
        .collect();
    for expected in ["wall clock", "sim clock", "backend", "phase.sample", "explorer"] {
        assert!(thread_names.iter().any(|n| n == expected), "missing track {expected}");
    }
    assert!(thread_names.iter().any(|n| n.starts_with("profiler.worker-")), "{thread_names:?}");

    // The audit trail records a reason for every decision and ends
    // with the selected guideline.
    let doc = parse(&audit).expect("audit parses as JSON");
    let records = doc.get("records").and_then(Value::as_arr).expect("records array");
    assert!(!records.is_empty());
    for r in records {
        let action = r.get("action").and_then(Value::as_str).expect("action");
        assert!(
            ["accepted", "rejected", "pruned_subtree", "selected"].contains(&action),
            "{action}"
        );
        let reason = r.get("reason").and_then(Value::as_str).expect("reason");
        assert!(!reason.is_empty(), "empty reason for {action}");
        assert!(r.get("config").and_then(Value::as_str).is_some());
    }
    assert_eq!(
        records.last().and_then(|r| r.get("action")).and_then(Value::as_str),
        Some("selected")
    );
    assert!(records.iter().any(|r| r.get("action").and_then(Value::as_str) == Some("accepted")));
}

#[test]
fn metrics_diff_gates_regressions() {
    let dir = std::env::temp_dir().join(format!("gnnav-cli-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let write = |name: &str, batches: u64| {
        let path = dir.join(name);
        let json = format!(
            "{{\"version\": 2, \"enabled\": true, \
             \"counters\": {{\"backend.batches\": {batches}}}, \
             \"gauges\": {{}}, \"histograms\": {{}}}}"
        );
        std::fs::write(&path, json).expect("write snapshot");
        path
    };
    let baseline = write("baseline.json", 100);
    let regressed = write("regressed.json", 200);
    let ok = write("ok.json", 110);

    // An injected 100% regression breaches the 20% threshold.
    let out = gnnavigate()
        .arg("metrics-diff")
        .args([&baseline, &regressed])
        .args(["--threshold", "20"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "regression must exit non-zero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BREACH"), "{text}");
    assert!(text.contains("backend.batches"), "{text}");
    assert!(text.contains("1 breach"), "{text}");

    // A 10% move passes the same gate.
    let out = gnnavigate()
        .arg("metrics-diff")
        .args([&baseline, &ok])
        .args(["--threshold", "20"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 breach"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_diff_rejects_bad_invocations() {
    // Wrong arity.
    let out = gnnavigate().args(["metrics-diff", "only-one.json"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two"));

    // Missing file.
    let out = gnnavigate()
        .args(["metrics-diff", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/a.json"));
}

/// Every `--flag` token in `text` (letters and dashes after the `--`,
/// at least one letter — markdown table rules like `|---|` and long
/// dashes don't count).
fn extract_flags(text: &str) -> std::collections::BTreeSet<String> {
    let mut flags = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if &bytes[i..i + 2] == b"--" {
            let start = i + 2;
            let mut end = start;
            while end < bytes.len() && (bytes[end].is_ascii_lowercase() || bytes[end] == b'-') {
                end += 1;
            }
            if end > start && bytes[start..end].iter().any(u8::is_ascii_lowercase) {
                flags.insert(format!("--{}", &text[start..end]));
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    flags
}

fn help_text() -> String {
    let out = gnnavigate().arg("--help").output().expect("run gnnavigate --help");
    assert!(out.status.success(), "--help must exit 0");
    String::from_utf8(out.stdout).expect("utf-8 help")
}

/// A value that parses for each value-taking flag; empty for
/// booleans. Flags missing from this table fail the parse-audit test,
/// which is the point: adding a flag means documenting how to
/// exercise it.
fn sample_args(flag: &str) -> Option<Vec<&'static str>> {
    Some(match flag {
        "--dataset" => vec!["RD2"],
        "--model" => vec!["sage"],
        "--priority" => vec!["bal"],
        "--platform" => vec!["rtx4090"],
        "--scale" => vec!["0.05"],
        "--max-time-ms" => vec!["100"],
        "--max-mem-mb" => vec!["100"],
        "--min-acc" => vec!["50"],
        "--profile-samples" => vec!["4"],
        "--explore-budget" => vec!["10"],
        "--epochs" => vec!["1"],
        "--seed" => vec!["1"],
        "--fault-plan" => vec!["plan.json"],
        "--profile-db" => vec!["profiles.db"],
        "--explore-cache" => vec!["ecache"],
        "--checkpoint-dir" => vec!["ckpts"],
        "--checkpoint-every" => vec!["2"],
        "--resume" => vec![],
        "--adapt" => vec![],
        "--drift-threshold" => vec!["0.5"],
        "--metrics-out" => vec!["metrics.json"],
        "--trace-out" => vec!["trace.json"],
        "--trace-summary" => vec![],
        "--flame-out" => vec!["flame.txt"],
        "--flame-weight" => vec!["sim"],
        "--audit-out" => vec!["audit.json"],
        "--verbose" => vec![],
        "--help" => vec![],
        _ => return None,
    })
}

/// serve-bench's own flags, which live behind the subcommand.
/// `--seed` and `--metrics-out` are shared with the main command and
/// sampled in [`sample_args`].
fn serve_bench_sample_args(flag: &str) -> Option<Vec<&'static str>> {
    Some(match flag {
        "--tenants" => vec!["8"],
        "--requests" => vec!["4"],
        "--burst" => vec!["2"],
        "--zipf" => vec!["1.1"],
        "--workers" => vec!["2"],
        "--queue-capacity" => vec!["8"],
        "--tenant-budget" => vec!["2"],
        "--transcript-out" => vec!["transcript.txt"],
        "--baseline-out" => vec!["baseline.json"],
        _ => return None,
    })
}

#[test]
fn every_help_flag_parses() {
    // Each flag is parsed in sequence before `--help` short-circuits,
    // so `<flag> [value] --help` exiting 0 proves the flag parses.
    for flag in extract_flags(&help_text()) {
        if flag == "--help" {
            continue;
        }
        let (mut cmd, args) = if flag == "--threshold" {
            // metrics-diff's own flag lives behind the subcommand.
            let mut c = gnnavigate();
            c.arg("metrics-diff");
            (c, vec!["5"])
        } else if let Some(args) = serve_bench_sample_args(&flag) {
            let mut c = gnnavigate();
            c.arg("serve-bench");
            (c, args)
        } else {
            let args = sample_args(&flag)
                .unwrap_or_else(|| panic!("{flag} appears in --help but has no sample value"));
            (gnnavigate(), args)
        };
        let out = cmd.arg(&flag).args(args).arg("--help").output().expect("spawn");
        assert!(
            out.status.success(),
            "{flag} failed to parse: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn readme_flag_table_matches_help() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("read README.md");
    let section = readme
        .split("## Command line")
        .nth(1)
        .expect("README must keep its `## Command line` section")
        .split("\n## ")
        .next()
        .expect("non-empty section");
    // Only the table rows count as documentation; the invocation
    // snippet above the table mentions cargo's own flags.
    let table: String =
        section.lines().filter(|l| l.starts_with('|')).collect::<Vec<_>>().join("\n");
    let documented = extract_flags(&table);
    let in_help = extract_flags(&help_text());
    let missing_from_help: Vec<_> = documented.difference(&in_help).collect();
    assert!(
        missing_from_help.is_empty(),
        "README documents flags --help does not know: {missing_from_help:?}"
    );
    let undocumented: Vec<_> =
        in_help.iter().filter(|f| !documented.contains(*f) && **f != "--help").collect();
    assert!(
        undocumented.is_empty(),
        "--help knows flags the README flag table omits: {undocumented:?}"
    );
}

#[test]
fn warm_profile_db_invocation_performs_zero_redundant_profiling() {
    use gnnavigator::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join(format!("gnnav-cli-psdb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let db = dir.join("profiles.db");

    let run = |metrics_name: &str| {
        let metrics_path = dir.join(metrics_name);
        let out = gnnavigate()
            .args(["--dataset", "RD2", "--scale", "0.01", "--seed", "3"])
            .args(["--profile-samples", "12", "--explore-budget", "200"])
            .arg("--profile-db")
            .arg(&db)
            .arg("--metrics-out")
            .arg(&metrics_path)
            .output()
            .expect("spawn");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let guideline = stdout
            .lines()
            .find(|l| l.starts_with("guideline:"))
            .expect("guideline line")
            .to_string();
        let json = std::fs::read_to_string(&metrics_path).expect("metrics written");
        let doc = parse(&json).expect("metrics parse");
        let profiled = doc
            .get("counters")
            .and_then(|c| c.get("profiler.records"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        (guideline, profiled)
    };

    let (cold_guideline, cold_profiled) = run("cold.json");
    assert!(cold_profiled > 0.0, "cold run must profile ({cold_profiled})");
    let (warm_guideline, warm_profiled) = run("warm.json");
    assert_eq!(warm_profiled, 0.0, "warm run must not profile a single config");
    assert_eq!(warm_guideline, cold_guideline, "warm run reaches the cold guideline");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_explore_cache_invocation_skips_dse_with_identical_stdout() {
    use gnnavigator::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join(format!("gnnav-cli-ecache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let db = dir.join("profiles.db");
    let cache = dir.join("ecache");

    // --profile-db keeps the estimator inputs identical between the
    // runs, so the exploration fingerprint matches and the second run
    // hits the cache.
    let run = |metrics_name: &str| {
        let metrics_path = dir.join(metrics_name);
        let out = gnnavigate()
            .args(["--dataset", "RD2", "--scale", "0.01", "--seed", "3"])
            .args(["--profile-samples", "12", "--explore-budget", "200"])
            .arg("--profile-db")
            .arg(&db)
            .arg("--explore-cache")
            .arg(&cache)
            .arg("--metrics-out")
            .arg(&metrics_path)
            .output()
            .expect("spawn");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let json = std::fs::read_to_string(&metrics_path).expect("metrics written");
        let doc = parse(&json).expect("metrics parse");
        let counter = |name: &str| {
            doc.get("counters").and_then(|c| c.get(name)).and_then(Value::as_f64).unwrap_or(0.0)
        };
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        (
            stdout,
            stderr,
            counter("explorer.candidates.evaluated"),
            counter("explorer.cache.hits"),
            counter("explorer.cache.inserts"),
        )
    };

    let (cold_stdout, cold_stderr, cold_evaluated, cold_hits, cold_inserts) = run("cold.json");
    assert!(cold_evaluated > 0.0, "cold run must explore ({cold_evaluated})");
    assert_eq!(cold_hits, 0.0, "cold run cannot hit an empty cache");
    assert_eq!(cold_inserts, 1.0, "cold run appends its result");
    assert!(cold_stderr.contains("explore cache miss"), "{cold_stderr}");

    let (warm_stdout, warm_stderr, warm_evaluated, warm_hits, warm_inserts) = run("warm.json");
    assert_eq!(warm_evaluated, 0.0, "warm run must not evaluate a single candidate");
    assert!(warm_hits >= 1.0, "warm run must be served from the cache");
    assert_eq!(warm_inserts, 0.0, "warm run appends nothing");
    assert!(warm_stderr.contains("explore cache hit"), "{warm_stderr}");
    assert_eq!(warm_stdout, cold_stdout, "cached guideline must be byte-identical on stdout");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_rejects_unknown_flags() {
    let out = gnnavigate().args(["serve-bench", "--bogus"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown serve-bench flag"));

    let out = gnnavigate().args(["serve-bench", "--tenants"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

#[test]
fn serve_bench_is_byte_identical_across_worker_counts() {
    use gnnavigator::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join(format!("gnnav-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");

    // A small closed loop: 12 requests over 40 zipf tenants in two
    // bursts. Everything observable — transcript file, counters-only
    // baseline, stdout — must be a pure function of the flags, so the
    // width-1 and width-4 runs are compared byte for byte.
    let run = |width: &str| {
        let transcript = dir.join(format!("transcript-{width}.txt"));
        let baseline = dir.join(format!("baseline-{width}.json"));
        let out = gnnavigate()
            .arg("serve-bench")
            .args(["--tenants", "40", "--requests", "12", "--burst", "6", "--seed", "11"])
            .args(["--queue-capacity", "16", "--tenant-budget", "6"])
            .args(["--workers", width])
            .arg("--transcript-out")
            .arg(&transcript)
            .arg("--baseline-out")
            .arg(&baseline)
            .output()
            .expect("spawn");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            std::fs::read_to_string(&transcript).expect("transcript written"),
            std::fs::read_to_string(&baseline).expect("baseline written"),
        )
    };

    let (stdout_1, transcript_1, baseline_1) = run("1");
    let (stdout_4, transcript_4, baseline_4) = run("4");
    assert_eq!(transcript_1, transcript_4, "transcript must not depend on worker width");
    assert_eq!(baseline_1, baseline_4, "baseline must not depend on worker width");
    assert_eq!(stdout_1, stdout_4, "stdout must not depend on worker width");

    // Transcript shape: header, responses in commit order, footer.
    assert!(transcript_1.starts_with("# serve-bench "), "{transcript_1}");
    assert!(transcript_1.contains("resp seq=0 "), "{transcript_1}");
    assert!(transcript_1.lines().last().unwrap_or("").starts_with("# done "), "{transcript_1}");

    // The counters-only baseline is internally consistent: every
    // admitted request answered, and zipf repeats served from the
    // cache tiers rather than fresh explorations.
    let doc = parse(&baseline_1).expect("baseline parses as JSON");
    let counter = |name: &str| {
        doc.get("counters").and_then(|c| c.get(name)).and_then(Value::as_f64).unwrap_or(0.0)
    };
    assert!(doc.get("gauges").is_some(), "{baseline_1}");
    assert!(!baseline_1.contains("serve.queue.depth"), "baseline must drop gauges");
    let admitted = counter("serve.requests.admitted");
    assert!(admitted > 0.0, "{baseline_1}");
    assert_eq!(counter("serve.responses"), admitted, "every admitted request is answered");
    assert_eq!(counter("serve.waves"), 2.0, "12 requests in bursts of 6");
    let explorations = counter("serve.explorations");
    assert!(explorations > 0.0, "{baseline_1}");
    assert!(
        explorations < admitted,
        "zipf repeats must hit the cache tiers: {explorations} explorations \
         for {admitted} admissions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durability_flags_require_checkpoint_dir() {
    let out = gnnavigate().args(["--checkpoint-every", "2"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires --checkpoint-dir"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = gnnavigate().arg("--resume").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --checkpoint-dir"));
}

#[test]
fn checkpoint_every_zero_is_rejected() {
    let out = gnnavigate()
        .args(["--checkpoint-dir", "ckpts", "--checkpoint-every", "0"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("must be >= 1"));
}

#[test]
fn bad_drift_threshold_is_rejected() {
    for bad in ["0", "-1", "nan", "apple"] {
        let out = gnnavigate().args(["--drift-threshold", bad]).output().expect("spawn");
        assert!(!out.status.success(), "--drift-threshold {bad} must be rejected");
    }
}

#[test]
fn metrics_disabled_by_default() {
    // Without --metrics-out/--verbose, no metrics table appears.
    let out = gnnavigate().args(["--dataset", "RD2", "--scale", "0.01"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("backend.cache.hits"), "{text}");
}
