//! Integration tests for the `gnnavigate` CLI binary.

use std::process::Command;

fn gnnavigate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnavigate"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gnnavigate().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--priority"));
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = gnnavigate().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "{text}");
}

#[test]
fn bad_dataset_fails() {
    let out = gnnavigate().args(["--dataset", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_value_fails() {
    let out = gnnavigate().arg("--scale").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

#[test]
fn tiny_end_to_end_run_succeeds() {
    // A very small full-pipeline run: profile, explore, apply.
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--priority", "bal"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guideline:"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn metrics_out_writes_schema_with_phase_cache_and_explorer_series() {
    let dir = std::env::temp_dir().join(format!("gnnav-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("metrics.json");
    let out = gnnavigate()
        .args([
            "--dataset",
            "RD2",
            "--scale",
            "0.01",
            "--priority",
            "bal",
            "--verbose",
            "--metrics-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_dir_all(&dir).ok();

    // Envelope.
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"enabled\": true"), "{json}");
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
    // The four phase timers of the paper's Eq. 4.
    for phase in [
        "\"backend.phase.sample_s\"",
        "\"backend.phase.transfer_s\"",
        "\"backend.phase.replace_s\"",
        "\"backend.phase.compute_s\"",
    ] {
        assert!(json.contains(phase), "missing {phase} in {json}");
    }
    // Cache hit/miss counters and explorer candidate counts.
    assert!(json.contains("\"backend.cache.hits\""), "{json}");
    assert!(json.contains("\"backend.cache.misses\""), "{json}");
    assert!(json.contains("\"explorer.candidates.evaluated\""), "{json}");
    assert!(json.contains("\"explorer.candidates.rejected\""), "{json}");

    // --verbose prints the metrics table and the phase breakdown.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase breakdown"), "{text}");
    assert!(text.contains("backend.cache.hits"), "{text}");
}

#[test]
fn metrics_disabled_by_default() {
    // Without --metrics-out/--verbose, no metrics table appears.
    let out = gnnavigate().args(["--dataset", "RD2", "--scale", "0.01"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("backend.cache.hits"), "{text}");
}
