//! Integration tests for the `gnnavigate` CLI binary.

use std::process::Command;

fn gnnavigate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnavigate"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gnnavigate().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--priority"));
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = gnnavigate().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "{text}");
}

#[test]
fn bad_dataset_fails() {
    let out = gnnavigate().args(["--dataset", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_value_fails() {
    let out = gnnavigate().arg("--scale").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

#[test]
fn tiny_end_to_end_run_succeeds() {
    // A very small full-pipeline run: profile, explore, apply.
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--priority", "bal"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guideline:"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn metrics_out_writes_schema_with_phase_cache_and_explorer_series() {
    let dir = std::env::temp_dir().join(format!("gnnav-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("metrics.json");
    let out = gnnavigate()
        .args([
            "--dataset",
            "RD2",
            "--scale",
            "0.01",
            "--priority",
            "bal",
            "--verbose",
            "--metrics-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_dir_all(&dir).ok();

    // Envelope.
    assert!(json.contains("\"version\": 2"), "{json}");
    assert!(json.contains("\"enabled\": true"), "{json}");
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
    // Version-2 histograms carry log-bucket percentiles.
    for field in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
    // The four phase timers of the paper's Eq. 4.
    for phase in [
        "\"backend.phase.sample_s\"",
        "\"backend.phase.transfer_s\"",
        "\"backend.phase.replace_s\"",
        "\"backend.phase.compute_s\"",
    ] {
        assert!(json.contains(phase), "missing {phase} in {json}");
    }
    // Cache hit/miss counters and explorer candidate counts.
    assert!(json.contains("\"backend.cache.hits\""), "{json}");
    assert!(json.contains("\"backend.cache.misses\""), "{json}");
    assert!(json.contains("\"explorer.candidates.evaluated\""), "{json}");
    assert!(json.contains("\"explorer.candidates.rejected\""), "{json}");

    // --verbose prints the metrics table and the phase breakdown.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase breakdown"), "{text}");
    assert!(text.contains("backend.cache.hits"), "{text}");

    // Gauge cells use adaptive formatting: round-trippable, and
    // magnitudes outside [1e-4, 1e7) rendered in scientific notation
    // rather than a mangled fixed-point expansion.
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("backend.peak_mem_bytes"))
        .expect("peak_mem_bytes gauge in verbose table");
    let cell = line.split_whitespace().last().expect("value cell");
    let value: f64 = cell.parse().expect("table cell parses back to f64");
    assert!(value > 0.0, "{line}");
    let fixed_range = value == 0.0 || (1e-4..1e7).contains(&value.abs());
    assert_eq!(cell.contains('e'), !fixed_range, "adaptive formatting violated: {cell}");
}

#[test]
fn trace_and_audit_outputs_are_valid() {
    use gnnavigator::obs::json::{parse, Value};

    let dir = std::env::temp_dir().join(format!("gnnav-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let trace_path = dir.join("trace.json");
    let audit_path = dir.join("audit.json");
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--seed", "7"])
        .args(["--profile-samples", "24", "--explore-budget", "300", "--epochs", "2"])
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--audit-out")
        .arg(&audit_path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let audit = std::fs::read_to_string(&audit_path).expect("audit written");
    std::fs::remove_dir_all(&dir).ok();

    // The trace must be valid JSON with complete (X) events on both
    // the wall-clock (pid 1) and sim-clock (pid 2) processes.
    let doc = parse(&trace).expect("trace parses as JSON");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    let ph = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_string);
    let pid = |e: &Value| e.get("pid").and_then(Value::as_f64);
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("X") && pid(e) == Some(1.0)));
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("X") && pid(e) == Some(2.0)));
    for e in events.iter().filter(|e| ph(e).as_deref() == Some("X")) {
        assert!(e.get("dur").and_then(Value::as_f64).is_some(), "X event without dur");
    }
    // Phase tracks, the profiler workers, and the explorer all leave
    // named threads behind.
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| ph(e).as_deref() == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
        .collect();
    for expected in ["wall clock", "sim clock", "backend", "phase.sample", "explorer"] {
        assert!(thread_names.iter().any(|n| n == expected), "missing track {expected}");
    }
    assert!(thread_names.iter().any(|n| n.starts_with("profiler.worker-")), "{thread_names:?}");

    // The audit trail records a reason for every decision and ends
    // with the selected guideline.
    let doc = parse(&audit).expect("audit parses as JSON");
    let records = doc.get("records").and_then(Value::as_arr).expect("records array");
    assert!(!records.is_empty());
    for r in records {
        let action = r.get("action").and_then(Value::as_str).expect("action");
        assert!(
            ["accepted", "rejected", "pruned_subtree", "selected"].contains(&action),
            "{action}"
        );
        let reason = r.get("reason").and_then(Value::as_str).expect("reason");
        assert!(!reason.is_empty(), "empty reason for {action}");
        assert!(r.get("config").and_then(Value::as_str).is_some());
    }
    assert_eq!(
        records.last().and_then(|r| r.get("action")).and_then(Value::as_str),
        Some("selected")
    );
    assert!(records.iter().any(|r| r.get("action").and_then(Value::as_str) == Some("accepted")));
}

#[test]
fn metrics_diff_gates_regressions() {
    let dir = std::env::temp_dir().join(format!("gnnav-cli-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let write = |name: &str, batches: u64| {
        let path = dir.join(name);
        let json = format!(
            "{{\"version\": 2, \"enabled\": true, \
             \"counters\": {{\"backend.batches\": {batches}}}, \
             \"gauges\": {{}}, \"histograms\": {{}}}}"
        );
        std::fs::write(&path, json).expect("write snapshot");
        path
    };
    let baseline = write("baseline.json", 100);
    let regressed = write("regressed.json", 200);
    let ok = write("ok.json", 110);

    // An injected 100% regression breaches the 20% threshold.
    let out = gnnavigate()
        .arg("metrics-diff")
        .args([&baseline, &regressed])
        .args(["--threshold", "20"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "regression must exit non-zero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BREACH"), "{text}");
    assert!(text.contains("backend.batches"), "{text}");
    assert!(text.contains("1 breach"), "{text}");

    // A 10% move passes the same gate.
    let out = gnnavigate()
        .arg("metrics-diff")
        .args([&baseline, &ok])
        .args(["--threshold", "20"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 breach"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_diff_rejects_bad_invocations() {
    // Wrong arity.
    let out = gnnavigate().args(["metrics-diff", "only-one.json"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two"));

    // Missing file.
    let out = gnnavigate()
        .args(["metrics-diff", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/a.json"));
}

#[test]
fn metrics_disabled_by_default() {
    // Without --metrics-out/--verbose, no metrics table appears.
    let out = gnnavigate().args(["--dataset", "RD2", "--scale", "0.01"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("backend.cache.hits"), "{text}");
}
