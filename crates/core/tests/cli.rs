//! Integration tests for the `gnnavigate` CLI binary.

use std::process::Command;

fn gnnavigate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gnnavigate"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = gnnavigate().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--priority"));
}

#[test]
fn unknown_flag_fails_with_message() {
    let out = gnnavigate().arg("--bogus").output().expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown flag"), "{text}");
}

#[test]
fn bad_dataset_fails() {
    let out = gnnavigate().args(["--dataset", "nope"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn missing_value_fails() {
    let out = gnnavigate().arg("--scale").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value"));
}

#[test]
fn tiny_end_to_end_run_succeeds() {
    // A very small full-pipeline run: profile, explore, apply.
    let out = gnnavigate()
        .args(["--dataset", "RD2", "--scale", "0.01", "--priority", "bal"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guideline:"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}
