//! **GNNavigator** — adaptive training of graph neural networks via
//! automatic guideline exploration (reproduction of Qiao et al.,
//! DAC 2024).
//!
//! GNNavigator tunes GNN *training configurations* — sampling
//! strategy, device feature caching, transfer precision, pipelining,
//! batch geometry — to an application's priorities over training time
//! `T`, device memory `Γ`, and accuracy `Acc`. The pipeline:
//!
//! 1. profile the reconfigurable runtime backend over the design
//!    space ([`gnnav_runtime::DesignSpace`]),
//! 2. fit a gray-box performance estimator
//!    ([`gnnav_estimator::GrayBoxEstimator`]),
//! 3. explore with DFS + Pareto-front decision making
//!    ([`gnnav_explorer::Explorer`]),
//! 4. apply the resulting [`Guideline`] on the backend and verify.
//!
//! The [`Navigator`] type drives all four steps; the sub-crates are
//! re-exported as modules for a single-dependency experience.
//!
//! # Quickstart
//!
//! ```no_run
//! use gnnavigator::{Navigator, Priority, RuntimeConstraints};
//! use gnnavigator::graph::{Dataset, DatasetId};
//! use gnnavigator::hwsim::Platform;
//! use gnnavigator::nn::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = Dataset::load_scaled(DatasetId::OgbnProducts, 0.2)?;
//! let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage);
//! nav.prepare()?;
//! let result = nav.generate_guideline(Priority::ExTimeMemory,
//!                                     &RuntimeConstraints::none())?;
//! println!("guideline: {}", result.guideline.config.summary());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod navigator;

/// Online guideline adaptation: drift detection + mid-training
/// switches.
pub use gnnav_adapt as adapt;
/// Device feature-cache policies.
pub use gnnav_cache as cache;
/// Gray-box performance estimator.
pub use gnnav_estimator as estimator;
/// Design space exploration.
pub use gnnav_explorer as explorer;
/// Deterministic fault injection for chaos testing.
pub use gnnav_faults as faults;
/// Graph substrate: CSR graphs, generators, dataset stand-ins.
pub use gnnav_graph as graph;
/// Heterogeneous platform simulation.
pub use gnnav_hwsim as hwsim;
/// Regression models for the estimator.
pub use gnnav_ml as ml;
/// NN substrate: tensors, GCN/SAGE/GAT, optimizers.
pub use gnnav_nn as nn;
/// Metrics/tracing registry with JSON snapshot export.
pub use gnnav_obs as obs;
/// Scoped thread pool and width-independent parallel maps.
pub use gnnav_par as par;
/// Reconfigurable runtime backend.
pub use gnnav_runtime as runtime;
/// Unified sampling abstraction.
pub use gnnav_sampler as sampler;
/// Navigation-as-a-service: multi-tenant guideline server.
pub use gnnav_serve as serve;
/// Crash-safe durable storage: WAL, checkpoints, corruption tools.
pub use gnnav_store as store;

pub use gnnav_explorer::{ExploreCache, Guideline, Priority, RuntimeConstraints};
pub use gnnav_runtime::{Template, TrainingConfig};
pub use navigator::{Navigator, NavigatorOptions};

use std::error::Error;
use std::fmt;

/// Errors from the navigator pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum NavigatorError {
    /// [`Navigator::prepare`] has not been called yet.
    NotPrepared,
    /// A backend execution failed.
    Runtime(gnnav_runtime::RuntimeError),
    /// Estimator fitting failed.
    Estimator(gnnav_estimator::EstimatorError),
    /// Guideline exploration failed.
    Explorer(gnnav_explorer::ExplorerError),
    /// Adaptive execution failed.
    Adapt(gnnav_adapt::AdaptError),
    /// A durable-store operation (profile store, checkpoint) failed.
    Store(gnnav_store::StoreError),
    /// A pipeline step failed with a contextual message.
    Pipeline(String),
}

impl fmt::Display for NavigatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NavigatorError::NotPrepared => {
                write!(f, "navigator not prepared: call prepare() first")
            }
            NavigatorError::Runtime(e) => write!(f, "runtime error: {e}"),
            NavigatorError::Estimator(e) => write!(f, "estimator error: {e}"),
            NavigatorError::Explorer(e) => write!(f, "explorer error: {e}"),
            NavigatorError::Adapt(e) => write!(f, "adaptive execution error: {e}"),
            NavigatorError::Store(e) => write!(f, "store error: {e}"),
            NavigatorError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl Error for NavigatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NavigatorError::Runtime(e) => Some(e),
            NavigatorError::Estimator(e) => Some(e),
            NavigatorError::Explorer(e) => Some(e),
            NavigatorError::Adapt(e) => Some(e),
            NavigatorError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gnnav_runtime::RuntimeError> for NavigatorError {
    fn from(e: gnnav_runtime::RuntimeError) -> Self {
        NavigatorError::Runtime(e)
    }
}

impl From<gnnav_estimator::EstimatorError> for NavigatorError {
    fn from(e: gnnav_estimator::EstimatorError) -> Self {
        NavigatorError::Estimator(e)
    }
}

impl From<gnnav_explorer::ExplorerError> for NavigatorError {
    fn from(e: gnnav_explorer::ExplorerError) -> Self {
        NavigatorError::Explorer(e)
    }
}

impl From<gnnav_adapt::AdaptError> for NavigatorError {
    fn from(e: gnnav_adapt::AdaptError) -> Self {
        NavigatorError::Adapt(e)
    }
}

impl From<gnnav_store::StoreError> for NavigatorError {
    fn from(e: gnnav_store::StoreError) -> Self {
        NavigatorError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impls() {
        fn assert_err<T: Error + Send>() {}
        assert_err::<NavigatorError>();
        assert!(NavigatorError::NotPrepared.to_string().contains("prepare"));
    }
}
