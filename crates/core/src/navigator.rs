//! The end-to-end GNNavigator workflow (Fig. 2 of the paper).
//!
//! 1. **Inputs** — graph dataset, GNN model, application requirements
//!    (priorities + constraints), hardware platform.
//! 2. **Prepare** — profile the design space on the runtime backend
//!    (plus power-law data enhancement) and fit the gray-box
//!    estimator.
//! 3. **Explore** — generate training guidelines adapted to the
//!    requirements.
//! 4. **Apply** — execute a guideline on the backend and verify the
//!    measured `Perf{T, Γ, Acc}`.

use crate::NavigatorError;
use gnnav_adapt::{AdaptOptions, AdaptiveReport, AdaptiveRunner};
use gnnav_estimator::{profile_fingerprint, GrayBoxEstimator, ProfileDb, ProfileStore, Profiler};
use gnnav_explorer::{
    explore_fingerprint, ExplorationResult, ExploreCache, Explorer, Guideline, Priority,
    RuntimeConstraints,
};
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{
    DesignSpace, DurabilityOptions, ExecutionOptions, ExecutionReport, RuntimeBackend, Template,
    TrainingConfig,
};

/// Tunables of the navigator pipeline.
#[derive(Debug, Clone)]
pub struct NavigatorOptions {
    /// Design-space samples profiled per dataset for estimator
    /// training.
    pub profile_samples: usize,
    /// Number of power-law augmentation graphs (0 disables the
    /// enhancement step).
    pub augmentation_graphs: usize,
    /// Node count of each augmentation graph.
    pub augmentation_nodes: usize,
    /// Backend options used during profiling (keep cheap).
    pub profile_exec: ExecutionOptions,
    /// Backend options used when applying a guideline (full runs).
    pub apply_exec: ExecutionOptions,
    /// DFS leaf-evaluation budget during exploration.
    pub explore_budget: usize,
    /// The design space to profile over and explore (defaults to
    /// [`DesignSpace::standard`]; shrink the batch axis when running
    /// scaled-down dataset stand-ins).
    pub space: DesignSpace,
    /// Seed for profiling config sampling.
    pub seed: u64,
}

impl Default for NavigatorOptions {
    fn default() -> Self {
        NavigatorOptions {
            profile_samples: 60,
            augmentation_graphs: 2,
            augmentation_nodes: 1500,
            profile_exec: ExecutionOptions {
                epochs: 1,
                train: true,
                train_batches_cap: Some(4),
                // Probe sweeps run dozens of configs; keeping them out
                // of the journal leaves the trace with exactly one
                // backend timeline — the navigated execution.
                journal: false,
                ..Default::default()
            },
            apply_exec: ExecutionOptions::default(),
            explore_budget: 2000,
            space: DesignSpace::standard(),
            seed: 0x7A51,
        }
    }
}

/// The adaptive GNN-training navigator.
///
/// # Example
///
/// ```no_run
/// use gnnavigator::{Navigator, Priority, RuntimeConstraints};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
/// use gnnav_nn::ModelKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1)?;
/// let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage);
/// nav.prepare()?; // profile + fit the gray-box estimator
/// let result = nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none())?;
/// let report = nav.apply(&result.guideline)?;
/// println!("measured: {} / {:.1} MB / {:.1}%",
///          report.perf.epoch_time, report.perf.peak_mem_mb(),
///          report.perf.accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Navigator {
    dataset: Dataset,
    platform: Platform,
    model: ModelKind,
    backend: RuntimeBackend,
    options: NavigatorOptions,
    estimator: Option<GrayBoxEstimator>,
    profile_db: ProfileDb,
    profile_store: Option<ProfileStore>,
    // RefCell: `generate_guideline` is `&self`, but a lookup/insert
    // must meter the cache and append to its log.
    explore_cache: Option<std::cell::RefCell<ExploreCache>>,
}

impl Navigator {
    /// Creates a navigator for training `model` on `dataset` over
    /// `platform`.
    pub fn new(dataset: Dataset, platform: Platform, model: ModelKind) -> Self {
        let backend = RuntimeBackend::new(platform.clone());
        Navigator {
            dataset,
            platform,
            model,
            backend,
            options: NavigatorOptions::default(),
            estimator: None,
            profile_db: ProfileDb::new(),
            profile_store: None,
            explore_cache: None,
        }
    }

    /// Overrides the pipeline options.
    pub fn with_options(mut self, options: NavigatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a durable [`ProfileStore`]: [`Navigator::prepare`]
    /// skips every configuration the store already covers and appends
    /// each freshly profiled record, so repeat invocations against the
    /// same store re-profile nothing and still fit on a byte-identical
    /// database.
    pub fn with_profile_store(mut self, store: ProfileStore) -> Self {
        self.profile_store = Some(store);
        self
    }

    /// The attached profile store, if any.
    pub fn profile_store(&self) -> Option<&ProfileStore> {
        self.profile_store.as_ref()
    }

    /// Attaches a durable [`ExploreCache`]:
    /// [`Navigator::generate_guideline`] fingerprints every exploration
    /// input and serves a cached [`ExplorationResult`] when the
    /// fingerprint matches, skipping the DSE entirely — a repeat
    /// invocation returns the byte-identical guideline in
    /// sub-millisecond time. Fresh explorations are appended.
    pub fn with_explore_cache(mut self, cache: ExploreCache) -> Self {
        self.explore_cache = Some(std::cell::RefCell::new(cache));
        self
    }

    /// The attached exploration cache, if any.
    pub fn explore_cache(&self) -> Option<std::cell::Ref<'_, ExploreCache>> {
        self.explore_cache.as_ref().map(|c| c.borrow())
    }

    /// The dataset under navigation.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The profile database collected by [`Navigator::prepare`].
    pub fn profile_db(&self) -> &ProfileDb {
        &self.profile_db
    }

    /// Profiles the design space and fits the gray-box estimator
    /// (idempotent: subsequent calls refit on the accumulated
    /// profiles).
    ///
    /// # Errors
    ///
    /// Propagates profiling and fitting failures.
    pub fn prepare(&mut self) -> Result<&GrayBoxEstimator, NavigatorError> {
        let profiler = Profiler::new(self.backend.clone(), self.options.profile_exec.clone());
        let configs =
            self.options.space.sample(self.options.profile_samples, self.model, self.options.seed);
        let db = Self::profile_with_store(
            &profiler,
            &self.platform,
            self.profile_store.as_mut(),
            &self.dataset,
            &configs,
        )?;
        self.profile_db.merge(db);
        if self.options.augmentation_graphs > 0 {
            let aug_configs = self.options.space.sample(
                (self.options.profile_samples / 2).max(4),
                self.model,
                self.options.seed ^ 0xA06,
            );
            // The augmentation loop mirrors
            // `Profiler::profile_augmentation` graph for graph (same
            // degrees and seeds), regenerating each synthetic dataset
            // so its fingerprints can be checked against the store.
            let seed = self.options.seed ^ 0x9999;
            for i in 0..self.options.augmentation_graphs {
                let dataset = Dataset::synthetic(
                    self.options.augmentation_nodes,
                    3 + (i % 5),
                    64,
                    16,
                    seed.wrapping_add(i as u64),
                )
                .map_err(|e| NavigatorError::Pipeline(e.to_string()))?;
                let aug = Self::profile_with_store(
                    &profiler,
                    &self.platform,
                    self.profile_store.as_mut(),
                    &dataset,
                    &aug_configs,
                )?;
                self.profile_db.merge(aug);
            }
        }
        let mut estimator = GrayBoxEstimator::new();
        estimator.fit(&self.profile_db)?;
        self.estimator = Some(estimator);
        Ok(self.estimator.as_ref().expect("just set"))
    }

    /// Profiles `configs` on `dataset`, pulling already-covered
    /// records from the store and appending fresh ones, so the
    /// returned database is in config order either way — a warm run
    /// assembles the byte-identical database of the cold run without
    /// executing a single redundant sweep config.
    fn profile_with_store(
        profiler: &Profiler,
        platform: &Platform,
        store: Option<&mut ProfileStore>,
        dataset: &Dataset,
        configs: &[TrainingConfig],
    ) -> Result<ProfileDb, NavigatorError> {
        let Some(store) = store else {
            return Ok(profiler.profile(dataset, configs)?);
        };
        let fps: Vec<u64> =
            configs.iter().map(|c| profile_fingerprint(dataset, platform, c)).collect();
        let uncovered: Vec<usize> =
            (0..configs.len()).filter(|&i| !store.contains(fps[i])).collect();
        let mut fresh: std::collections::HashMap<usize, gnnav_estimator::ProfileRecord> =
            std::collections::HashMap::new();
        if !uncovered.is_empty() {
            let cfgs: Vec<TrainingConfig> = uncovered.iter().map(|&i| configs[i].clone()).collect();
            let db = profiler.profile(dataset, &cfgs)?;
            // Fresh records come back in subset order; configs that
            // failed to execute (infeasible points) leave gaps, so
            // match sequentially by config equality.
            let mut j = 0usize;
            for rec in db.records() {
                while j < uncovered.len() && configs[uncovered[j]] != rec.context.config {
                    j += 1;
                }
                if j == uncovered.len() {
                    break;
                }
                store.insert(rec)?;
                fresh.insert(uncovered[j], rec.clone());
                j += 1;
            }
        }
        let mut db = ProfileDb::new();
        for (i, fp) in fps.iter().enumerate() {
            if let Some(r) = fresh.get(&i) {
                db.push(r.clone());
            } else if let Some(r) = store.get(*fp) {
                db.push(r.clone());
            }
            // Neither stored nor freshly profiled: the config failed
            // to execute — skipped exactly like a cold sweep skips it.
        }
        Ok(db)
    }

    /// Everything the fitted estimator depends on beyond the dataset
    /// and platform (already fingerprinted directly): sweep size,
    /// augmentation shape, sampling seed, and profiling mode. Folded
    /// into the exploration-cache fingerprint so differently-fitted
    /// estimators never share cache entries.
    fn estimator_salt(&self) -> String {
        format!(
            "samples={} aug={}x{} seed={:#x} profile_exec={:?}",
            self.options.profile_samples,
            self.options.augmentation_graphs,
            self.options.augmentation_nodes,
            self.options.seed,
            self.options.profile_exec,
        )
    }

    /// Generates the guideline for one priority.
    ///
    /// With an attached [`ExploreCache`], a fingerprint hit returns the
    /// cached result without running the DSE; a miss explores and
    /// appends the fresh result.
    ///
    /// # Errors
    ///
    /// Returns [`NavigatorError::NotPrepared`] before
    /// [`Navigator::prepare`], or exploration / cache-append failures.
    pub fn generate_guideline(
        &self,
        priority: Priority,
        constraints: &RuntimeConstraints,
    ) -> Result<ExplorationResult, NavigatorError> {
        let estimator = self.estimator.as_ref().ok_or(NavigatorError::NotPrepared)?;
        let explorer = Explorer::new(estimator, self.options.explore_budget)
            .with_space(self.options.space.clone());
        let fingerprint = self.explore_cache.as_ref().map(|_| {
            explore_fingerprint(
                &self.dataset,
                &self.platform,
                self.model,
                &self.options.space,
                priority,
                constraints,
                explorer.budget(),
                explorer.seed(),
                &self.estimator_salt(),
            )
        });
        if let (Some(cache), Some(fp)) = (&self.explore_cache, fingerprint) {
            if let Some(result) = cache.borrow_mut().lookup(fp) {
                return Ok(result.clone());
            }
        }
        let result =
            explorer.explore(&self.dataset, &self.platform, self.model, priority, constraints)?;
        if let (Some(cache), Some(fp)) = (&self.explore_cache, fingerprint) {
            cache
                .borrow_mut()
                .insert(fp, &result)
                .map_err(|e| NavigatorError::Pipeline(e.to_string()))?;
        }
        Ok(result)
    }

    /// Generates guidelines for every priority preset (the Bal /
    /// Ex-TM / Ex-MA / Ex-TA rows of Tab. 1).
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn generate_all(
        &self,
        constraints: &RuntimeConstraints,
    ) -> Result<Vec<ExplorationResult>, NavigatorError> {
        Priority::ALL.iter().map(|&p| self.generate_guideline(p, constraints)).collect()
    }

    /// Applies a guideline on the runtime backend (Step 3), returning
    /// the measured performance.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn apply(&self, guideline: &Guideline) -> Result<ExecutionReport, NavigatorError> {
        Ok(self.backend.execute(&self.dataset, &guideline.config, &self.options.apply_exec)?)
    }

    /// Applies a guideline adaptively (Step 4 extended): trains epoch
    /// by epoch, watches observed time / hit rate / memory against the
    /// exploration's prediction, and on sustained drift re-explores
    /// incrementally and switches the guideline mid-training.
    ///
    /// Without drift the run is byte-identical to [`Navigator::apply`]
    /// on the same guideline: the adaptive loop drives the exact same
    /// execution session, epoch for epoch.
    ///
    /// # Errors
    ///
    /// Returns [`NavigatorError::NotPrepared`] before
    /// [`Navigator::prepare`]; otherwise propagates backend, refit,
    /// and re-exploration failures.
    pub fn apply_adaptive(
        &self,
        exploration: &ExplorationResult,
        constraints: &RuntimeConstraints,
        adapt: AdaptOptions,
    ) -> Result<AdaptiveReport, NavigatorError> {
        if self.estimator.is_none() {
            return Err(NavigatorError::NotPrepared);
        }
        let runner = AdaptiveRunner::new(self.platform.clone(), adapt);
        Ok(runner.run(
            &self.dataset,
            exploration,
            &self.profile_db,
            &self.options.apply_exec,
            constraints,
        )?)
    }

    /// Applies a guideline with crash-safe checkpointing: the run
    /// writes an atomic checkpoint every `dur.every` epochs into
    /// `dur.dir` and, with `dur.resume`, continues from the latest
    /// valid checkpoint instead of epoch 0. A run killed at any epoch
    /// boundary and resumed this way produces the byte-identical
    /// [`ExecutionReport`] of an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates backend and checkpoint-store failures.
    pub fn apply_durable(
        &self,
        guideline: &Guideline,
        dur: &DurabilityOptions,
    ) -> Result<ExecutionReport, NavigatorError> {
        Ok(self.backend.execute_durable(
            &self.dataset,
            &guideline.config,
            &self.options.apply_exec,
            dur,
        )?)
    }

    /// [`Navigator::apply_adaptive`] with crash-safe checkpointing:
    /// drift state, guideline switches, and the underlying training
    /// session all checkpoint together, so a killed adaptive run
    /// resumes mid-training with its drift history intact.
    ///
    /// # Errors
    ///
    /// Returns [`NavigatorError::NotPrepared`] before
    /// [`Navigator::prepare`]; otherwise propagates backend, refit,
    /// re-exploration, and checkpoint-store failures.
    pub fn apply_adaptive_durable(
        &self,
        exploration: &ExplorationResult,
        constraints: &RuntimeConstraints,
        adapt: AdaptOptions,
        dur: &DurabilityOptions,
    ) -> Result<AdaptiveReport, NavigatorError> {
        if self.estimator.is_none() {
            return Err(NavigatorError::NotPrepared);
        }
        let runner = AdaptiveRunner::new(self.platform.clone(), adapt);
        Ok(runner.run_durable(
            &self.dataset,
            exploration,
            &self.profile_db,
            &self.options.apply_exec,
            constraints,
            dur,
        )?)
    }

    /// Runs a baseline template under the same execution options, for
    /// comparison rows.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn run_template(&self, template: Template) -> Result<ExecutionReport, NavigatorError> {
        let config = template.config(self.model);
        // Comparison rows never journal: the exported trace describes
        // the navigated execution, not the baselines raced against it.
        let opts = ExecutionOptions { journal: false, ..self.options.apply_exec.clone() };
        Ok(self.backend.execute(&self.dataset, &config, &opts)?)
    }

    /// Runs an arbitrary configuration under the apply options.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn run_config(&self, config: &TrainingConfig) -> Result<ExecutionReport, NavigatorError> {
        Ok(self.backend.execute(&self.dataset, config, &self.options.apply_exec)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::DatasetId;

    fn fast_navigator() -> Navigator {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.03).expect("load");
        let options = NavigatorOptions {
            profile_samples: 20,
            augmentation_graphs: 1,
            augmentation_nodes: 400,
            explore_budget: 200,
            apply_exec: ExecutionOptions {
                epochs: 1,
                train_batches_cap: Some(2),
                ..Default::default()
            },
            ..Default::default()
        };
        Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage).with_options(options)
    }

    #[test]
    fn full_pipeline_runs() {
        let mut nav = fast_navigator();
        nav.prepare().expect("prepare");
        assert!(!nav.profile_db().is_empty());
        let result = nav
            .generate_guideline(Priority::Balance, &RuntimeConstraints::none())
            .expect("explore");
        let report = nav.apply(&result.guideline).expect("apply");
        assert!(report.perf.epoch_time.as_secs() > 0.0);
        assert!(report.perf.accuracy > 0.0, "guideline run trains");
    }

    #[test]
    fn guideline_requires_prepare() {
        let nav = fast_navigator();
        assert!(matches!(
            nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none()),
            Err(NavigatorError::NotPrepared)
        ));
    }

    #[test]
    fn warm_prepare_reuses_store_and_matches_cold_guideline() {
        let dir = std::env::temp_dir().join(format!("gnnav-nav-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let db_path = dir.join("profiles.db");
        let _ = std::fs::remove_file(&db_path);

        let store = ProfileStore::open(&db_path).expect("open cold");
        let mut cold = fast_navigator().with_profile_store(store);
        cold.prepare().expect("cold prepare");
        let cold_guideline = cold
            .generate_guideline(Priority::Balance, &RuntimeConstraints::none())
            .expect("cold explore")
            .guideline;
        let stored = cold.profile_store().expect("store").len();
        assert_eq!(stored, cold.profile_db().len(), "every profiled record persisted");

        let store = ProfileStore::open(&db_path).expect("open warm");
        assert_eq!(store.len(), stored, "records survive reopen");
        let mut warm = fast_navigator().with_profile_store(store);
        warm.prepare().expect("warm prepare");
        assert_eq!(
            warm.profile_store().expect("store").len(),
            stored,
            "warm prepare appends nothing — every config was covered"
        );
        let warm_guideline = warm
            .generate_guideline(Priority::Balance, &RuntimeConstraints::none())
            .expect("warm explore")
            .guideline;
        assert_eq!(warm_guideline.config, cold_guideline.config, "same fit, same guideline");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_guideline_served_from_explore_cache_byte_identically() {
        let dir = std::env::temp_dir().join(format!("gnnav-nav-ecache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cache_path = dir.join("explore.wal");
        let _ = std::fs::remove_file(&cache_path);

        let cache = ExploreCache::open(&cache_path).expect("open cold");
        let mut cold = fast_navigator().with_explore_cache(cache);
        cold.prepare().expect("cold prepare");
        let cold_result =
            cold.generate_guideline(Priority::Balance, &RuntimeConstraints::none()).expect("cold");
        {
            let cache = cold.explore_cache().expect("cache");
            assert_eq!(cache.hits(), 0, "cold run cannot hit");
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.inserts(), 1);
        }
        // Same navigator, second call: served from the in-memory index.
        let again =
            cold.generate_guideline(Priority::Balance, &RuntimeConstraints::none()).expect("again");
        assert_eq!(cold.explore_cache().expect("cache").hits(), 1);
        assert_eq!(format!("{again:?}"), format!("{cold_result:?}"));

        // Fresh process equivalent: reopen the log, re-prepare, and the
        // exploration is skipped outright — byte-identical result,
        // zero candidates evaluated by this navigator.
        let cache = ExploreCache::open(&cache_path).expect("open warm");
        assert_eq!(cache.len(), 1, "result survives reopen");
        let mut warm = fast_navigator().with_explore_cache(cache);
        warm.prepare().expect("warm prepare");
        let warm_result =
            warm.generate_guideline(Priority::Balance, &RuntimeConstraints::none()).expect("warm");
        {
            let cache = warm.explore_cache().expect("cache");
            assert_eq!(cache.hits(), 1, "warm run served from cache");
            assert_eq!(cache.misses(), 0);
            assert_eq!(cache.inserts(), 0, "nothing re-explored, nothing appended");
        }
        assert_eq!(format!("{warm_result:?}"), format!("{cold_result:?}"), "byte-identical");

        // A different priority is a different fingerprint: no false hit.
        let _ = warm
            .generate_guideline(Priority::ExTimeMemory, &RuntimeConstraints::none())
            .expect("other priority");
        let cache = warm.explore_cache().expect("cache");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.inserts(), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn templates_run_directly() {
        let nav = fast_navigator();
        let report = nav.run_template(Template::Pyg).expect("run");
        assert_eq!(report.perf.hit_rate, 0.0, "PyG has no cache");
    }
}
