//! `gnnavigate` — command-line front end for the navigator.
//!
//! ```sh
//! gnnavigate --dataset RD2 --model sage --priority ex-tm --scale 0.2
//! gnnavigate --dataset PR --platform m90 --max-mem-mb 20 --min-acc 75
//! gnnavigate --scale 0.02 --trace-out trace.json --audit-out audit.json
//! gnnavigate metrics-diff BENCH_backend.json current.json --threshold 20
//! ```
//!
//! Runs the full pipeline (profile → fit → explore → apply) and prints
//! the guideline next to the PyG baseline. The `metrics-diff`
//! subcommand compares two metrics snapshots and exits non-zero when a
//! gated series regressed past the threshold — the CI perf gate.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::obs::diff::diff_snapshots;
use gnnavigator::obs::tree::Clock;
use gnnavigator::obs::Snapshot;
use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints, Template};
use std::process::ExitCode;

const USAGE: &str = "\
gnnavigate — adaptive GNN training guideline exploration

USAGE:
    gnnavigate [OPTIONS]
    gnnavigate metrics-diff <BASELINE.json> <CURRENT.json> [--threshold <PCT>]
    gnnavigate trace-diff <BASELINE.json> <CURRENT.json> [--threshold <PCT>]
    gnnavigate serve-bench [SERVE-BENCH OPTIONS]

OPTIONS:
    --dataset <AR|PR|RD|RD2>       dataset stand-in        [default: RD2]
    --model <gcn|sage|gat>         GNN architecture        [default: sage]
    --priority <bal|ex-tm|ex-ma|ex-ta>  explore priority   [default: bal]
    --platform <rtx4090|a100|m90>  hardware platform       [default: rtx4090]
    --scale <FLOAT>                dataset scale factor    [default: 0.2]
    --max-time-ms <FLOAT>          epoch-time constraint
    --max-mem-mb <FLOAT>           device-memory constraint
    --min-acc <PERCENT>            accuracy constraint
    --profile-samples <N>          configs profiled for the estimator
    --explore-budget <N>           DFS leaf-evaluation budget
    --epochs <N>                   training epochs when applying guidelines
    --seed <N>                     pipeline seed (profiling + exploration)
    --fault-plan <PATH>            inject deterministic faults from a JSON plan
                                   (chaos testing; see EXPERIMENTS.md)
    --profile-db <PATH>            durable WAL-backed profile store: configs it
                                   already covers are not re-profiled; fresh
                                   records are appended (see docs/DURABILITY.md)
    --explore-cache <DIR>          durable WAL-backed exploration-result cache:
                                   a repeat invocation with identical inputs
                                   skips the DSE and returns the byte-identical
                                   guideline; fresh explorations are appended
    --checkpoint-dir <PATH>        write crash-safe training checkpoints into
                                   this directory while applying the guideline
    --checkpoint-every <N>         checkpoint every N completed epochs
                                   (requires --checkpoint-dir)  [default: 1]
    --resume                       resume from the newest valid checkpoint in
                                   --checkpoint-dir; cold-starts when none
                                   survives. A killed run resumed this way ends
                                   with a byte-identical report
    --adapt                        apply the guideline adaptively: watch drift
                                   against the estimate, re-explore, and switch
                                   guidelines mid-training
    --drift-threshold <FLOAT>      EWMA drift level that triggers adaptive
                                   re-exploration           [default: 0.75]
    --metrics-out <PATH>           write a metrics snapshot as JSON
    --trace-out <PATH>             write the event journal as Chrome trace JSON
                                   (open in Perfetto / chrome://tracing)
    --trace-summary                print span-tree rollups, the critical path,
                                   and the per-epoch phase-attribution table
    --flame-out <PATH>             write folded stacks for flamegraph.pl /
                                   inferno (one `track;span… weight` per line)
    --flame-weight <sim|wall>      folded-stack weighting    [default: sim]
    --audit-out <PATH>             write the explorer decision audit as JSON
    --verbose                      print the metrics table and phase breakdown
    -h, --help                     print this help

METRICS-DIFF:
    Compares CURRENT against BASELINE series-by-series and prints a
    regression table sorted by relative change. Exits 1 when any gated
    series (counters; non-wall gauges) moved more than the threshold
    [default: 10] percent.

SERVE-BENCH:
    Deterministic closed-loop load generator over the in-process
    multi-tenant NavService (see docs/SERVING.md): zipf-distributed
    synthetic tenants submit navigation requests in bursts; each burst
    drains as one plan → parallel-explore → commit wave. The
    request/response transcript is byte-identical at every --workers
    width.

    --tenants <N>                  synthetic tenant population  [default: 1000]
    --requests <N>                 total requests submitted     [default: 2000]
    --burst <N>                    submissions per wave drain   [default: 80]
    --zipf <FLOAT>                 tenant popularity exponent   [default: 1.1]
    --workers <N>                  worker width for the parallel exploration
                                   phase                        [default: 1]
    --queue-capacity <N>           admission queue bound        [default: 64]
    --tenant-budget <N>            per-tenant token-bucket capacity (tokens
                                   refill each wave)            [default: 8]
    --transcript-out <PATH>        write the deterministic transcript (one line
                                   per rejection and per response)
    --baseline-out <PATH>          write the counters-only deterministic
                                   baseline snapshot (the committed
                                   BENCH_serve.json gated in CI)
    plus --seed and --metrics-out as above

TRACE-DIFF:
    Aligns two Chrome traces (written by --trace-out) span-path by
    span-path on the sim clock and prints a regression table. Exits 1
    when any path's inclusive sim time grew more than the threshold
    [default: 10] percent, and 2 — refusing to gate — when either
    journal was truncated by ring eviction.
";

#[derive(Debug)]
struct Args {
    dataset: DatasetId,
    model: ModelKind,
    priority: Priority,
    platform: Platform,
    scale: f64,
    constraints: RuntimeConstraints,
    profile_samples: Option<usize>,
    explore_budget: Option<usize>,
    epochs: Option<usize>,
    seed: Option<u64>,
    fault_plan: Option<std::path::PathBuf>,
    profile_db: Option<std::path::PathBuf>,
    explore_cache: Option<std::path::PathBuf>,
    checkpoint_dir: Option<std::path::PathBuf>,
    checkpoint_every: Option<usize>,
    resume: bool,
    adapt: bool,
    drift_threshold: Option<f64>,
    metrics_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    trace_summary: bool,
    flame_out: Option<std::path::PathBuf>,
    flame_weight: Clock,
    audit_out: Option<std::path::PathBuf>,
    verbose: bool,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        dataset: DatasetId::Reddit2,
        model: ModelKind::Sage,
        priority: Priority::Balance,
        platform: Platform::default_rtx4090(),
        scale: 0.2,
        constraints: RuntimeConstraints::none(),
        profile_samples: None,
        explore_budget: None,
        epochs: None,
        seed: None,
        fault_plan: None,
        profile_db: None,
        explore_cache: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        adapt: false,
        drift_threshold: None,
        metrics_out: None,
        trace_out: None,
        trace_summary: false,
        flame_out: None,
        flame_weight: Clock::Sim,
        audit_out: None,
        verbose: false,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--dataset" => {
                args.dataset = match value("--dataset")?.to_uppercase().as_str() {
                    "AR" => DatasetId::OgbnArxiv,
                    "PR" => DatasetId::OgbnProducts,
                    "RD" => DatasetId::Reddit,
                    "RD2" => DatasetId::Reddit2,
                    other => return Err(format!("unknown dataset `{other}`")),
                };
            }
            "--model" => {
                args.model = match value("--model")?.to_lowercase().as_str() {
                    "gcn" => ModelKind::Gcn,
                    "sage" => ModelKind::Sage,
                    "gat" => ModelKind::Gat,
                    other => return Err(format!("unknown model `{other}`")),
                };
            }
            "--priority" => {
                args.priority = match value("--priority")?.to_lowercase().as_str() {
                    "bal" | "balance" => Priority::Balance,
                    "ex-tm" => Priority::ExTimeMemory,
                    "ex-ma" => Priority::ExMemoryAccuracy,
                    "ex-ta" => Priority::ExTimeAccuracy,
                    other => return Err(format!("unknown priority `{other}`")),
                };
            }
            "--platform" => {
                args.platform = match value("--platform")?.to_lowercase().as_str() {
                    "rtx4090" => Platform::default_rtx4090(),
                    "a100" => Platform::default_a100(),
                    "m90" => Platform::default_m90(),
                    other => return Err(format!("unknown platform `{other}`")),
                };
            }
            "--scale" => {
                args.scale = value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--max-time-ms" => {
                let ms: f64 = value("--max-time-ms")?
                    .parse()
                    .map_err(|e| format!("bad --max-time-ms: {e}"))?;
                args.constraints.max_time_s = Some(ms * 1e-3);
            }
            "--max-mem-mb" => {
                let mb: f64 =
                    value("--max-mem-mb")?.parse().map_err(|e| format!("bad --max-mem-mb: {e}"))?;
                args.constraints.max_mem_bytes = Some(mb * 1e6);
            }
            "--min-acc" => {
                let pct: f64 =
                    value("--min-acc")?.parse().map_err(|e| format!("bad --min-acc: {e}"))?;
                args.constraints.min_accuracy = Some(pct / 100.0);
            }
            "--profile-samples" => {
                args.profile_samples = Some(
                    value("--profile-samples")?
                        .parse()
                        .map_err(|e| format!("bad --profile-samples: {e}"))?,
                );
            }
            "--explore-budget" => {
                args.explore_budget = Some(
                    value("--explore-budget")?
                        .parse()
                        .map_err(|e| format!("bad --explore-budget: {e}"))?,
                );
            }
            "--epochs" => {
                args.epochs =
                    Some(value("--epochs")?.parse().map_err(|e| format!("bad --epochs: {e}"))?);
            }
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?);
            }
            "--fault-plan" => {
                args.fault_plan = Some(value("--fault-plan")?.into());
            }
            "--profile-db" => {
                args.profile_db = Some(value("--profile-db")?.into());
            }
            "--explore-cache" => {
                args.explore_cache = Some(value("--explore-cache")?.into());
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(value("--checkpoint-dir")?.into());
            }
            "--checkpoint-every" => {
                let n: usize = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-every: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be >= 1".into());
                }
                args.checkpoint_every = Some(n);
            }
            "--resume" => args.resume = true,
            "--adapt" => args.adapt = true,
            "--drift-threshold" => {
                let t: f64 = value("--drift-threshold")?
                    .parse()
                    .map_err(|e| format!("bad --drift-threshold: {e}"))?;
                if !(t.is_finite() && t > 0.0) {
                    return Err(format!("--drift-threshold {t} must be finite and > 0"));
                }
                args.drift_threshold = Some(t);
            }
            "--metrics-out" => {
                args.metrics_out = Some(value("--metrics-out")?.into());
            }
            "--trace-out" => {
                args.trace_out = Some(value("--trace-out")?.into());
            }
            "--trace-summary" => args.trace_summary = true,
            "--flame-out" => {
                args.flame_out = Some(value("--flame-out")?.into());
            }
            "--flame-weight" => {
                args.flame_weight = match value("--flame-weight")?.to_lowercase().as_str() {
                    "sim" => Clock::Sim,
                    "wall" => Clock::Wall,
                    other => return Err(format!("unknown --flame-weight `{other}`")),
                };
            }
            "--audit-out" => {
                args.audit_out = Some(value("--audit-out")?.into());
            }
            "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.checkpoint_dir.is_none() {
        if args.checkpoint_every.is_some() {
            return Err("--checkpoint-every requires --checkpoint-dir".into());
        }
        if args.resume {
            return Err("--resume requires --checkpoint-dir".into());
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("metrics-diff") {
        return match run_metrics_diff(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("trace-diff") {
        return match run_trace_diff(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("serve-bench") {
        return match run_serve_bench(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(argv.into_iter()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `gnnavigate metrics-diff <baseline.json> <current.json> [--threshold pct]`:
/// the CI perf gate. Exits non-zero when a gated series regressed.
fn run_metrics_diff(argv: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 10.0_f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("missing value for --threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown metrics-diff flag `{flag}`").into());
            }
            path => paths.push(path),
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        return Err("metrics-diff expects exactly two snapshot paths (try --help)".into());
    };
    let load = |path: &str| -> Result<Snapshot, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Snapshot::from_json(&text).map_err(|e| format!("{path}: invalid snapshot: {e}").into())
    };
    let report = diff_snapshots(&load(baseline_path)?, &load(current_path)?, threshold);
    print!("{}", report.to_table());
    Ok(if report.has_breach() { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

/// `gnnavigate trace-diff <baseline.json> <current.json> [--threshold pct]`:
/// the CI trace gate. Exit 0 clean, 1 on a gated sim-time regression,
/// 2 (refusing to gate) when either journal was truncated.
fn run_trace_diff(argv: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 10.0_f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("missing value for --threshold")?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown trace-diff flag `{flag}`").into());
            }
            path => paths.push(path),
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        return Err("trace-diff expects exactly two trace paths (try --help)".into());
    };
    let load =
        |path: &str| -> Result<gnnavigator::obs::JournalSnapshot, Box<dyn std::error::Error>> {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            gnnavigator::obs::tree::import_chrome_trace(&text)
                .map_err(|e| format!("{path}: invalid trace: {e}").into())
        };
    let report = gnnavigator::obs::tracediff::diff_traces(
        &load(baseline_path)?,
        &load(current_path)?,
        threshold,
    );
    print!("{}", report.to_table());
    Ok(if report.truncated() {
        ExitCode::from(2)
    } else if report.has_breach() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `gnnavigate serve-bench [flags]`: the deterministic multi-tenant
/// load generator. Everything printed to stdout (and written to
/// `--transcript-out` / `--baseline-out`) is a pure function of the
/// flags — worker width never changes a byte.
fn run_serve_bench(argv: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use gnnavigator::serve::{run_load, LoadGenOptions, NavService, ServeOptions};

    let mut load = LoadGenOptions::default();
    let mut serve = ServeOptions::default();
    let mut workers = 1usize;
    let mut transcript_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut baseline_out: Option<std::path::PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--tenants" => {
                load.tenants =
                    value("--tenants")?.parse().map_err(|e| format!("bad --tenants: {e}"))?;
            }
            "--requests" => {
                load.requests =
                    value("--requests")?.parse().map_err(|e| format!("bad --requests: {e}"))?;
            }
            "--burst" => {
                load.burst = value("--burst")?.parse().map_err(|e| format!("bad --burst: {e}"))?;
            }
            "--zipf" => {
                load.zipf_exponent =
                    value("--zipf")?.parse().map_err(|e| format!("bad --zipf: {e}"))?;
            }
            "--workers" => {
                workers = value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--seed" => {
                let seed: u64 = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                load.seed = seed;
                serve.seed = seed;
            }
            "--queue-capacity" => {
                serve.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity: {e}"))?;
            }
            "--tenant-budget" => {
                let budget: u32 = value("--tenant-budget")?
                    .parse()
                    .map_err(|e| format!("bad --tenant-budget: {e}"))?;
                serve.tenant_budget = budget;
                serve.tenant_refill = budget;
            }
            "--transcript-out" => {
                transcript_out = Some(value("--transcript-out")?.into());
            }
            "--metrics-out" => {
                metrics_out = Some(value("--metrics-out")?.into());
            }
            "--baseline-out" => {
                baseline_out = Some(value("--baseline-out")?.into());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown serve-bench flag `{other}`").into()),
        }
    }

    let metrics = gnnavigator::obs::global();
    metrics.enable(true);
    metrics.reset();

    let mut service = NavService::new(serve);
    let summary =
        gnnavigator::par::with_thread_limit(workers.max(1), || run_load(&mut service, &load))?;

    if let Some(path) = &transcript_out {
        std::fs::write(path, &summary.transcript)
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let snapshot = metrics.snapshot();
    if let Some(path) = &metrics_out {
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if let Some(path) = &baseline_out {
        // Counters only: counters are wave sums, identical at every
        // worker width; gauges (last-write) and histograms (wall
        // time) are not, so the committed baseline drops them.
        let mut deterministic =
            snapshot.filtered(|name| name.starts_with("serve.") || name.starts_with("explorer."));
        deterministic.gauges.clear();
        deterministic.histograms.clear();
        std::fs::write(path, deterministic.to_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }

    // The stdout summary is deliberately wall-time free: CI byte-diffs
    // it across worker widths alongside the transcript.
    println!(
        "serve-bench: tenants={} requests={} burst={} zipf={:?} seed={:#x}",
        load.tenants, load.requests, load.burst, load.zipf_exponent, load.seed
    );
    println!(
        "  submitted={} admitted={} rejected={} responses={} waves={}",
        summary.submitted, summary.admitted, summary.rejected, summary.responses, summary.waves
    );
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    println!(
        "  explorations={} coalesced={} cache_hits={} neighbor_served={} degraded={}",
        counter("serve.explorations"),
        counter("serve.requests.coalesced"),
        counter("serve.cache.hits"),
        counter("serve.neighbor.served"),
        counter("serve.requests.degraded"),
    );
    println!(
        "  pool: hits={} misses={} evictions={}",
        counter("serve.pool.hits"),
        counter("serve.pool.misses"),
        counter("serve.pool.evictions"),
    );
    Ok(ExitCode::SUCCESS)
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let metrics = gnnavigator::obs::global();
    let tracing = args.trace_out.is_some() || args.trace_summary || args.flame_out.is_some();
    if args.metrics_out.is_some() || args.audit_out.is_some() || args.verbose || tracing {
        metrics.enable(true);
    }
    if tracing {
        metrics.journal().enable(true);
    }
    let dataset = Dataset::load_scaled(args.dataset, args.scale)?;
    println!(
        "dataset {} ({} nodes) | model {} | platform {} | priority {}",
        args.dataset,
        dataset.num_nodes(),
        args.model,
        args.platform.device.name,
        args.priority
    );
    let mut options = NavigatorOptions::default();
    if let Some(n) = args.profile_samples {
        options.profile_samples = n;
    }
    if let Some(n) = args.explore_budget {
        options.explore_budget = n;
    }
    if let Some(n) = args.epochs {
        options.apply_exec.epochs = n;
    }
    if let Some(s) = args.seed {
        options.seed = s;
    }
    if let Some(path) = &args.fault_plan {
        let plan = gnnavigator::faults::FaultPlan::load(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "fault plan loaded from {} (seed {}, {} spec(s))",
            path.display(),
            plan.seed,
            plan.specs.len()
        );
        options.profile_exec.fault_plan = Some(plan.clone());
        options.apply_exec.fault_plan = Some(plan);
    }
    let mut nav = Navigator::new(dataset, args.platform, args.model).with_options(options);
    if let Some(path) = &args.profile_db {
        let store = gnnavigator::estimator::ProfileStore::open(path)?;
        let rec = store.recovery();
        if !rec.is_clean() {
            eprintln!(
                "warning: profile db {} recovered: {} torn record(s) truncated, \
                 {} record(s) failed CRC and were dropped",
                path.display(),
                rec.torn_truncated,
                rec.crc_failures
            );
        }
        if store.undecodable() > 0 {
            eprintln!(
                "warning: profile db {} holds {} undecodable record(s) \
                 (foreign version?); they are ignored",
                path.display(),
                store.undecodable()
            );
        }
        eprintln!("profile db {}: {} record(s) loaded", path.display(), store.len());
        nav = nav.with_profile_store(store);
    }
    if let Some(dir) = &args.explore_cache {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let cache = gnnavigator::ExploreCache::open(dir.join("explore.wal"))?;
        let rec = cache.recovery();
        if !rec.is_clean() {
            eprintln!(
                "warning: explore cache {} recovered: {} torn result(s) truncated, \
                 {} result(s) failed CRC and were dropped",
                dir.display(),
                rec.torn_truncated,
                rec.crc_failures
            );
        }
        if cache.undecodable() > 0 {
            eprintln!(
                "warning: explore cache {} holds {} undecodable result(s) \
                 (foreign version?); they are ignored",
                dir.display(),
                cache.undecodable()
            );
        }
        eprintln!("explore cache {}: {} result(s) loaded", dir.display(), cache.len());
        nav = nav.with_explore_cache(cache);
    }
    eprintln!("profiling design space + fitting gray-box estimator...");
    nav.prepare()?;
    if let Some(store) = nav.profile_store() {
        eprintln!("profile db now holds {} record(s)", store.len());
    }
    eprintln!("exploring guidelines...");
    let result = nav.generate_guideline(args.priority, &args.constraints)?;
    if let Some(cache) = nav.explore_cache() {
        if cache.hits() > 0 {
            eprintln!("explore cache hit: exploration skipped, cached result returned");
        } else {
            eprintln!("explore cache miss: fresh exploration appended");
        }
    }
    println!("\nguideline: {}", result.guideline.config.summary());
    println!(
        "explored {} candidates ({} rejected by constraints, {} subtrees pruned)",
        result.stats.evaluated, result.stats.rejected, result.stats.pruned_subtrees
    );
    if let Some(reason) = &result.fallback {
        eprintln!("warning: {reason}");
    }

    let durability = args.checkpoint_dir.as_ref().map(|dir| {
        let d = gnnavigator::runtime::DurabilityOptions {
            dir: dir.clone(),
            every: args.checkpoint_every.unwrap_or(1),
            resume: args.resume,
        };
        eprintln!(
            "durability: checkpointing into {} every {} epoch(s){}",
            d.dir.display(),
            d.every,
            if d.resume { ", resuming from the newest valid checkpoint" } else { "" }
        );
        d
    });

    let mut adapt_audit = Vec::new();
    let guided = if args.adapt {
        let mut adapt = gnnavigator::adapt::AdaptOptions::default();
        if let Some(t) = args.drift_threshold {
            adapt.drift.threshold = t;
        }
        let outcome = match &durability {
            Some(d) => nav.apply_adaptive_durable(&result, &args.constraints, adapt, d)?,
            None => nav.apply_adaptive(&result, &args.constraints, adapt)?,
        };
        if outcome.switches.is_empty() {
            if outcome.reexplorations == 0 {
                eprintln!(
                    "adaptive: no drift past the threshold over {} epoch(s); guideline kept",
                    outcome.drift_scores.len()
                );
            } else {
                eprintln!(
                    "adaptive: drift triggered {} re-exploration(s) over {} epoch(s), \
                     but no candidate beat the current guideline; guideline kept",
                    outcome.reexplorations,
                    outcome.drift_scores.len()
                );
            }
        } else {
            for s in &outcome.switches {
                println!(
                    "adaptive switch after epoch {}: {} -> {} \
                     (drift EWMA {:.3}, migration {:.3}s sim)",
                    s.epoch,
                    s.from.summary(),
                    s.to.summary(),
                    s.drift_ewma,
                    s.migration_sim_s
                );
            }
        }
        adapt_audit = outcome.audit;
        outcome.report
    } else {
        match &durability {
            Some(d) => nav.apply_durable(&result.guideline, d)?,
            None => nav.apply(&result.guideline)?,
        }
    };
    let rec = &guided.recovery;
    if !rec.is_clean() {
        eprintln!(
            "recovery: {} fault(s) injected, {} retrie(s), {} degradation step(s), \
             {} NaN step(s) skipped, {} LR halving(s)",
            rec.faults_injected,
            rec.retries,
            rec.degradations.len(),
            rec.nan_steps_skipped,
            rec.lr_halvings
        );
        for step in &rec.degradations {
            eprintln!("  degraded: {step:?}");
        }
    }
    let pyg = nav.run_template(Template::Pyg)?;
    println!("\n              {:>12} {:>10} {:>9}", "time/epoch", "memory", "accuracy");
    for (name, perf) in [("guideline", guided.perf), ("PyG", pyg.perf)] {
        println!(
            "{name:<12} {:>12} {:>8.1}MB {:>8.2}%",
            perf.epoch_time.to_string(),
            perf.peak_mem_mb(),
            perf.accuracy * 100.0
        );
    }
    println!(
        "\nspeedup {:.2}x | memory {:+.1}% | accuracy {:+.2}% vs PyG",
        guided.perf.speedup_vs(&pyg.perf),
        guided.perf.mem_delta_vs(&pyg.perf) * 100.0,
        (guided.perf.accuracy - pyg.perf.accuracy) * 100.0
    );

    if args.verbose {
        let phases = &guided.perf.phases;
        let total = phases.total().as_secs().max(f64::MIN_POSITIVE);
        println!("\nguideline epoch phase breakdown (simulated):");
        for (name, d) in [
            ("sample", phases.sample),
            ("transfer", phases.transfer),
            ("replace", phases.replace),
            ("compute", phases.compute),
        ] {
            println!("  {name:<10} {:>12} {:>5.1}%", d.to_string(), d.as_secs() / total * 100.0);
        }
        println!("\nmetrics:\n{}", metrics.snapshot().to_table());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics.snapshot().to_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("metrics written to {}", path.display());
    }
    if tracing {
        let journal = metrics.journal().snapshot();
        if journal.dropped > 0 {
            eprintln!(
                "warning: journal ring dropped {} event(s); the exported trace is \
                 truncated and trace-diff will refuse to gate on it",
                journal.dropped
            );
        }
        if let Some(path) = &args.trace_out {
            std::fs::write(path, journal.to_chrome_trace())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!(
                "chrome trace written to {} (open in https://ui.perfetto.dev)",
                path.display()
            );
        }
        if let Some(path) = &args.flame_out {
            std::fs::write(
                path,
                gnnavigator::obs::flame::folded_stacks(&journal, args.flame_weight),
            )
            .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!(
                "folded stacks ({}-weighted) written to {}",
                args.flame_weight.label(),
                path.display()
            );
        }
        if args.trace_summary {
            println!("\n{}", gnnavigator::obs::critical::render_summary(&journal, 10));
        }
    }
    if let Some(path) = &args.audit_out {
        let mut audit = result.audit.clone();
        audit.extend(adapt_audit);
        std::fs::write(path, gnnavigator::explorer::audit_to_json(&audit))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("decision audit ({} records) written to {}", audit.len(), path.display());
    }
    Ok(())
}
