//! `gnnavigate` — command-line front end for the navigator.
//!
//! ```sh
//! gnnavigate --dataset RD2 --model sage --priority ex-tm --scale 0.2
//! gnnavigate --dataset PR --platform m90 --max-mem-mb 20 --min-acc 75
//! ```
//!
//! Runs the full pipeline (profile → fit → explore → apply) and prints
//! the guideline next to the PyG baseline.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::{Navigator, Priority, RuntimeConstraints, Template};
use std::process::ExitCode;

const USAGE: &str = "\
gnnavigate — adaptive GNN training guideline exploration

USAGE:
    gnnavigate [OPTIONS]

OPTIONS:
    --dataset <AR|PR|RD|RD2>       dataset stand-in        [default: RD2]
    --model <gcn|sage|gat>         GNN architecture        [default: sage]
    --priority <bal|ex-tm|ex-ma|ex-ta>  explore priority   [default: bal]
    --platform <rtx4090|a100|m90>  hardware platform       [default: rtx4090]
    --scale <FLOAT>                dataset scale factor    [default: 0.2]
    --max-time-ms <FLOAT>          epoch-time constraint
    --max-mem-mb <FLOAT>           device-memory constraint
    --min-acc <PERCENT>            accuracy constraint
    --metrics-out <PATH>           write a metrics snapshot as JSON
    --verbose                      print the metrics table and phase breakdown
    -h, --help                     print this help
";

#[derive(Debug)]
struct Args {
    dataset: DatasetId,
    model: ModelKind,
    priority: Priority,
    platform: Platform,
    scale: f64,
    constraints: RuntimeConstraints,
    metrics_out: Option<std::path::PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: DatasetId::Reddit2,
        model: ModelKind::Sage,
        priority: Priority::Balance,
        platform: Platform::default_rtx4090(),
        scale: 0.2,
        constraints: RuntimeConstraints::none(),
        metrics_out: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--dataset" => {
                args.dataset = match value("--dataset")?.to_uppercase().as_str() {
                    "AR" => DatasetId::OgbnArxiv,
                    "PR" => DatasetId::OgbnProducts,
                    "RD" => DatasetId::Reddit,
                    "RD2" => DatasetId::Reddit2,
                    other => return Err(format!("unknown dataset `{other}`")),
                };
            }
            "--model" => {
                args.model = match value("--model")?.to_lowercase().as_str() {
                    "gcn" => ModelKind::Gcn,
                    "sage" => ModelKind::Sage,
                    "gat" => ModelKind::Gat,
                    other => return Err(format!("unknown model `{other}`")),
                };
            }
            "--priority" => {
                args.priority = match value("--priority")?.to_lowercase().as_str() {
                    "bal" | "balance" => Priority::Balance,
                    "ex-tm" => Priority::ExTimeMemory,
                    "ex-ma" => Priority::ExMemoryAccuracy,
                    "ex-ta" => Priority::ExTimeAccuracy,
                    other => return Err(format!("unknown priority `{other}`")),
                };
            }
            "--platform" => {
                args.platform = match value("--platform")?.to_lowercase().as_str() {
                    "rtx4090" => Platform::default_rtx4090(),
                    "a100" => Platform::default_a100(),
                    "m90" => Platform::default_m90(),
                    other => return Err(format!("unknown platform `{other}`")),
                };
            }
            "--scale" => {
                args.scale = value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--max-time-ms" => {
                let ms: f64 = value("--max-time-ms")?
                    .parse()
                    .map_err(|e| format!("bad --max-time-ms: {e}"))?;
                args.constraints.max_time_s = Some(ms * 1e-3);
            }
            "--max-mem-mb" => {
                let mb: f64 =
                    value("--max-mem-mb")?.parse().map_err(|e| format!("bad --max-mem-mb: {e}"))?;
                args.constraints.max_mem_bytes = Some(mb * 1e6);
            }
            "--min-acc" => {
                let pct: f64 =
                    value("--min-acc")?.parse().map_err(|e| format!("bad --min-acc: {e}"))?;
                args.constraints.min_accuracy = Some(pct / 100.0);
            }
            "--metrics-out" => {
                args.metrics_out = Some(value("--metrics-out")?.into());
            }
            "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let metrics = gnnavigator::obs::global();
    if args.metrics_out.is_some() || args.verbose {
        metrics.enable(true);
    }
    let dataset = Dataset::load_scaled(args.dataset, args.scale)?;
    println!(
        "dataset {} ({} nodes) | model {} | platform {} | priority {}",
        args.dataset,
        dataset.num_nodes(),
        args.model,
        args.platform.device.name,
        args.priority
    );
    let mut nav = Navigator::new(dataset, args.platform, args.model);
    eprintln!("profiling design space + fitting gray-box estimator...");
    nav.prepare()?;
    eprintln!("exploring guidelines...");
    let result = nav.generate_guideline(args.priority, &args.constraints)?;
    println!("\nguideline: {}", result.guideline.config.summary());
    println!(
        "explored {} candidates ({} rejected by constraints, {} subtrees pruned)",
        result.stats.evaluated, result.stats.rejected, result.stats.pruned_subtrees
    );

    let guided = nav.apply(&result.guideline)?;
    let pyg = nav.run_template(Template::Pyg)?;
    println!("\n              {:>12} {:>10} {:>9}", "time/epoch", "memory", "accuracy");
    for (name, perf) in [("guideline", guided.perf), ("PyG", pyg.perf)] {
        println!(
            "{name:<12} {:>12} {:>8.1}MB {:>8.2}%",
            perf.epoch_time.to_string(),
            perf.peak_mem_mb(),
            perf.accuracy * 100.0
        );
    }
    println!(
        "\nspeedup {:.2}x | memory {:+.1}% | accuracy {:+.2}% vs PyG",
        guided.perf.speedup_vs(&pyg.perf),
        guided.perf.mem_delta_vs(&pyg.perf) * 100.0,
        (guided.perf.accuracy - pyg.perf.accuracy) * 100.0
    );

    if args.verbose {
        let phases = &guided.perf.phases;
        let total = phases.total().as_secs().max(f64::MIN_POSITIVE);
        println!("\nguideline epoch phase breakdown (simulated):");
        for (name, d) in [
            ("sample", phases.sample),
            ("transfer", phases.transfer),
            ("replace", phases.replace),
            ("compute", phases.compute),
        ] {
            println!("  {name:<10} {:>12} {:>5.1}%", d.to_string(), d.as_secs() / total * 100.0);
        }
        println!("\nmetrics:\n{}", metrics.snapshot().to_table());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics.snapshot().to_json())?;
        eprintln!("metrics written to {}", path.display());
    }
    Ok(())
}
