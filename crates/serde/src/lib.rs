//! Offline subset of `serde`.
//!
//! The workspace only uses serde as a *compile-time capability
//! marker* (`#[derive(Serialize, Deserialize)]` plus trait bounds like
//! `T: serde::Serialize`); nothing actually serializes through serde —
//! JSON export is hand-rolled in `gnnav-obs` and the report writer.
//! These marker traits and the derives in `serde_derive` are exactly
//! enough to compile that surface without network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
