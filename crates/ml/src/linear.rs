//! Ridge (L2-regularized linear) regression via normal equations.

use crate::dataset::Table;
use crate::regressor::Regressor;
use crate::MlError;

/// Ridge regression: solves `(XᵀX + αI) w = Xᵀy` with a Cholesky
/// factorization. Features are standardized internally so `alpha` has
/// a consistent meaning across scales.
///
/// This is the "white-box-friendly" learner the gray-box estimator
/// uses for coefficient functions whose shape is analytically known
/// (after a log/linear feature transform).
///
/// # Example
///
/// ```
/// use gnnav_ml::{RidgeRegressor, Regressor, Table};
///
/// # fn main() -> Result<(), gnnav_ml::MlError> {
/// let mut t = Table::with_dims(1);
/// for i in 0..20 {
///     t.push_row(&[i as f64], 3.0 * i as f64 + 1.0)?;
/// }
/// let mut model = RidgeRegressor::new(1e-6);
/// model.fit(&t)?;
/// assert!((model.predict(&[10.0]) - 31.0).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RidgeRegressor {
    alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    means: Vec<f64>,
    stds: Vec<f64>,
    fitted: bool,
}

impl RidgeRegressor {
    /// Creates an unfitted ridge model with regularization `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and >= 0");
        RidgeRegressor {
            alpha,
            weights: Vec::new(),
            intercept: 0.0,
            means: Vec::new(),
            stds: Vec::new(),
            fitted: false,
        }
    }

    /// The fitted weights in standardized feature space.
    ///
    /// # Panics
    ///
    /// Panics if the model has not been fitted.
    pub fn weights(&self) -> &[f64] {
        assert!(self.fitted, "model not fitted");
        &self.weights
    }
}

impl Regressor for RidgeRegressor {
    fn fit(&mut self, table: &Table) -> Result<(), MlError> {
        if table.is_empty() {
            return Err(MlError::EmptyTable);
        }
        let n = table.num_rows();
        let d = table.num_features();
        // Standardize features.
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in means.iter_mut().zip(table.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        for i in 0..n {
            for (j, &v) in table.row(i).iter().enumerate() {
                stds[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave unscaled
            }
        }
        let y_mean = table.target_mean();

        // Normal equations in standardized space.
        let mut xtx = vec![0.0f64; d * d];
        let mut xty = vec![0.0f64; d];
        let mut z = vec![0.0f64; d];
        for i in 0..n {
            for (j, &v) in table.row(i).iter().enumerate() {
                z[j] = (v - means[j]) / stds[j];
            }
            let yc = table.target(i) - y_mean;
            for a in 0..d {
                xty[a] += z[a] * yc;
                for b in a..d {
                    xtx[a * d + b] += z[a] * z[b];
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                xtx[a * d + b] = xtx[b * d + a];
            }
            xtx[a * d + a] += self.alpha.max(1e-10) * n as f64;
        }
        let weights = cholesky_solve(&xtx, &xty, d)?;
        self.weights = weights;
        self.intercept = y_mean;
        self.means = means;
        self.stds = stds;
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(self.fitted, "model not fitted");
        assert_eq!(features.len(), self.weights.len(), "feature dim mismatch");
        let mut acc = self.intercept;
        for ((&w, &v), (&m, &s)) in
            self.weights.iter().zip(features).zip(self.means.iter().zip(&self.stds))
        {
            // Extrapolation guard: a near-constant training column can
            // place an out-of-distribution input hundreds of standard
            // deviations out; clamping the standardized value bounds
            // the damage without affecting in-distribution predictions.
            let z = ((v - m) / s).clamp(-Z_CLAMP, Z_CLAMP);
            acc += w * z;
        }
        acc
    }
}

/// Largest standardized feature magnitude the ridge will extrapolate
/// to (see the guard in `predict`).
const Z_CLAMP: f64 = 8.0;

/// Solves the symmetric positive-definite system `A x = b` (row-major
/// `d x d`) via Cholesky.
fn cholesky_solve(a: &[f64], b: &[f64], d: usize) -> Result<Vec<f64>, MlError> {
    // Factor A = L Lᵀ.
    let mut l = vec![0.0f64; d * d];
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[i * d + j];
            for k in 0..j {
                sum -= l[i * d + k] * l[j * d + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(MlError::SingularSystem);
                }
                l[i * d + j] = sum.sqrt();
            } else {
                l[i * d + j] = sum / l[j * d + j];
            }
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0f64; d];
    for i in 0..d {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * d + k] * z[k];
        }
        z[i] = sum / l[i * d + i];
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0f64; d];
    for i in (0..d).rev() {
        let mut sum = z[i];
        for k in (i + 1)..d {
            sum -= l[k * d + i] * x[k];
        }
        x[i] = sum / l[i * d + i];
    }
    Ok(x)
}

/// Applies `ln(1 + v)` to every feature (and optionally the target) —
/// the transform that turns the estimator's multiplicative analytic
/// skeletons (Eq. 12) into linear-regression problems.
pub fn log1p_features(features: &[f64]) -> Vec<f64> {
    features.iter().map(|&v| (1.0 + v.max(0.0)).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_linear_relation() {
        let mut t = Table::with_dims(2);
        for i in 0..50 {
            let a = i as f64;
            let b = (i % 7) as f64;
            t.push_row(&[a, b], 2.0 * a - 5.0 * b + 3.0).expect("ok");
        }
        let mut m = RidgeRegressor::new(1e-8);
        m.fit(&t).expect("fit");
        assert!((m.predict(&[10.0, 3.0]) - (20.0 - 15.0 + 3.0)).abs() < 1e-3);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let mut t = Table::with_dims(1);
        for i in 0..20 {
            t.push_row(&[i as f64], 4.0 * i as f64).expect("ok");
        }
        let mut small = RidgeRegressor::new(1e-8);
        small.fit(&t).expect("fit");
        let mut big = RidgeRegressor::new(100.0);
        big.fit(&t).expect("fit");
        assert!(big.weights()[0].abs() < small.weights()[0].abs());
    }

    #[test]
    fn handles_constant_column() {
        let mut t = Table::with_dims(2);
        for i in 0..10 {
            t.push_row(&[i as f64, 1.0], i as f64).expect("ok");
        }
        let mut m = RidgeRegressor::new(1e-6);
        m.fit(&t).expect("constant column must not break the solver");
        assert!((m.predict(&[5.0, 1.0]) - 5.0).abs() < 0.1);
    }

    #[test]
    fn empty_table_rejected() {
        let mut m = RidgeRegressor::new(1.0);
        assert!(matches!(m.fit(&Table::with_dims(2)), Err(MlError::EmptyTable)));
    }

    #[test]
    #[should_panic(expected = "model not fitted")]
    fn predict_before_fit_panics() {
        let m = RidgeRegressor::new(1.0);
        let _ = m.predict(&[1.0]);
    }

    #[test]
    fn log1p_transform() {
        let f = log1p_features(&[0.0, std::f64::consts::E - 1.0, -5.0]);
        assert!((f[0]).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
        assert_eq!(f[2], 0.0, "negative clamped to ln(1)");
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 8.0];
        let x = cholesky_solve(&a, &b, 2).expect("solve");
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = vec![0.0, 0.0, 0.0, 0.0];
        assert!(matches!(cholesky_solve(&a, &[1.0, 1.0], 2), Err(MlError::SingularSystem)));
    }
}
