//! Train/test splitting utilities.

use crate::dataset::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `table` into `(train, test)` with `test_fraction` of rows in
/// the test set, shuffled with `seed`.
///
/// # Panics
///
/// Panics if `test_fraction` is not in `(0, 1)`.
pub fn train_test_split(table: &Table, test_fraction: f64, seed: u64) -> (Table, Table) {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0, 1)");
    let n = table.num_rows();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_test = n_test.clamp(1, n.saturating_sub(1).max(1));
    let (test_idx, train_idx) = indices.split_at(n_test);
    (table.select_rows(train_idx), table.select_rows(test_idx))
}

/// Yields `k` disjoint `(train_indices, test_indices)` folds over
/// `num_rows` rows.
///
/// # Panics
///
/// Panics if `k < 2` or `k > num_rows`.
pub fn k_fold_indices(num_rows: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k must be >= 2");
    assert!(k <= num_rows, "k must not exceed the number of rows");
    let mut indices: Vec<usize> = (0..num_rows).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    let base = num_rows / k;
    let extra = num_rows % k;
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test: Vec<usize> = indices[start..start + len].to_vec();
        let train: Vec<usize> =
            indices[..start].iter().chain(&indices[start + len..]).copied().collect();
        folds.push((train, test));
        start += len;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Table {
        let mut t = Table::with_dims(1);
        for i in 0..n {
            t.push_row(&[i as f64], i as f64).expect("ok");
        }
        t
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(&table(100), 0.2, 1);
        assert_eq!(test.num_rows(), 20);
        assert_eq!(train.num_rows(), 80);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(&table(50), 0.3, 2);
        let mut all: Vec<f64> = (0..train.num_rows())
            .map(|i| train.target(i))
            .chain((0..test.num_rows()).map(|i| test.target(i)))
            .collect();
        all.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn split_deterministic() {
        let (a, _) = train_test_split(&table(30), 0.25, 7);
        let (b, _) = train_test_split(&table(30), 0.25, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn bad_fraction_rejected() {
        let _ = train_test_split(&table(10), 1.5, 1);
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let folds = k_fold_indices(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..23).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
        }
    }

    #[test]
    #[should_panic(expected = "k must be >= 2")]
    fn k_fold_validates_k() {
        let _ = k_fold_indices(10, 1, 0);
    }
}
