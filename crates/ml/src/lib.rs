//! Black-box regressors for GNNavigator's gray-box estimator.
//!
//! The paper's performance model (Eq. 4–12) has analytic skeletons
//! whose coefficient functions (`f_sample`, `f_transfer`, `f_compute`,
//! `f_replace`, `f_overlapping`, `f_accuracy`) are "estimated using a
//! pre-trained black-box model". This crate provides those learners,
//! implemented from scratch:
//!
//! - [`RidgeRegressor`] — L2 linear regression (normal equations +
//!   Cholesky), the right learner once a log transform linearizes an
//!   analytic skeleton.
//! - [`DecisionTreeRegressor`] — CART, the paper's pure-black-box
//!   baseline in Fig. 5.
//! - [`RandomForestRegressor`] — bagged CART for the noisy accuracy
//!   response.
//! - [`KnnRegressor`] — assumption-free baseline.
//!
//! Plus [`Table`] data handling, [`metrics`] (R², MSE, MAE — the
//! paper's Tab. 2 metrics), and [`split`] utilities.

pub mod dataset;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod regressor;
pub mod split;
pub mod tree;

pub use dataset::Table;
pub use forest::{ForestParams, RandomForestRegressor};
pub use knn::KnnRegressor;
pub use linear::{log1p_features, RidgeRegressor};
pub use metrics::{mae, mse, r2_score};
pub use regressor::Regressor;
pub use split::{k_fold_indices, train_test_split};
pub use tree::{DecisionTreeRegressor, TreeParams};

use std::error::Error;
use std::fmt;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The training table had no rows.
    EmptyTable,
    /// A feature vector did not match the table width.
    DimensionMismatch {
        /// Expected width.
        expected: usize,
        /// Provided width.
        got: usize,
    },
    /// A value was NaN or infinite.
    NonFinite,
    /// The normal-equation system was singular (degenerate features
    /// with zero regularization).
    SingularSystem,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTable => write!(f, "training table is empty"),
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "feature dimension mismatch: expected {expected}, got {got}")
            }
            MlError::NonFinite => write!(f, "non-finite value in training data"),
            MlError::SingularSystem => write!(f, "normal-equation system is singular"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impls() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<MlError>();
        assert!(MlError::EmptyTable.to_string().contains("empty"));
    }

    #[test]
    fn regressors_share_the_trait_object_interface() {
        let mut table = Table::with_dims(1);
        for i in 0..30 {
            table.push_row(&[i as f64], 2.0 * i as f64).expect("ok");
        }
        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(RidgeRegressor::new(1e-6)),
            Box::new(DecisionTreeRegressor::new(TreeParams::default())),
            Box::new(RandomForestRegressor::new(ForestParams::default())),
            Box::new(KnnRegressor::new(3)),
        ];
        for m in &mut models {
            m.fit(&table).expect("fit");
            let p = m.predict(&[10.0]);
            assert!((p - 20.0).abs() < 8.0, "{m:?} predicted {p}");
            assert_eq!(m.predict_table(&table).len(), 30);
        }
    }
}
