//! Random-forest regression: bagged CART trees with feature
//! subsampling.

use crate::dataset::Table;
use crate::regressor::Regressor;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::MlError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters of a [`RandomForestRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree CART parameters.
    pub tree: TreeParams,
    /// Fraction of features each tree sees (rounded up, at least 1).
    pub feature_fraction: f64,
    /// RNG seed for bootstrap and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { num_trees: 30, tree: TreeParams::default(), feature_fraction: 0.7, seed: 0 }
    }
}

/// A bagging ensemble of [`DecisionTreeRegressor`]s; prediction is the
/// mean over trees. This is the black-box learner the gray-box
/// estimator uses for the hard-to-analyze coefficient functions
/// (notably the accuracy response, Eq. 11).
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    params: ForestParams,
    trees: Vec<(Vec<usize>, DecisionTreeRegressor)>,
    num_features: usize,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest.
    ///
    /// # Panics
    ///
    /// Panics if `num_trees == 0` or `feature_fraction` is not in
    /// `(0, 1]`.
    pub fn new(params: ForestParams) -> Self {
        assert!(params.num_trees > 0, "at least one tree required");
        assert!(
            params.feature_fraction > 0.0 && params.feature_fraction <= 1.0,
            "feature_fraction must be in (0, 1]"
        );
        RandomForestRegressor { params, trees: Vec::new(), num_features: 0 }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts the target together with the ensemble's standard
    /// deviation — a cheap uncertainty signal (BOOM-Explorer-style
    /// surrogate searches use exactly this to trade exploration
    /// against exploitation).
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted or `features` has the wrong
    /// width.
    pub fn predict_with_std(&self, features: &[f64]) -> (f64, f64) {
        assert!(!self.trees.is_empty(), "model not fitted");
        assert_eq!(features.len(), self.num_features, "feature dim mismatch");
        let mut proj = Vec::new();
        let preds: Vec<f64> = self
            .trees
            .iter()
            .map(|(cols, tree)| {
                proj.clear();
                proj.extend(cols.iter().map(|&c| features[c]));
                tree.predict(&proj)
            })
            .collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, table: &Table) -> Result<(), MlError> {
        if table.is_empty() {
            return Err(MlError::EmptyTable);
        }
        let n = table.num_rows();
        let d = table.num_features();
        let k = ((d as f64 * self.params.feature_fraction).ceil() as usize).clamp(1, d);
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.trees.clear();
        self.num_features = d;
        for _ in 0..self.params.num_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Subsample features.
            let mut cols: Vec<usize> = (0..d).collect();
            for i in (1..cols.len()).rev() {
                cols.swap(i, rng.gen_range(0..=i));
            }
            cols.truncate(k);
            cols.sort_unstable();
            let sub = table.select_rows(&rows).select_columns(&cols);
            let mut tree = DecisionTreeRegressor::new(self.params.tree);
            tree.fit(&sub)?;
            self.trees.push((cols, tree));
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "model not fitted");
        assert_eq!(features.len(), self.num_features, "feature dim mismatch");
        let mut acc = 0.0;
        let mut proj = Vec::new();
        for (cols, tree) in &self.trees {
            proj.clear();
            proj.extend(cols.iter().map(|&c| features[c]));
            acc += tree.predict(&proj);
        }
        acc / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn noisy_table(seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Table::with_dims(3);
        for _ in 0..300 {
            let a: f64 = rng.gen_range(0.0..10.0);
            let b: f64 = rng.gen_range(0.0..10.0);
            let noise: f64 = rng.gen_range(-0.5..0.5);
            let junk: f64 = rng.gen_range(0.0..1.0);
            t.push_row(&[a, b, junk], a * 2.0 + b.sin() * 3.0 + noise).expect("ok");
        }
        t
    }

    #[test]
    fn forest_beats_mean_baseline() {
        let train = noisy_table(1);
        let test = noisy_table(2);
        let mut f = RandomForestRegressor::new(ForestParams::default());
        f.fit(&train).expect("fit");
        let truth: Vec<f64> = (0..test.num_rows()).map(|i| test.target(i)).collect();
        let pred: Vec<f64> = (0..test.num_rows()).map(|i| f.predict(test.row(i))).collect();
        let r2 = r2_score(&truth, &pred);
        assert!(r2 > 0.8, "forest generalization r2 = {r2}");
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let t = noisy_table(3);
        let mut a = RandomForestRegressor::new(ForestParams::default());
        let mut b = RandomForestRegressor::new(ForestParams::default());
        a.fit(&t).expect("fit");
        b.fit(&t).expect("fit");
        assert_eq!(a.predict(t.row(0)), b.predict(t.row(0)));
    }

    #[test]
    fn num_trees_respected() {
        let t = noisy_table(4);
        let mut f =
            RandomForestRegressor::new(ForestParams { num_trees: 5, ..ForestParams::default() });
        f.fit(&t).expect("fit");
        assert_eq!(f.num_trees(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = RandomForestRegressor::new(ForestParams { num_trees: 0, ..Default::default() });
    }

    #[test]
    fn empty_table_rejected() {
        let mut f = RandomForestRegressor::new(ForestParams::default());
        assert!(matches!(f.fit(&Table::with_dims(2)), Err(MlError::EmptyTable)));
    }

    #[test]
    fn single_feature_table_works() {
        let mut t = Table::with_dims(1);
        for i in 0..50 {
            t.push_row(&[i as f64], (i * 2) as f64).expect("ok");
        }
        let mut f = RandomForestRegressor::new(ForestParams {
            feature_fraction: 0.1, // still must use >= 1 feature
            ..ForestParams::default()
        });
        f.fit(&t).expect("fit");
        let p = f.predict(&[25.0]);
        assert!((p - 50.0).abs() < 10.0, "p = {p}");
    }
}

#[cfg(test)]
mod uncertainty_tests {
    use super::*;

    #[test]
    fn std_is_zero_on_constant_targets_and_positive_on_noise() {
        let mut flat = Table::with_dims(1);
        for i in 0..40 {
            flat.push_row(&[i as f64], 5.0).expect("ok");
        }
        let mut f = RandomForestRegressor::new(ForestParams::default());
        f.fit(&flat).expect("fit");
        let (mean, std) = f.predict_with_std(&[20.0]);
        assert!((mean - 5.0).abs() < 1e-9);
        assert!(std < 1e-9);

        // Noisy target: trees disagree, std > 0 somewhere.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let mut noisy = Table::with_dims(1);
        for i in 0..80 {
            noisy.push_row(&[i as f64], i as f64 + rng.gen_range(-10.0..10.0)).expect("ok");
        }
        let mut f = RandomForestRegressor::new(ForestParams::default());
        f.fit(&noisy).expect("fit");
        let (_, std) = f.predict_with_std(&[40.0]);
        assert!(std > 0.0, "ensemble disagreement expected");
    }

    #[test]
    fn mean_matches_plain_predict() {
        let t = {
            let mut t = Table::with_dims(1);
            for i in 0..30 {
                t.push_row(&[i as f64], (i * 3) as f64).expect("ok");
            }
            t
        };
        let mut f = RandomForestRegressor::new(ForestParams::default());
        f.fit(&t).expect("fit");
        let (mean, _) = f.predict_with_std(&[12.0]);
        assert!((mean - f.predict(&[12.0])).abs() < 1e-12);
    }
}
