//! CART decision-tree regression.
//!
//! The paper's Fig. 5 compares its gray-box mini-batch-size predictor
//! against "Decision Tree Regression" as the pure black-box baseline —
//! this is that baseline, and also the building block of
//! [`crate::forest::RandomForestRegressor`].

use crate::dataset::Table;
use crate::regressor::Regressor;
use crate::MlError;

/// Hyperparameters of a [`DecisionTreeRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds evaluated per feature (quantile
    /// subsampling keeps fitting fast on large profile databases).
    pub max_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 8, min_samples_split: 4, min_samples_leaf: 2, max_thresholds: 32 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A CART regression tree minimizing within-node variance.
///
/// # Example
///
/// ```
/// use gnnav_ml::{DecisionTreeRegressor, Regressor, Table, TreeParams};
///
/// # fn main() -> Result<(), gnnav_ml::MlError> {
/// let mut t = Table::with_dims(1);
/// for i in 0..40 {
///     let x = i as f64;
///     t.push_row(&[x], if x < 20.0 { 1.0 } else { 5.0 })?;
/// }
/// let mut tree = DecisionTreeRegressor::new(TreeParams::default());
/// tree.fit(&t)?;
/// assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[30.0]) - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: TreeParams,
    root: Option<Node>,
    num_features: usize,
}

impl DecisionTreeRegressor {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        DecisionTreeRegressor { params, root: None, num_features: 0 }
    }

    /// Number of leaves (0 before fitting).
    pub fn num_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Depth of the fitted tree (0 before fitting; 1 for a single
    /// leaf).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        self.root.as_ref().map_or(0, depth)
    }

    fn build(&self, table: &Table, indices: &[usize], depth: usize) -> Node {
        let mean = indices.iter().map(|&i| table.target(i)).sum::<f64>() / indices.len() as f64;
        if depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || variance(table, indices) < 1e-12
        {
            return Node::Leaf { value: mean };
        }
        let Some((feature, threshold)) = self.best_split(table, indices) else {
            return Node::Leaf { value: mean };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| table.row(i)[feature] <= threshold);
        if left_idx.len() < self.params.min_samples_leaf
            || right_idx.len() < self.params.min_samples_leaf
        {
            return Node::Leaf { value: mean };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(table, &left_idx, depth + 1)),
            right: Box::new(self.build(table, &right_idx, depth + 1)),
        }
    }

    fn best_split(&self, table: &Table, indices: &[usize]) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let total_sum: f64 = indices.iter().map(|&i| table.target(i)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for f in 0..table.num_features() {
            // Sort indices by this feature.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                table.row(a)[f].partial_cmp(&table.row(b)[f]).expect("finite features")
            });
            let stride = (order.len() / self.params.max_thresholds).max(1);
            let mut left_sum = 0.0f64;
            let mut left_n = 0usize;
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += table.target(i);
                left_n += 1;
                if pos % stride != 0 {
                    continue;
                }
                let v = table.row(i)[f];
                let v_next = table.row(order[pos + 1])[f];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_n = indices.len() - left_n;
                // Maximizing between-group sum of squares ==
                // minimizing within-node variance.
                let score = left_sum * left_sum / left_n as f64
                    + right_sum * right_sum / right_n as f64
                    - total_sum * total_sum / n;
                let threshold = 0.5 * (v + v_next);
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((f, threshold, score));
                }
            }
        }
        best.filter(|&(_, _, s)| s > 1e-12).map(|(f, t, _)| (f, t))
    }
}

fn variance(table: &Table, indices: &[usize]) -> f64 {
    let n = indices.len() as f64;
    let mean = indices.iter().map(|&i| table.target(i)).sum::<f64>() / n;
    indices.iter().map(|&i| (table.target(i) - mean).powi(2)).sum::<f64>() / n
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, table: &Table) -> Result<(), MlError> {
        if table.is_empty() {
            return Err(MlError::EmptyTable);
        }
        let indices: Vec<usize> = (0..table.num_rows()).collect();
        self.num_features = table.num_features();
        self.root = Some(self.build(table, &indices, 0));
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("model not fitted");
        assert_eq!(features.len(), self.num_features, "feature dim mismatch");
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn step_table() -> Table {
        let mut t = Table::with_dims(2);
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let noise_feature = (i * 7 % 13) as f64;
            let y = if x < 5.0 { 2.0 } else { 9.0 };
            t.push_row(&[x, noise_feature], y).expect("ok");
        }
        t
    }

    #[test]
    fn learns_step_function() {
        let mut tree = DecisionTreeRegressor::new(TreeParams::default());
        tree.fit(&step_table()).expect("fit");
        // Threshold subsampling + min_samples_leaf may leave one
        // boundary sample in the wrong leaf, so allow a small margin.
        assert!(tree.predict(&[1.0, 0.0]) < 3.0);
        assert!(tree.predict(&[8.0, 0.0]) > 8.0);
        // The informative feature, not the noise one, drives the split.
        assert!(tree.num_leaves() >= 2);
    }

    #[test]
    fn respects_max_depth() {
        let params = TreeParams { max_depth: 1, ..TreeParams::default() };
        let mut tree = DecisionTreeRegressor::new(params);
        tree.fit(&step_table()).expect("fit");
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_target_single_leaf() {
        let mut t = Table::with_dims(1);
        for i in 0..10 {
            t.push_row(&[i as f64], 7.0).expect("ok");
        }
        let mut tree = DecisionTreeRegressor::new(TreeParams::default());
        tree.fit(&t).expect("fit");
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(&[100.0]), 7.0);
    }

    #[test]
    fn fits_smooth_function_reasonably() {
        let mut t = Table::with_dims(1);
        for i in 0..200 {
            let x = i as f64 / 20.0;
            t.push_row(&[x], x * x).expect("ok");
        }
        let mut tree =
            DecisionTreeRegressor::new(TreeParams { max_depth: 10, ..TreeParams::default() });
        tree.fit(&t).expect("fit");
        let truth: Vec<f64> = (0..200).map(|i| (i as f64 / 20.0).powi(2)).collect();
        let pred: Vec<f64> = (0..200).map(|i| tree.predict(&[i as f64 / 20.0])).collect();
        assert!(r2_score(&truth, &pred) > 0.95);
    }

    #[test]
    fn empty_table_rejected() {
        let mut tree = DecisionTreeRegressor::new(TreeParams::default());
        assert!(matches!(tree.fit(&Table::with_dims(1)), Err(MlError::EmptyTable)));
    }

    #[test]
    #[should_panic(expected = "model not fitted")]
    fn predict_before_fit_panics() {
        let tree = DecisionTreeRegressor::new(TreeParams::default());
        let _ = tree.predict(&[1.0]);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let params = TreeParams { min_samples_leaf: 40, ..TreeParams::default() };
        let mut tree = DecisionTreeRegressor::new(params);
        tree.fit(&step_table()).expect("fit");
        // 100 samples, leaves must hold >= 40: at most 2 leaves.
        assert!(tree.num_leaves() <= 2);
    }
}
