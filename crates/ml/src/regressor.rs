//! The common regression-model interface.

use crate::dataset::Table;
use crate::MlError;

/// A trainable regression model mapping a feature vector to a scalar.
///
/// Implemented by [`RidgeRegressor`](crate::RidgeRegressor),
/// [`DecisionTreeRegressor`](crate::DecisionTreeRegressor),
/// [`RandomForestRegressor`](crate::RandomForestRegressor), and
/// [`KnnRegressor`](crate::KnnRegressor). Object-safe so the gray-box
/// estimator can mix learners behind `Box<dyn Regressor>`.
pub trait Regressor: std::fmt::Debug + Send {
    /// Fits the model on `table`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTable`] for empty input, or a
    /// solver-specific error.
    fn fit(&mut self, table: &Table) -> Result<(), MlError>;

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the model is unfitted or `features` has the wrong
    /// dimensionality.
    fn predict(&self, features: &[f64]) -> f64;

    /// Predicts every row of `table`, in order.
    fn predict_table(&self, table: &Table) -> Vec<f64> {
        (0..table.num_rows()).map(|i| self.predict(table.row(i))).collect()
    }
}
