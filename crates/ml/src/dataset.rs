//! Tabular regression dataset.

use crate::MlError;

/// A dense `(X, y)` regression table with named feature columns.
///
/// # Example
///
/// ```
/// use gnnav_ml::Table;
///
/// # fn main() -> Result<(), gnnav_ml::MlError> {
/// let mut t = Table::new(vec!["x0".into(), "x1".into()]);
/// t.push_row(&[1.0, 2.0], 3.0)?;
/// t.push_row(&[2.0, 0.5], 2.5)?;
/// assert_eq!(t.num_rows(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    feature_names: Vec<String>,
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Table {
    /// Creates an empty table with the given feature columns.
    pub fn new(feature_names: Vec<String>) -> Self {
        Table { feature_names, x: Vec::new(), y: Vec::new() }
    }

    /// Creates a table with anonymous feature names `f0..f{n}`.
    pub fn with_dims(num_features: usize) -> Self {
        Table::new((0..num_features).map(|i| format!("f{i}")).collect())
    }

    /// Appends one observation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `features.len()` does
    /// not match the table width, and [`MlError::NonFinite`] if any
    /// value is NaN or infinite.
    pub fn push_row(&mut self, features: &[f64], target: f64) -> Result<(), MlError> {
        if features.len() != self.feature_names.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.feature_names.len(),
                got: features.len(),
            });
        }
        if !target.is_finite() || features.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFinite);
        }
        self.x.extend_from_slice(features);
        self.y.push(target);
        Ok(())
    }

    /// Number of observations.
    pub fn num_rows(&self) -> usize {
        self.y.len()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.num_features();
        &self.x[i * w..(i + 1) * w]
    }

    /// Target of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn target(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Feature column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// A new table containing only the rows at `indices` (duplicates
    /// allowed: used for bootstrap resampling).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let mut out = Table::new(self.feature_names.clone());
        for &i in indices {
            out.x.extend_from_slice(self.row(i));
            out.y.push(self.y[i]);
        }
        out
    }

    /// A new table containing only the feature columns at `cols` (in
    /// the given order), keeping all rows.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> Table {
        let names = cols.iter().map(|&c| self.feature_names[c].clone()).collect();
        let mut out = Table::new(names);
        for i in 0..self.num_rows() {
            let row = self.row(i);
            out.x.extend(cols.iter().map(|&c| row[c]));
            out.y.push(self.y[i]);
        }
        out
    }

    /// Mean of the targets (0 for an empty table).
    pub fn target_mean(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.y.iter().sum::<f64>() / self.y.len() as f64
        }
    }
}

impl Extend<(Vec<f64>, f64)> for Table {
    /// Extends the table, panicking on dimension mismatch (use
    /// [`Table::push_row`] for fallible insertion).
    fn extend<I: IntoIterator<Item = (Vec<f64>, f64)>>(&mut self, iter: I) {
        for (row, y) in iter {
            self.push_row(&row, y).expect("row matches table width");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::with_dims(2);
        t.push_row(&[1.0, 10.0], 100.0).expect("ok");
        t.push_row(&[2.0, 20.0], 200.0).expect("ok");
        t.push_row(&[3.0, 30.0], 300.0).expect("ok");
        t
    }

    #[test]
    fn push_and_access() {
        let t = table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_features(), 2);
        assert_eq!(t.row(1), &[2.0, 20.0]);
        assert_eq!(t.target(2), 300.0);
        assert_eq!(t.target_mean(), 200.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut t = Table::with_dims(2);
        let err = t.push_row(&[1.0], 0.0).unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn non_finite_rejected() {
        let mut t = Table::with_dims(1);
        assert!(matches!(t.push_row(&[f64::NAN], 0.0), Err(MlError::NonFinite)));
        assert!(matches!(t.push_row(&[0.0], f64::INFINITY), Err(MlError::NonFinite)));
    }

    #[test]
    fn select_rows_with_duplicates() {
        let t = table();
        let s = t.select_rows(&[2, 2, 0]);
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.target(0), 300.0);
        assert_eq!(s.target(2), 100.0);
    }

    #[test]
    fn select_columns_projects() {
        let t = table();
        let s = t.select_columns(&[1]);
        assert_eq!(s.num_features(), 1);
        assert_eq!(s.row(0), &[10.0]);
        assert_eq!(s.feature_names(), &["f1".to_string()]);
    }

    #[test]
    fn extend_collects_pairs() {
        let mut t = Table::with_dims(1);
        t.extend(vec![(vec![1.0], 2.0), (vec![3.0], 4.0)]);
        assert_eq!(t.num_rows(), 2);
    }
}
