//! Regression quality metrics.
//!
//! The paper validates its estimator with R² for the analytically
//! grounded predictions (time, memory) and MSE for the black-box
//! accuracy prediction (Tab. 2); both live here.

/// Coefficient of determination R².
///
/// 1 means perfect prediction, 0 means no better than predicting the
/// mean; negative values mean worse than the mean.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty input");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty input");
    truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum::<f64>() / truth.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty input");
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_r2_one() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn mean_prediction_r2_zero() {
        let y = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        assert!(r2_score(&y, &mean).abs() < 1e-12);
    }

    #[test]
    fn bad_prediction_r2_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [3.0, 10.0, -5.0];
        assert!(r2_score(&y, &bad) < 0.0);
    }

    #[test]
    fn constant_truth_edge_case() {
        let y = [2.0, 2.0];
        assert_eq!(r2_score(&y, &[2.0, 2.0]), 1.0);
        assert_eq!(r2_score(&y, &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn mse_and_mae_values() {
        let y = [0.0, 0.0];
        let p = [1.0, -3.0];
        assert_eq!(mse(&y, &p), 5.0);
        assert_eq!(mae(&y, &p), 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        let _ = r2_score(&[1.0], &[1.0, 2.0]);
    }
}
