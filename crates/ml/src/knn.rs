//! k-nearest-neighbors regression (standardized Euclidean distance).

use crate::dataset::Table;
use crate::regressor::Regressor;
use crate::MlError;

/// kNN regressor: predicts the mean target of the `k` nearest training
/// rows under standardized Euclidean distance. A simple, assumption-
/// free baseline for the estimator comparisons.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    table: Option<Table>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl KnnRegressor {
    /// Creates an unfitted kNN model.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be > 0");
        KnnRegressor { k, table: None, means: Vec::new(), stds: Vec::new() }
    }

    /// The number of neighbors `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, table: &Table) -> Result<(), MlError> {
        if table.is_empty() {
            return Err(MlError::EmptyTable);
        }
        let d = table.num_features();
        let n = table.num_rows() as f64;
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for i in 0..table.num_rows() {
            for (m, &v) in means.iter_mut().zip(table.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        for i in 0..table.num_rows() {
            for (j, &v) in table.row(i).iter().enumerate() {
                stds[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        self.means = means;
        self.stds = stds;
        self.table = Some(table.clone());
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        let table = self.table.as_ref().expect("model not fitted");
        assert_eq!(features.len(), table.num_features(), "feature dim mismatch");
        let mut dists: Vec<(f64, f64)> = (0..table.num_rows())
            .map(|i| {
                let dist: f64 = table
                    .row(i)
                    .iter()
                    .zip(features)
                    .zip(self.means.iter().zip(&self.stds))
                    .map(|((&a, &b), (&m, &s))| (((a - m) / s) - ((b - m) / s)).powi(2))
                    .sum();
                (dist, table.target(i))
            })
            .collect();
        let k = self.k.min(dists.len());
        dists
            .select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        dists[..k].iter().map(|&(_, y)| y).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::with_dims(1);
        for i in 0..10 {
            t.push_row(&[i as f64], i as f64 * 10.0).expect("ok");
        }
        t
    }

    #[test]
    fn one_nn_returns_nearest_target() {
        let mut m = KnnRegressor::new(1);
        m.fit(&table()).expect("fit");
        assert_eq!(m.predict(&[3.2]), 30.0);
    }

    #[test]
    fn three_nn_averages() {
        let mut m = KnnRegressor::new(3);
        m.fit(&table()).expect("fit");
        // Nearest to 5.0: rows 5, 4, 6 -> mean 50.
        assert!((m.predict(&[5.0]) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_table_uses_all() {
        let mut m = KnnRegressor::new(100);
        m.fit(&table()).expect("fit");
        assert!((m.predict(&[0.0]) - 45.0).abs() < 1e-9);
        assert_eq!(m.k(), 100);
    }

    #[test]
    fn empty_table_rejected() {
        let mut m = KnnRegressor::new(2);
        assert!(matches!(m.fit(&Table::with_dims(1)), Err(MlError::EmptyTable)));
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_rejected() {
        let _ = KnnRegressor::new(0);
    }
}
