//! Property-based tests for the regression substrate.

use gnnav_ml::{
    mse, r2_score, train_test_split, DecisionTreeRegressor, KnnRegressor, Regressor,
    RidgeRegressor, Table, TreeParams,
};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 5..60).prop_map(|rows| {
        let mut t = Table::with_dims(1);
        for (x, y) in rows {
            t.push_row(&[x], y).expect("finite");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn r2_of_truth_is_one(values in proptest::collection::vec(-1e6f64..1e6, 2..50)) {
        prop_assert_eq!(r2_score(&values, &values), 1.0);
        prop_assert_eq!(mse(&values, &values), 0.0);
    }

    #[test]
    fn r2_never_exceeds_one(
        truth in proptest::collection::vec(-100.0f64..100.0, 3..30),
        noise in proptest::collection::vec(-10.0f64..10.0, 3..30),
    ) {
        let n = truth.len().min(noise.len());
        let pred: Vec<f64> = truth[..n].iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
        prop_assert!(r2_score(&truth[..n], &pred) <= 1.0 + 1e-12);
    }

    #[test]
    fn tree_predictions_within_target_range(table in table_strategy()) {
        let mut tree = DecisionTreeRegressor::new(TreeParams::default());
        tree.fit(&table).expect("fit");
        let lo = table.targets().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = table.targets().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for probe in [-1e3, -1.0, 0.0, 1.0, 1e3] {
            let p = tree.predict(&[probe]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn ridge_recovers_exact_linear(slope in -5.0f64..5.0, intercept in -10.0f64..10.0) {
        let mut t = Table::with_dims(1);
        for i in 0..30 {
            let x = i as f64;
            t.push_row(&[x], slope * x + intercept).expect("ok");
        }
        let mut m = RidgeRegressor::new(1e-9);
        m.fit(&t).expect("fit");
        let p = m.predict(&[50.0]);
        let expected = slope * 50.0 + intercept;
        prop_assert!((p - expected).abs() < 1e-3 * (1.0 + expected.abs()), "{p} vs {expected}");
    }

    #[test]
    fn knn_prediction_is_a_training_target_mean(table in table_strategy()) {
        let mut m = KnnRegressor::new(1);
        m.fit(&table).expect("fit");
        // 1-NN prediction must be one of the training targets.
        let p = m.predict(&[0.0]);
        prop_assert!(table.targets().iter().any(|&y| (y - p).abs() < 1e-12));
    }

    #[test]
    fn split_partitions_rows(frac in 0.1f64..0.9, n in 10usize..80) {
        let mut t = Table::with_dims(1);
        for i in 0..n {
            t.push_row(&[i as f64], i as f64).expect("ok");
        }
        let (train, test) = train_test_split(&t, frac, 3);
        prop_assert_eq!(train.num_rows() + test.num_rows(), n);
        prop_assert!(test.num_rows() >= 1);
        prop_assert!(train.num_rows() >= 1);
    }
}
