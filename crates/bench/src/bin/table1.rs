//! Regenerates **Table 1**: performance of GNNavigator across tasks.
//!
//! For each application (dataset + model) the paper compares PyG,
//! PaGraph (full / low memory), 2PGraph — all reproduced as backend
//! templates — against GNNavigator guidelines generated under four
//! priorities (Bal, Ex-TM, Ex-MA, Ex-TA). Columns: epoch time `T`,
//! peak device memory `Γ`, accuracy `Acc`, plus deltas vs. PyG.
//!
//! Run with `cargo run --release -p gnnav-bench --bin table1`.
//! `GNNAV_SCALE` (default 0.5) and `GNNAV_EPOCHS` (default 3) shrink
//! the experiment for smoke runs.

use gnnav_bench::{
    env_epochs, env_scale, fmt_mem, fmt_mem_delta, fmt_pct, fmt_speedup, fmt_time, print_table,
    scaled_space, template_config,
};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{ExecutionOptions, Perf, Template};
use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.5);
    let epochs = env_epochs(3);
    let tasks = [
        (DatasetId::OgbnProducts, ModelKind::Sage),
        (DatasetId::Reddit2, ModelKind::Sage),
        (DatasetId::OgbnArxiv, ModelKind::Gat),
    ];
    println!("# Table 1: Performance of GNNavigator across different tasks");
    println!("# (scale {scale}, {epochs} epochs; simulated RTX 4090 platform)\n");

    for (dataset_id, model) in tasks {
        let started = std::time::Instant::now();
        let dataset = Dataset::load_scaled(dataset_id, scale)?;
        let apply_exec = ExecutionOptions { epochs, ..Default::default() };
        let options = NavigatorOptions {
            profile_samples: 48,
            augmentation_graphs: 2,
            augmentation_nodes: 1200,
            profile_exec: ExecutionOptions {
                epochs: 1,
                train: true,
                train_batches_cap: Some(6),
                ..Default::default()
            },
            apply_exec: apply_exec.clone(),
            explore_budget: 1500,
            space: scaled_space(scale),
            ..Default::default()
        };
        let mut nav =
            Navigator::new(dataset, Platform::default_rtx4090(), model).with_options(options);

        // Baselines (reproduced on the same backend, §4.1).
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut perfs: Vec<(String, Perf)> = Vec::new();
        for template in Template::ALL {
            let config = template_config(template, model, scale);
            let report = nav.run_config(&config)?;
            perfs.push((template.label().to_string(), report.perf));
        }
        let pyg = perfs[0].1;

        // GNNavigator guidelines.
        nav.prepare()?;
        let mut chosen: Vec<(String, String)> = Vec::new();
        for priority in Priority::ALL {
            let result = nav.generate_guideline(priority, &RuntimeConstraints::none())?;
            let report = nav.apply(&result.guideline)?;
            perfs.push((priority.label().to_string(), report.perf));
            chosen.push((priority.label().to_string(), result.guideline.config.summary()));
        }

        for (label, perf) in &perfs {
            let is_pyg = label == "PyG";
            rows.push(vec![
                label.clone(),
                fmt_time(perf.epoch_time),
                if is_pyg { String::new() } else { fmt_speedup(perf.speedup_vs(&pyg)) },
                fmt_mem(perf.peak_mem_bytes),
                if is_pyg { String::new() } else { fmt_mem_delta(perf.mem_delta_vs(&pyg)) },
                fmt_pct(perf.accuracy),
                format!("{:.2}", perf.hit_rate),
            ]);
        }

        println!(
            "## {} + {}  ({} nodes, wall {:.0}s)",
            dataset_id.short_name(),
            model.short_name(),
            nav.dataset().num_nodes(),
            started.elapsed().as_secs_f64()
        );
        print_table(
            &["Method", "Time (T)", "vs PyG", "Memory (G)", "vs PyG", "Accuracy", "hit"],
            &rows,
        );
        println!("\nguideline configurations:");
        for (label, summary) in &chosen {
            println!("  {label:<6} {summary}");
        }
        println!();
    }
    Ok(())
}
