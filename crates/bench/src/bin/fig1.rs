//! Regenerates **Figure 1**: profiling of existing GNN training
//! frameworks.
//!
//! - **Fig. 1a**: PaGraph's speedup depends on extra memory — a sweep
//!   over the static-cache ratio reports speedup vs. PyG together
//!   with the peak-memory overhead it costs.
//! - **Fig. 1b**: 2PGraph trades accuracy for epoch time — a sweep
//!   over the locality-bias strength η reports epoch time and
//!   accuracy, compared against PaGraph at the same cache budget.
//!
//! Run with `cargo run --release -p gnnav-bench --bin fig1`.
//! `GNNAV_SCALE` (default 0.5) and `GNNAV_EPOCHS` (default 3).

use gnnav_bench::{
    env_epochs, env_scale, fmt_mem, fmt_pct, fmt_speedup, fmt_time, print_table, template_config,
};
use gnnav_cache::CachePolicy;
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, Template};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.5);
    let epochs = env_epochs(3);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, scale)?;
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs, ..Default::default() };

    println!("# Figure 1: Profiling on existing GNN training frameworks");
    println!("# (Reddit2 + SAGE, scale {scale}, {epochs} epochs)\n");

    // --- Fig. 1a: PaGraph memory/speedup trade-off. ---
    let pyg = backend
        .execute(&dataset, &template_config(Template::Pyg, ModelKind::Sage, scale), &opts)?
        .perf;
    let mut rows = Vec::new();
    for ratio in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7] {
        let mut config = template_config(Template::PaGraphFull, ModelKind::Sage, scale);
        config.cache_ratio = ratio;
        if ratio == 0.0 {
            config.cache_policy = CachePolicy::None;
        }
        let perf = backend.execute(&dataset, &config, &opts)?.perf;
        rows.push(vec![
            format!("{ratio:.2}"),
            fmt_time(perf.epoch_time),
            fmt_speedup(perf.speedup_vs(&pyg)),
            fmt_mem(perf.peak_mem_bytes),
            format!("{:+.1}%", perf.mem_delta_vs(&pyg) * 100.0),
            format!("{:.2}", perf.hit_rate),
        ]);
    }
    println!("## (a) PaGraph speedup vs. extra memory (cache-ratio sweep)");
    print_table(&["cache r", "Time", "speedup", "Memory", "mem vs PyG", "hit"], &rows);

    // --- Fig. 1b: 2PGraph epoch time and accuracy vs PaGraph. ---
    // Apples-to-apples: PaGraph is given the *same* cache budget as
    // 2PGraph (the 2P template's ratio), so the sweep isolates what
    // cache-aware sampling adds on top of the cache itself. Accuracy
    // is averaged over SEEDS runs to suppress training noise.
    const SEEDS: u64 = 3;
    let run_avg = |config: &gnnav_runtime::TrainingConfig|
        -> Result<(gnnav_runtime::Perf, f64), Box<dyn std::error::Error>> {
        let mut acc = 0.0;
        let mut perf = None;
        for s in 0..SEEDS {
            let o = ExecutionOptions { epochs, seed: 0x6AA7 + s, ..Default::default() };
            let r = backend.execute(&dataset, config, &o)?;
            acc += r.perf.accuracy / SEEDS as f64;
            perf = Some(r.perf);
        }
        Ok((perf.expect("ran"), acc))
    };

    let two_p = template_config(Template::TwoPGraph, ModelKind::Sage, scale);
    let mut pa_same_budget = template_config(Template::PaGraphFull, ModelKind::Sage, scale);
    pa_same_budget.cache_ratio = two_p.cache_ratio;
    let (pa, pa_acc) = run_avg(&pa_same_budget)?;

    let mut rows = Vec::new();
    rows.push(vec![
        format!("PaGraph r={:.2}", pa_same_budget.cache_ratio),
        fmt_time(pa.epoch_time),
        "1.00x".into(),
        fmt_pct(pa_acc),
        String::new(),
    ]);
    for eta in [0.25, 0.5, 0.75, 1.0] {
        let mut config = two_p.clone();
        config.locality_eta = eta;
        let (perf, acc) = run_avg(&config)?;
        rows.push(vec![
            format!("2PGraph eta={eta:.2}"),
            fmt_time(perf.epoch_time),
            fmt_speedup(perf.speedup_vs(&pa)),
            fmt_pct(acc),
            format!("{:+.2}%", (acc - pa_acc) * 100.0),
        ]);
    }
    println!("\n## (b) 2PGraph epoch time / accuracy trade-off vs. PaGraph (same cache budget, acc averaged over {SEEDS} seeds)");
    print_table(&["Method", "Time", "vs PaGraph", "Accuracy", "dAcc"], &rows);
    println!("\n(paper: 2PGraph 2.45x over PaGraph at ~3% accuracy cost)");
    Ok(())
}
