//! Regenerates the committed metrics-diff baselines.
//!
//! ```sh
//! cargo run --release -p gnnav-bench --bin perf_baseline -- .
//! ```
//!
//! Writes `BENCH_backend.json` (a seeded `RuntimeBackend::execute`
//! run) and `BENCH_explorer.json` (a seeded single-threaded
//! profile → fit → explore pipeline) into the output directory —
//! CI replays the same workloads and gates them with
//! `gnnavigate metrics-diff`.
//!
//! Both workloads are fully deterministic: fixed seeds, fixed scales,
//! and a single profiler thread (the threaded sweep's gauge
//! last-write-wins order is scheduler-dependent). Wall-clock series
//! (anything named `*wall*`, `*latency*`, `*per_s*`, `*utilization*`)
//! and histograms (which summarize wall durations) are stripped
//! before writing: only simulator-determined counters and gauges are
//! stable enough to gate.

use gnnav_estimator::{GrayBoxEstimator, Profiler};
use gnnav_explorer::{explore_fingerprint, ExploreCache, Explorer, Priority, RuntimeConstraints};
use gnnav_graph::{Dataset, DatasetId, FeatureSpec, Features, GraphBuilder};
use gnnav_hwsim::Platform;
use gnnav_nn::{Adam, GnnModel, Matrix, ModelKind};
use gnnav_obs::names as metric;
use gnnav_obs::Snapshot;
use gnnav_runtime::{
    DesignSpace, DurabilityOptions, ExecutionOptions, RuntimeBackend, TrainingConfig,
};
use std::path::Path;

const SCALE: f64 = 0.02;
const SEED: u64 = 0x7A51;

/// Counters that must stay at zero on a clean (fault-free) run; a
/// non-zero value means recovery machinery fired where none should
/// have, which would silently shift every other series in the
/// baseline. `alloc.steady_state_allocs_per_epoch` rides along: the
/// training hot path's zero-allocation steady state is a gated
/// invariant, not just a claim.
const PINNED_ZERO: [&str; 17] = [
    metric::FAULTS_INJECTED,
    metric::BACKEND_RETRIES,
    metric::BACKEND_DEGRADATIONS,
    metric::BACKEND_NAN_SKIPS,
    metric::PROFILER_RETRIES,
    metric::PROFILER_QUARANTINED,
    metric::PROFILER_TIMEOUTS,
    metric::EXPLORER_FALLBACKS,
    metric::EXPLORER_NONFINITE,
    metric::ALLOC_STEADY_PER_EPOCH,
    // The baseline workloads run on the ephemeral path: nothing may
    // touch the durable store. The checkpoint cost that *is* gated
    // rides along under `bench.checkpoint.*` (see `durable_probe`).
    metric::STORE_WAL_APPENDS,
    metric::STORE_WAL_REPLAYED,
    metric::STORE_WAL_TORN_TRUNCATED,
    metric::STORE_WAL_CRC_FAILURES,
    metric::STORE_CHECKPOINT_WRITES,
    metric::STORE_CHECKPOINT_RESUMES,
    metric::STORE_CHECKPOINT_REJECTED,
];

/// Per-epoch checkpoint write cost, measured by `durable_probe` in an
/// isolated metrics window and folded into `BENCH_backend.json` under
/// these names (so the `store.*` series proper stay pinned at zero).
const BENCH_CHECKPOINT_WRITES: &str = "bench.checkpoint.writes";
const BENCH_CHECKPOINT_BYTES_PER_WRITE: &str = "bench.checkpoint.bytes_per_write";

/// Repeat-navigation cost, measured by `navigation_probe` in an
/// isolated metrics window and folded into `BENCH_explorer.json`:
/// a warm run against the exploration-result cache must evaluate zero
/// candidates (`warm_evaluated` pinned at 0, `cache_hits` at 1) while
/// the cold run's effort and cache writes are gated alongside.
const BENCH_NAV_COLD_EVALUATED: &str = "bench.navigation.cold_evaluated";
const BENCH_NAV_WARM_EVALUATED: &str = "bench.navigation.warm_evaluated";
const BENCH_NAV_CACHE_HITS: &str = "bench.navigation.cache_hits";
const BENCH_NAV_CACHE_MISSES: &str = "bench.navigation.cache_misses";
const BENCH_NAV_CACHE_INSERTS: &str = "bench.navigation.cache_inserts";

fn assert_clean(name: &str, snapshot: &Snapshot) {
    for key in PINNED_ZERO {
        let v = snapshot.counters.get(key).copied().unwrap_or(0);
        assert_eq!(v, 0, "{name}: zero-pinned counter {key} = {v} on a clean run");
    }
}

fn deterministic(snapshot: Snapshot) -> Snapshot {
    let mut kept = snapshot.filtered(|name| {
        !["wall", "latency", "per_s", "utilization"].iter().any(|frag| name.contains(frag))
    });
    kept.histograms.clear();
    // Whole-run allocator gauges track every Vec the process grows —
    // too incidental to gate (any refactor shifts them). The gated
    // allocation series is the steady-state counter pinned above.
    kept.gauges.retain(|name, _| !name.starts_with("alloc."));
    kept
}

/// Runs the backend workload once on the durable path in a throwaway
/// checkpoint directory and returns `(writes, bytes_per_write)` — the
/// per-epoch checkpoint write cost. Measured in its own metrics window
/// so the `store.*` series stay zero-pinned on the snapshot proper.
fn durable_probe(dataset: &Dataset) -> (u64, u64) {
    let metrics = gnnav_obs::global();
    metrics.reset();
    let dir = std::env::temp_dir().join(format!("gnnav-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, seed: SEED, ..Default::default() };
    let dur = DurabilityOptions::new(&dir, 1);
    backend
        .execute_durable(dataset, &TrainingConfig::default(), &opts, &dur)
        .expect("durable backend run");
    let snap = metrics.snapshot();
    let writes = snap.counters.get(metric::STORE_CHECKPOINT_WRITES).copied().unwrap_or(0);
    let bytes = snap.gauges.get(metric::STORE_CHECKPOINT_BYTES).copied().unwrap_or(0.0) as u64;
    let _ = std::fs::remove_dir_all(&dir);
    assert!(writes > 0, "durable probe wrote no checkpoints");
    (writes, bytes)
}

fn backend_baseline(dataset: &Dataset) -> Snapshot {
    let (ckpt_writes, ckpt_bytes) = durable_probe(dataset);
    let metrics = gnnav_obs::global();
    metrics.reset();
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, seed: SEED, ..Default::default() };
    backend.execute(dataset, &TrainingConfig::default(), &opts).expect("backend run");
    metrics.add(BENCH_CHECKPOINT_WRITES, ckpt_writes);
    metrics.add(BENCH_CHECKPOINT_BYTES_PER_WRITE, ckpt_bytes);
    deterministic(metrics.snapshot())
}

/// Runs the exploration workload cold (fresh DSE appended to a
/// throwaway exploration-result cache) and warm (served back from it)
/// in an isolated metrics window, asserting the repeat-navigation
/// contract: zero candidates evaluated on the warm path, a
/// byte-identical result, and a warm wall time that beats the cold
/// exploration outright. Returns the `bench.navigation.*` counters to
/// fold into `BENCH_explorer.json`.
fn navigation_probe(dataset: &Dataset, estimator: &GrayBoxEstimator) -> [(&'static str, u64); 5] {
    let metrics = gnnav_obs::global();
    metrics.reset();
    let dir = std::env::temp_dir().join(format!("gnnav-bench-ecache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("cache dir");
    let mut cache = ExploreCache::open(dir.join("explore.wal")).expect("open cache");

    let explorer = Explorer::new(estimator, 300).with_seed(SEED);
    let platform = Platform::default_rtx4090();
    let constraints = RuntimeConstraints::none();
    let fingerprint = explore_fingerprint(
        dataset,
        &platform,
        ModelKind::Sage,
        &DesignSpace::standard(),
        Priority::Balance,
        &constraints,
        explorer.budget(),
        explorer.seed(),
        "perf_baseline",
    );

    let counter =
        |name: &str| gnnav_obs::global().snapshot().counters.get(name).copied().unwrap_or(0);
    let cold_t0 = std::time::Instant::now();
    assert!(cache.lookup(fingerprint).is_none(), "throwaway cache must start cold");
    let cold = explorer
        .explore(dataset, &platform, ModelKind::Sage, Priority::Balance, &constraints)
        .expect("cold explore");
    cache.insert(fingerprint, &cold).expect("insert");
    let cold_wall = cold_t0.elapsed();
    let cold_evaluated = counter(metric::EXPLORER_EVALUATED);

    let warm_t0 = std::time::Instant::now();
    let warm = cache.lookup(fingerprint).expect("warm hit").clone();
    let warm_wall = warm_t0.elapsed();
    let warm_evaluated = counter(metric::EXPLORER_EVALUATED) - cold_evaluated;
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        format!("{warm:?}"),
        format!("{cold:?}"),
        "cached result must round-trip byte-identically"
    );
    assert_eq!(warm_evaluated, 0, "warm navigation must not evaluate a single candidate");
    assert!(
        warm_wall * 10 < cold_wall,
        "warm navigation ({warm_wall:?}) must beat cold exploration ({cold_wall:?}) outright"
    );
    [
        (BENCH_NAV_COLD_EVALUATED, cold_evaluated),
        (BENCH_NAV_WARM_EVALUATED, warm_evaluated),
        (BENCH_NAV_CACHE_HITS, cache.hits()),
        (BENCH_NAV_CACHE_MISSES, cache.misses()),
        (BENCH_NAV_CACHE_INSERTS, cache.inserts()),
    ]
}

fn explorer_baseline(dataset: &Dataset) -> Snapshot {
    let metrics = gnnav_obs::global();
    metrics.reset();
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            seed: SEED,
            ..Default::default()
        },
    )
    .with_threads(1);
    let configs = DesignSpace::standard().sample(24, ModelKind::Sage, SEED);
    let db = profiler.profile(dataset, &configs).expect("profile sweep");
    let mut estimator = GrayBoxEstimator::new();
    estimator.fit(&db).expect("fit");
    let explorer = Explorer::new(&estimator, 300).with_seed(SEED);
    explorer
        .explore(
            dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &RuntimeConstraints::none(),
        )
        .expect("explore");
    let mut snapshot = deterministic(metrics.snapshot());
    // The repeat-navigation probe runs in its own metrics window (the
    // baseline snapshot above is already taken); only its gated
    // counters are folded in.
    for (name, value) in navigation_probe(dataset, &estimator) {
        snapshot.counters.insert(name.to_string(), value);
    }
    snapshot
}

/// A fixed training workload over all three model kinds, recording the
/// kernel-level counters (matmul calls/flops, pool regions/tasks) that
/// `gnnavigate metrics-diff` gates as `BENCH_nn.json`.
fn nn_baseline() -> Snapshot {
    let metrics = gnnav_obs::global();
    metrics.reset();
    // Two deterministic communities, large enough that every kernel
    // takes its blocked path at least once.
    let n = 192usize;
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32);
        b.add_edge(v, (v + 7) % n as u32);
    }
    let g = b.symmetrize().build().expect("build");
    let comm: Vec<u32> = (0..n as u32).map(|v| v % 4).collect();
    let feats = Features::synthesize(&comm, &FeatureSpec::new(32, 4).with_noise(0.5), SEED);
    let x = Matrix::from_vec(n, 32, feats.matrix().to_vec());
    let labels = feats.labels().to_vec();
    let targets: Vec<u32> = (0..n as u32).collect();

    let ks0 = gnnav_nn::kernel_stats();
    let ps0 = gnnav_par::stats();
    for kind in ModelKind::ALL {
        let mut model = GnnModel::new(kind, 32, 32, 4, 2, SEED);
        let mut opt = Adam::new(0.01);
        for _ in 0..4 {
            gnnav_nn::train::train_step(&mut model, &mut opt, &g, &x, &labels, &targets);
        }
    }
    let ks = gnnav_nn::kernel_stats();
    let ps = gnnav_par::stats();
    metrics.add(metric::NN_MATMUL_CALLS, ks.matmul_calls - ks0.matmul_calls);
    metrics.add(metric::NN_MATMUL_FLOPS, ks.matmul_flops - ks0.matmul_flops);
    metrics.add(metric::NN_KERNEL_PAR_REGIONS, ps.regions - ps0.regions);
    // Deterministic only because the pool is pinned to one thread: a
    // region's task count equals its worker count.
    metrics.add(metric::NN_KERNEL_PAR_TASKS, ps.tasks - ps0.tasks);
    // The committed throughput floor rides along as a gated counter so
    // metrics-diff flags any change to the performance bar itself; the
    // measured-vs-floor assertion runs in the `gflops_sweep` binary.
    metrics.add(metric::NN_MATMUL_GFLOPS_FLOOR, gnnav_bench::MATMUL_GFLOPS_FLOOR as u64);
    metrics.gauge_set(metric::PAR_POOL_THREADS, gnnav_par::effective_threads() as f64);
    deterministic(metrics.snapshot())
}

fn main() {
    // Pin the kernel pool to a single thread before the first
    // gnnav-par call (the GNNAV_THREADS read is cached): pool-width
    // dependent series (par task counts, the pool gauge) must not vary
    // with the machine that regenerates a baseline. Kernel results
    // themselves are bitwise identical at any width; this pins only
    // the *counters*.
    std::env::set_var("GNNAV_THREADS", "1");
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let out_dir = Path::new(&out_dir);
    gnnav_obs::global().enable(true);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, SCALE).expect("load dataset");

    for (name, snapshot) in [
        ("BENCH_backend.json", backend_baseline(&dataset)),
        ("BENCH_explorer.json", explorer_baseline(&dataset)),
        ("BENCH_nn.json", nn_baseline()),
    ] {
        assert_clean(name, &snapshot);
        let path = out_dir.join(name);
        if let Err(e) = std::fs::write(&path, snapshot.to_json()) {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "{} written ({} counters, {} gauges)",
            path.display(),
            snapshot.counters.len(),
            snapshot.gauges.len()
        );
    }
}
