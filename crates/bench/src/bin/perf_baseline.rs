//! Regenerates the committed metrics-diff baselines.
//!
//! ```sh
//! cargo run --release -p gnnav-bench --bin perf_baseline -- .
//! ```
//!
//! Writes `BENCH_backend.json` (a seeded `RuntimeBackend::execute`
//! run) and `BENCH_explorer.json` (a seeded single-threaded
//! profile → fit → explore pipeline) into the output directory —
//! CI replays the same workloads and gates them with
//! `gnnavigate metrics-diff`.
//!
//! Both workloads are fully deterministic: fixed seeds, fixed scales,
//! and a single profiler thread (the threaded sweep's gauge
//! last-write-wins order is scheduler-dependent). Wall-clock series
//! (anything named `*wall*`, `*latency*`, `*per_s*`, `*utilization*`)
//! and histograms (which summarize wall durations) are stripped
//! before writing: only simulator-determined counters and gauges are
//! stable enough to gate.

use gnnav_estimator::{GrayBoxEstimator, Profiler};
use gnnav_explorer::{Explorer, Priority, RuntimeConstraints};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_obs::Snapshot;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};
use std::path::Path;

const SCALE: f64 = 0.02;
const SEED: u64 = 0x7A51;

fn deterministic(snapshot: Snapshot) -> Snapshot {
    let mut kept = snapshot.filtered(|name| {
        !["wall", "latency", "per_s", "utilization"].iter().any(|frag| name.contains(frag))
    });
    kept.histograms.clear();
    kept
}

fn backend_baseline(dataset: &Dataset) -> Snapshot {
    let metrics = gnnav_obs::global();
    metrics.reset();
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, seed: SEED, ..Default::default() };
    backend.execute(dataset, &TrainingConfig::default(), &opts).expect("backend run");
    deterministic(metrics.snapshot())
}

fn explorer_baseline(dataset: &Dataset) -> Snapshot {
    let metrics = gnnav_obs::global();
    metrics.reset();
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            seed: SEED,
            ..Default::default()
        },
    )
    .with_threads(1);
    let configs = DesignSpace::standard().sample(24, ModelKind::Sage, SEED);
    let db = profiler.profile(dataset, &configs).expect("profile sweep");
    let mut estimator = GrayBoxEstimator::new();
    estimator.fit(&db).expect("fit");
    let explorer = Explorer::new(&estimator, 300).with_seed(SEED);
    explorer
        .explore(
            dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &RuntimeConstraints::none(),
        )
        .expect("explore");
    deterministic(metrics.snapshot())
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let out_dir = Path::new(&out_dir);
    gnnav_obs::global().enable(true);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, SCALE).expect("load dataset");

    for (name, snapshot) in [
        ("BENCH_backend.json", backend_baseline(&dataset)),
        ("BENCH_explorer.json", explorer_baseline(&dataset)),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, snapshot.to_json()).expect("write baseline");
        println!(
            "{} written ({} counters, {} gauges)",
            path.display(),
            snapshot.counters.len(),
            snapshot.gauges.len()
        );
    }
}
