//! Regenerates **Figure 5**: accuracy comparison between estimator
//! models for mini-batch-size prediction.
//!
//! The paper's Fig. 5 scatters predicted vs. measured `|V_i|` for
//! (a) the gray-box model (Eq. 12: analytic skeleton + learned
//! `f_overlapping`) and (b) a pure black-box decision-tree regressor.
//! Matching the estimator's deployment protocol (§4.1), both models
//! are fitted on profiles from the *other* datasets plus power-law
//! augmentation graphs and evaluated on the held-out dataset — the
//! regime where the analytic skeleton extrapolates and a raw decision
//! tree cannot (its leaf values are bounded by the training graphs'
//! batch sizes). Closeness to the `y = x` line is the criterion; we
//! print the paired series plus R² for both models.
//!
//! Run with `cargo run --release -p gnnav-bench --bin fig5`.
//! `GNNAV_SCALE` (default 0.3).

use gnnav_bench::{env_scale, print_table};
use gnnav_estimator::{BatchSizePredictor, BlackBoxBatchSize, ProfileDb, Profiler};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_ml::r2_score;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.3);
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions::timing_only(),
    );
    // Keep |B^0| below saturation so |V_i| has dynamic range.
    let shrink = |mut c: TrainingConfig| {
        c.batch_size = c.batch_size.min(256);
        c
    };

    // Fit on every dataset except the held-out Reddit2, plus
    // power-law augmentation (the estimator's leave-one-out protocol).
    let mut train = ProfileDb::new();
    for (i, id) in
        [DatasetId::OgbnArxiv, DatasetId::OgbnProducts, DatasetId::Reddit].iter().enumerate()
    {
        let d = Dataset::load_scaled(*id, scale)?;
        let cfgs: Vec<_> = DesignSpace::standard()
            .sample(30, ModelKind::Sage, 41 + i as u64)
            .into_iter()
            .map(shrink)
            .collect();
        train.merge(profiler.profile(&d, &cfgs)?);
    }
    let aug_cfgs: Vec<_> =
        DesignSpace::standard().sample(12, ModelKind::Sage, 404).into_iter().map(shrink).collect();
    train.merge(profiler.profile_augmentation(2, 3000, &aug_cfgs, 77)?);

    // Test configurations span the FULL design space (batch sizes the
    // profiling grid never covered): this is how the DFS explorer
    // actually queries the estimator.
    let held_out = Dataset::load_scaled(DatasetId::Reddit2, scale)?;
    let test_configs: Vec<_> = DesignSpace::standard().sample(25, ModelKind::Sage, 4242);
    let test = profiler.profile(&held_out, &test_configs)?;

    let mut gray = BatchSizePredictor::new();
    gray.fit(&train)?;
    let mut tree = BlackBoxBatchSize::new();
    tree.fit(&train)?;

    println!("# Figure 5: batch-size estimator comparison");
    println!(
        "# fitted on AR/PR/RD + power-law augmentation ({} records), \
         validated on held-out Reddit2 (scale {scale})",
        train.len()
    );
    println!("# Each row is one held-out configuration; ideal predictions lie on y=x.\n");
    let mut rows = Vec::new();
    let mut truth = Vec::new();
    let mut gray_pred = Vec::new();
    let mut tree_pred = Vec::new();
    for r in test.records() {
        let g = gray.predict(&r.context);
        let t = tree.predict(&r.context);
        truth.push(r.avg_batch_nodes);
        gray_pred.push(g);
        tree_pred.push(t);
        rows.push(vec![
            format!("{:8.0}", r.avg_batch_nodes),
            format!("{g:8.0}"),
            format!("{t:8.0}"),
        ]);
    }
    print_table(&["measured |Vi|", "gray-box", "decision tree"], &rows);
    let r2_gray = r2_score(&truth, &gray_pred);
    let r2_tree = r2_score(&truth, &tree_pred);
    println!("\ngray-box R2 = {r2_gray:.4}   decision-tree R2 = {r2_tree:.4}");
    println!(
        "(paper: gray-box predictions are 'far better than the pure black-box model'; \
         here gray-box {} decision tree)",
        if r2_gray > r2_tree { "beats" } else { "does NOT beat" }
    );
    Ok(())
}
