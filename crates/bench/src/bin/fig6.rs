//! Regenerates **Figure 6**: adaptability validation of generated
//! guidelines on Reddit2 + SAGE.
//!
//! The paper exhausts a design space, executes every candidate to get
//! ground-truth `Perf{T, Γ, Acc}`, draws the Pareto front, and shows
//! that the explorer's guidelines (Bal + Ex-*) land on it. This binary
//! executes the reduced exhaustive space, prints every point tagged
//! `FRONT`/`dominated`, and reports where each guideline landed.
//!
//! Run with `cargo run --release -p gnnav-bench --bin fig6`.
//! `GNNAV_SCALE` (default 0.25) and `GNNAV_EPOCHS` (default 2).

use gnnav_bench::{env_epochs, env_scale, fmt_mem, fmt_pct, fmt_time, print_table};
use gnnav_estimator::{GrayBoxEstimator, ProfileDb, Profiler};
use gnnav_explorer::{decide, pareto_front_indices, EvaluatedCandidate, Priority};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.25);
    let epochs = env_epochs(2);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, scale)?;
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let space = DesignSpace::reduced();
    let configs: Vec<TrainingConfig> = space.enumerate(ModelKind::Sage);
    println!("# Figure 6: exhausted (reduced) design space on Reddit2 + SAGE");
    println!(
        "# scale {scale}, {epochs} epochs, {} valid candidates out of {} raw points\n",
        configs.len(),
        space.size()
    );

    // Ground truth: execute every candidate (the paper: "design space
    // has been exhausted").
    let profiler = Profiler::new(
        backend.clone(),
        ExecutionOptions { epochs, train: true, train_batches_cap: Some(8), ..Default::default() },
    );
    let started = std::time::Instant::now();
    let db: ProfileDb = profiler.profile(&dataset, &configs)?;
    eprintln!("executed {} candidates in {:.0}s", db.len(), started.elapsed().as_secs_f64());

    // Ground-truth Pareto front over (T, Γ, −Acc).
    let points: Vec<[f64; 3]> =
        db.records().iter().map(|r| [r.epoch_time_s, r.mem_bytes, -r.accuracy]).collect();
    let front = pareto_front_indices(&points);
    let on_front = |i: usize| front.contains(&i);

    let mut rows = Vec::new();
    for (i, r) in db.records().iter().enumerate() {
        rows.push(vec![
            format!("{i:3}"),
            r.context.config.summary(),
            fmt_time(gnnav_hwsim::SimTime::from_secs(r.epoch_time_s)),
            fmt_mem(r.mem_bytes as usize),
            fmt_pct(r.accuracy),
            if on_front(i) { "FRONT".into() } else { "dominated".into() },
        ]);
    }
    print_table(&["#", "candidate", "Time", "Memory", "Accuracy", "Pareto"], &rows);
    println!("\nground-truth Pareto front: {} of {} candidates\n", front.len(), db.len());

    // Explorer picks (estimator fitted on the same sweep, guideline
    // selected per priority) — the paper's validation is that these
    // land on the measured front.
    let mut estimator = GrayBoxEstimator::new();
    estimator.fit(&db)?;
    let evaluated: Vec<EvaluatedCandidate> = db
        .records()
        .iter()
        .map(|r| EvaluatedCandidate {
            config: r.context.config.clone(),
            estimate: estimator.predict(&r.context),
        })
        .collect();
    let mut rows = Vec::new();
    for priority in Priority::ALL {
        let guideline = decide(&evaluated, priority).expect("non-empty");
        let idx = db
            .records()
            .iter()
            .position(|r| r.context.config == guideline.config)
            .expect("guideline comes from the sweep");
        let r = &db.records()[idx];
        rows.push(vec![
            priority.label().into(),
            guideline.config.summary(),
            fmt_time(gnnav_hwsim::SimTime::from_secs(r.epoch_time_s)),
            fmt_mem(r.mem_bytes as usize),
            fmt_pct(r.accuracy),
            if on_front(idx) { "ON FRONT".into() } else { "off front".into() },
        ]);
    }
    println!("## Guidelines vs. the ground-truth front");
    print_table(&["Priority", "chosen candidate", "Time", "Memory", "Accuracy", "front?"], &rows);
    Ok(())
}
