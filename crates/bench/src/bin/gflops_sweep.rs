//! Dense-kernel throughput sweep: GFLOP/s at pool widths 1/2/4/8.
//!
//! ```sh
//! cargo run --release -p gnnav-bench --bin gflops_sweep
//! ```
//!
//! Prints a table of measured matmul GFLOP/s per problem size and
//! thread count (best of three samples per cell — see
//! [`gnnav_bench::best_matmul_gflops`]) and checks the single-thread
//! 256-point against [`gnnav_bench::MATMUL_GFLOPS_FLOOR`], the same
//! gate the `kernel-bench` CI job enforces. Exits non-zero if the
//! floor is missed.

use gnnav_bench::{best_matmul_gflops, print_table, MATMUL_GFLOPS_FLOOR};

fn main() {
    let sizes = [64usize, 128, 256];
    let widths = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut single_thread_256 = 0.0f64;
    for &n in &sizes {
        let mut row = vec![format!("{n}x{n}x{n}")];
        for &t in &widths {
            let gflops = best_matmul_gflops(n, t, 3);
            if n == 256 && t == 1 {
                single_thread_256 = gflops;
            }
            row.push(format!("{gflops:.2}"));
        }
        rows.push(row);
    }
    print_table(&["matmul", "1 thread", "2 threads", "4 threads", "8 threads"], &rows);
    println!(
        "single-thread floor: {MATMUL_GFLOPS_FLOOR:.2} GFLOP/s (measured {single_thread_256:.2})"
    );
    if single_thread_256 < MATMUL_GFLOPS_FLOOR {
        eprintln!("FAIL: single-thread 256-point below the committed floor");
        std::process::exit(1);
    }
}
