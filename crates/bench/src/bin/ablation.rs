//! Axis-sensitivity ablation: how much each design-space axis moves
//! `Perf{T, Γ, Acc}` on its own.
//!
//! For every axis of the design space, every value is executed with
//! all other axes held at the default configuration — quantifying
//! which knobs matter (the design-choice ablations DESIGN.md calls
//! out: pipelining, precision, cache policy/ratio, sampling geometry).
//!
//! Run with `cargo run --release -p gnnav-bench --bin ablation`.
//! `GNNAV_SCALE` (default 0.25) and `GNNAV_EPOCHS` (default 2).

use gnnav_bench::{env_epochs, env_scale, fmt_mem, fmt_pct, fmt_time, print_table};
use gnnav_cache::CachePolicy;
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, SamplerKind, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.25);
    let epochs = env_epochs(2);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, scale)?;
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs, ..Default::default() };
    let base = TrainingConfig {
        batch_size: 128,
        cache_policy: CachePolicy::StaticDegree,
        cache_ratio: 0.1,
        model: ModelKind::Sage,
        hidden_dim: 32,
        ..TrainingConfig::default()
    };

    println!("# Axis-sensitivity ablation on Reddit2 + SAGE");
    println!("# (scale {scale}, {epochs} epochs; one axis varied at a time)");
    println!("# baseline: {}\n", base.summary());

    type Variant = (&'static str, String, TrainingConfig);
    let mut variants: Vec<Variant> = Vec::new();
    let mut push = |axis: &'static str, value: String, config: TrainingConfig| {
        variants.push((axis, value, config));
    };

    for sampler in SamplerKind::ALL {
        push("sampler", sampler.to_string(), TrainingConfig { sampler, ..base.clone() });
    }
    for fanouts in [vec![5, 5], vec![10, 10], vec![25, 10], vec![10, 10, 5]] {
        push("fanouts", format!("{fanouts:?}"), TrainingConfig { fanouts, ..base.clone() });
    }
    for eta in [0.0, 0.5, 1.0] {
        push("eta", format!("{eta:.1}"), TrainingConfig { locality_eta: eta, ..base.clone() });
    }
    for batch in [64, 128, 256] {
        push("batch", batch.to_string(), TrainingConfig { batch_size: batch, ..base.clone() });
    }
    for ratio in [0.0, 0.1, 0.3, 0.5] {
        let (cache_policy, cache_ratio) = if ratio == 0.0 {
            (CachePolicy::None, 0.0)
        } else {
            (CachePolicy::StaticDegree, ratio)
        };
        push(
            "cache_ratio",
            format!("{ratio:.1}"),
            TrainingConfig { cache_policy, cache_ratio, ..base.clone() },
        );
    }
    for policy in [CachePolicy::StaticDegree, CachePolicy::Fifo, CachePolicy::Lru, CachePolicy::Lfu]
    {
        push(
            "cache_policy",
            policy.to_string(),
            TrainingConfig { cache_policy: policy, ..base.clone() },
        );
    }
    for pipelined in [false, true] {
        push("pipelined", pipelined.to_string(), TrainingConfig { pipelined, ..base.clone() });
    }
    for precision in [gnnav_hwsim::Precision::Fp32, gnnav_hwsim::Precision::Fp16] {
        push("precision", precision.to_string(), TrainingConfig { precision, ..base.clone() });
    }
    for dropout in [0.0, 0.2, 0.5] {
        push("dropout", format!("{dropout:.1}"), TrainingConfig { dropout, ..base.clone() });
    }

    let mut rows = Vec::new();
    let mut last_axis = "";
    for (axis, value, config) in &variants {
        let perf = backend.execute(&dataset, config, &opts)?.perf;
        rows.push(vec![
            if axis == &last_axis { String::new() } else { (*axis).to_string() },
            value.clone(),
            fmt_time(perf.epoch_time),
            fmt_mem(perf.peak_mem_bytes),
            fmt_pct(perf.accuracy),
            format!("{:.2}", perf.hit_rate),
        ]);
        last_axis = axis;
    }
    print_table(&["axis", "value", "Time", "Memory", "Accuracy", "hit"], &rows);
    Ok(())
}
