//! Regenerates **Table 2**: validation of estimator prediction.
//!
//! Leave-one-dataset-out protocol (paper §4.1): the gray-box estimator
//! is fitted on profiles from every dataset *except* the one under
//! validation (plus randomly generated power-law graphs as data
//! enhancement), then scored on the held-out dataset with R² for time
//! and memory and MSE for accuracy.
//!
//! Run with `cargo run --release -p gnnav-bench --bin table2`.
//! `GNNAV_SCALE` (default 0.2) shrinks the graphs.

use gnnav_bench::{env_scale, print_table};
use gnnav_estimator::{GrayBoxEstimator, ProfileDb, Profiler};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = env_scale(0.2);
    let samples = 60usize;
    // The paper validates on Reddit, Reddit2, and Ogbn-products.
    let validation_targets = [DatasetId::Reddit, DatasetId::Reddit2, DatasetId::OgbnProducts];
    // All benchmark datasets contribute profiles.
    let profile_sources = DatasetId::ALL;

    println!("# Table 2: Validation of estimator prediction");
    println!("# (leave-one-dataset-out, {samples} configs/dataset, scale {scale})\n");

    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(6),
            ..Default::default()
        },
    );

    let mut db = ProfileDb::new();
    for (i, id) in profile_sources.iter().enumerate() {
        let started = std::time::Instant::now();
        let dataset = Dataset::load_scaled(*id, scale)?;
        let configs = DesignSpace::standard().sample(samples, ModelKind::Sage, 17 + i as u64);
        db.merge(profiler.profile(&dataset, &configs)?);
        eprintln!(
            "profiled {} ({} records total, {:.0}s)",
            id,
            db.len(),
            started.elapsed().as_secs_f64()
        );
    }
    // Data enhancement: random power-law graphs (paper §4.1).
    let aug_configs = DesignSpace::standard().sample(20, ModelKind::Sage, 777);
    db.merge(profiler.profile_augmentation(3, 2000, &aug_configs, 31)?);
    eprintln!("augmented ({} records total)", db.len());

    let mut rows = Vec::new();
    let mut r2_t = vec!["R2 Score".to_string(), "Time Cost (T)".to_string()];
    let mut r2_m = vec![String::new(), "Memory (G)".to_string()];
    let mut mse_a = vec!["MSE".to_string(), "Accuracy (Acc)".to_string()];
    for id in validation_targets {
        let (_, report) = GrayBoxEstimator::leave_one_dataset_out(&db, id)?;
        r2_t.push(format!("{:.4}", report.r2_time));
        r2_m.push(format!("{:.4}", report.r2_memory));
        mse_a.push(format!("{:.4}", report.mse_accuracy));
    }
    rows.push(r2_t);
    rows.push(r2_m);
    rows.push(mse_a);
    print_table(&["Validation", "Performance Metric", "Reddit", "Reddit2", "Ogbn-products"], &rows);
    println!("\n(paper: R2 of T 0.73-0.84, R2 of G 0.73-0.98, MSE of Acc 0.016-0.029)");
    Ok(())
}
