//! Shared harness utilities for the GNNavigator benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | Binary   | Artifact | Content |
//! |----------|----------|---------|
//! | `table1` | Tab. 1   | Perf of baselines + guidelines on 3 tasks |
//! | `table2` | Tab. 2   | Estimator R²/MSE, leave-one-dataset-out |
//! | `fig1`   | Fig. 1   | PaGraph memory/speedup + 2PGraph accuracy trades |
//! | `fig5`   | Fig. 5   | Gray-box vs decision-tree batch-size scatter |
//! | `fig6`   | Fig. 6   | Exhausted design space + Pareto front + picks |
//!
//! All binaries accept the `GNNAV_SCALE` environment variable
//! (default experiment-specific) to shrink the dataset stand-ins for
//! quick smoke runs, and `GNNAV_EPOCHS` to override training epochs.

use gnnav_hwsim::SimTime;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, Template, TrainingConfig};

/// The design space with its batch axis adapted to the dataset scale
/// (the paper defines the space around full-size graphs; the
/// stand-ins shrink `|B^0|` proportionally so batch/graph ratios stay
/// in regime).
pub fn scaled_space(scale: f64) -> DesignSpace {
    let mut space = DesignSpace::standard();
    if scale < 0.75 {
        space.batch_sizes = vec![64, 128, 256];
    }
    space
}

/// Instantiates a baseline template with the batch size adapted to the
/// dataset scale: the 1:10-scale stand-ins use batch 256 at full
/// scale, halved below scale 0.75, so `|V_i|/|V|` stays in the regime
/// the original systems were measured in.
pub fn template_config(template: Template, model: ModelKind, scale: f64) -> TrainingConfig {
    let mut config = template.config(model);
    if scale < 0.75 {
        config.batch_size = 128;
    }
    config
}

/// Reads a scale factor from `GNNAV_SCALE`, falling back to `default`.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("GNNAV_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v: &f64| v.is_finite() && v > 0.0)
        .unwrap_or(default)
}

/// Reads an epoch count from `GNNAV_EPOCHS`, falling back to
/// `default`.
pub fn env_epochs(default: usize) -> usize {
    std::env::var("GNNAV_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or(default)
}

/// Formats a simulated duration with stable width for tables.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:>10}", t.to_string())
}

/// Formats bytes as megabytes.
pub fn fmt_mem(bytes: usize) -> String {
    format!("{:8.2} MB", bytes as f64 / 1e6)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Formats a speedup multiplier with the paper's arrow notation.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x{}", if x >= 1.0 { "\u{2191}" } else { "\u{2193}" })
}

/// Formats a relative memory delta with the paper's arrow notation.
pub fn fmt_mem_delta(delta: f64) -> String {
    if delta >= 0.0 {
        format!("{:.1}% \u{2191}", delta * 100.0)
    } else {
        format!("{:.1}% \u{2193}", -delta * 100.0)
    }
}

/// Prints an aligned text table: a header row, a separator, and rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (c, cell) in cells.iter().enumerate().take(cols) {
            let pad = widths[c].saturating_sub(cell.chars().count());
            line.push(' ');
            line.push_str(cell);
            line.push_str(&" ".repeat(pad));
            line.push_str(" |");
        }
        println!("{line}");
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    println!("{sep}");
    for row in rows {
        fmt_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert!(fmt_time(SimTime::from_secs(1.0)).contains("1.000s"));
        assert_eq!(fmt_mem(2_500_000).trim(), "2.50 MB");
        assert_eq!(fmt_pct(0.7931).trim(), "79.31%");
        assert!(fmt_speedup(2.5).starts_with("2.50x"));
        assert!(fmt_mem_delta(-0.449).contains("44.9%"));
        assert!(fmt_mem_delta(0.691).contains("69.1%"));
    }

    #[test]
    fn scaled_space_shrinks_batches() {
        assert_eq!(scaled_space(0.5).batch_sizes, vec![64, 128, 256]);
        assert_eq!(scaled_space(1.0).batch_sizes, DesignSpace::standard().batch_sizes);
    }

    #[test]
    fn template_config_scales_batch() {
        let full = template_config(Template::Pyg, ModelKind::Sage, 1.0);
        let half = template_config(Template::Pyg, ModelKind::Sage, 0.5);
        assert_eq!(full.batch_size, 256);
        assert_eq!(half.batch_size, 128);
    }

    #[test]
    fn env_scale_defaults_when_unset() {
        std::env::remove_var("GNNAV_SCALE");
        assert_eq!(env_scale(0.5), 0.5);
        std::env::remove_var("GNNAV_EPOCHS");
        assert_eq!(env_epochs(3), 3);
    }
}
