//! Shared harness utilities for the GNNavigator benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | Binary   | Artifact | Content |
//! |----------|----------|---------|
//! | `table1` | Tab. 1   | Perf of baselines + guidelines on 3 tasks |
//! | `table2` | Tab. 2   | Estimator R²/MSE, leave-one-dataset-out |
//! | `fig1`   | Fig. 1   | PaGraph memory/speedup + 2PGraph accuracy trades |
//! | `fig5`   | Fig. 5   | Gray-box vs decision-tree batch-size scatter |
//! | `fig6`   | Fig. 6   | Exhausted design space + Pareto front + picks |
//!
//! All binaries accept the `GNNAV_SCALE` environment variable
//! (default experiment-specific) to shrink the dataset stand-ins for
//! quick smoke runs, and `GNNAV_EPOCHS` to override training epochs.

use gnnav_hwsim::SimTime;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, Template, TrainingConfig};

/// The design space with its batch axis adapted to the dataset scale
/// (the paper defines the space around full-size graphs; the
/// stand-ins shrink `|B^0|` proportionally so batch/graph ratios stay
/// in regime).
pub fn scaled_space(scale: f64) -> DesignSpace {
    let mut space = DesignSpace::standard();
    if scale < 0.75 {
        space.batch_sizes = vec![64, 128, 256];
    }
    space
}

/// Instantiates a baseline template with the batch size adapted to the
/// dataset scale: the 1:10-scale stand-ins use batch 256 at full
/// scale, halved below scale 0.75, so `|V_i|/|V|` stays in the regime
/// the original systems were measured in.
pub fn template_config(template: Template, model: ModelKind, scale: f64) -> TrainingConfig {
    let mut config = template.config(model);
    if scale < 0.75 {
        config.batch_size = 128;
    }
    config
}

/// Measured single-thread GFLOP/s floor for the `matmul` criterion
/// bench on a 256x256x256 problem (see `benches/nn_kernels.rs`).
///
/// The value is the gate the `kernel-bench` CI job and
/// `perf_baseline` enforce: the scalar PR 4 kernels measured
/// 7.6 GFLOP/s on the reference runner and the vectorized lane
/// kernels measure 21-24, so the floor sits at slightly above 2x the
/// old kernels and ~30% below the new ones — it fails on a genuine
/// kernel regression (or a return to scalar code) but not on ordinary
/// machine noise. The same number is recorded in `BENCH_nn.json` as
/// the `nn.matmul_gflops_floor` counter so `metrics-diff` flags any
/// attempt to quietly lower it.
pub const MATMUL_GFLOPS_FLOOR: f64 = 16.0;

/// Measures dense-matmul throughput in GFLOP/s for an `n x n x n`
/// problem at the given pool width, timing `reps` back-to-back calls
/// (after one untimed warmup) against the classical `2n^3` FLOP
/// count.
pub fn measure_matmul_gflops(n: usize, threads: usize, reps: usize) -> f64 {
    use gnnav_nn::init::glorot_uniform;
    let a = glorot_uniform(n, n, 1);
    let b = glorot_uniform(n, n, 2);
    let mut out = gnnav_nn::Matrix::zeros(n, n);
    gnnav_par::with_thread_limit(threads, || {
        a.matmul_into(&b, &mut out);
        let start = std::time::Instant::now();
        for _ in 0..reps {
            a.matmul_into(&b, &mut out);
        }
        let secs = start.elapsed().as_secs_f64();
        let flops = 2.0 * (n as f64).powi(3) * reps as f64;
        flops / secs / 1e9
    })
}

/// Best-of-`samples` throughput measurement: wall-clock benches on a
/// shared runner are noisy in one direction only (interference slows
/// them down), so the maximum over a few short samples is the right
/// statistic to compare against [`MATMUL_GFLOPS_FLOOR`].
pub fn best_matmul_gflops(n: usize, threads: usize, samples: usize) -> f64 {
    (0..samples.max(1)).map(|_| measure_matmul_gflops(n, threads, 4)).fold(0.0f64, f64::max)
}

/// Reads a scale factor from `GNNAV_SCALE`, falling back to `default`.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("GNNAV_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v: &f64| v.is_finite() && v > 0.0)
        .unwrap_or(default)
}

/// Reads an epoch count from `GNNAV_EPOCHS`, falling back to
/// `default`.
pub fn env_epochs(default: usize) -> usize {
    std::env::var("GNNAV_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or(default)
}

/// Formats a simulated duration with stable width for tables.
pub fn fmt_time(t: SimTime) -> String {
    format!("{:>10}", t.to_string())
}

/// Formats bytes as megabytes.
pub fn fmt_mem(bytes: usize) -> String {
    format!("{:8.2} MB", bytes as f64 / 1e6)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Formats a speedup multiplier with the paper's arrow notation.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x{}", if x >= 1.0 { "\u{2191}" } else { "\u{2193}" })
}

/// Formats a relative memory delta with the paper's arrow notation.
pub fn fmt_mem_delta(delta: f64) -> String {
    if delta >= 0.0 {
        format!("{:.1}% \u{2191}", delta * 100.0)
    } else {
        format!("{:.1}% \u{2193}", -delta * 100.0)
    }
}

/// Prints an aligned text table: a header row, a separator, and rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (c, cell) in cells.iter().enumerate().take(cols) {
            let pad = widths[c].saturating_sub(cell.chars().count());
            line.push(' ');
            line.push_str(cell);
            line.push_str(&" ".repeat(pad));
            line.push_str(" |");
        }
        println!("{line}");
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    println!("{sep}");
    for row in rows {
        fmt_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert!(fmt_time(SimTime::from_secs(1.0)).contains("1.000s"));
        assert_eq!(fmt_mem(2_500_000).trim(), "2.50 MB");
        assert_eq!(fmt_pct(0.7931).trim(), "79.31%");
        assert!(fmt_speedup(2.5).starts_with("2.50x"));
        assert!(fmt_mem_delta(-0.449).contains("44.9%"));
        assert!(fmt_mem_delta(0.691).contains("69.1%"));
    }

    #[test]
    fn scaled_space_shrinks_batches() {
        assert_eq!(scaled_space(0.5).batch_sizes, vec![64, 128, 256]);
        assert_eq!(scaled_space(1.0).batch_sizes, DesignSpace::standard().batch_sizes);
    }

    #[test]
    fn template_config_scales_batch() {
        let full = template_config(Template::Pyg, ModelKind::Sage, 1.0);
        let half = template_config(Template::Pyg, ModelKind::Sage, 0.5);
        assert_eq!(full.batch_size, 256);
        assert_eq!(half.batch_size, 128);
    }

    #[test]
    fn env_scale_defaults_when_unset() {
        std::env::remove_var("GNNAV_SCALE");
        assert_eq!(env_scale(0.5), 0.5);
        std::env::remove_var("GNNAV_EPOCHS");
        assert_eq!(env_epochs(3), 3);
    }
}
