//! Criterion benches for the gray-box estimator: fit cost,
//! per-candidate prediction latency (the paper claims "negligible
//! latency"), and gray-box vs. black-box fitting cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gnnav_estimator::{
    BatchSizePredictor, BlackBoxBatchSize, Context, GrayBoxEstimator, ProfileDb, Profiler,
};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, TrainingConfig};

fn profiled_db() -> (Dataset, ProfileDb) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            ..Default::default()
        },
    );
    let configs = DesignSpace::standard().sample(40, ModelKind::Sage, 11);
    let db = profiler.profile(&dataset, &configs).expect("profile");
    (dataset, db)
}

fn bench_fit_and_predict(c: &mut Criterion) {
    let (dataset, db) = profiled_db();
    let mut group = c.benchmark_group("estimator");
    group.sample_size(10);
    group.bench_function("fit_full_gray_box", |b| {
        b.iter(|| {
            let mut est = GrayBoxEstimator::new();
            est.fit(&db).expect("fit");
            est
        });
    });
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    let ctx = Context::new(&dataset, &Platform::default_rtx4090(), TrainingConfig::default());
    group.bench_function("predict_one_candidate", |b| {
        b.iter(|| est.predict(&ctx));
    });
    group.finish();
}

fn bench_gray_vs_black_fit(c: &mut Criterion) {
    let (_, db) = profiled_db();
    let mut group = c.benchmark_group("batch_size_model_fit");
    group.sample_size(10);
    group.bench_function("gray_box_ridge", |b| {
        b.iter(|| {
            let mut m = BatchSizePredictor::new();
            m.fit(&db).expect("fit");
            m
        });
    });
    group.bench_function("black_box_tree", |b| {
        b.iter(|| {
            let mut m = BlackBoxBatchSize::new();
            m.fit(&db).expect("fit");
            m
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fit_and_predict, bench_gray_vs_black_fit);
criterion_main!(benches);
