//! Criterion benches for the explorer: DFS throughput at different
//! budgets, Pareto-front extraction, and the decision maker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnav_estimator::{GrayBoxEstimator, Profiler};
use gnnav_explorer::{decide, pareto_front_indices, DfsExplorer, Priority, RuntimeConstraints};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup() -> (Dataset, GrayBoxEstimator) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions::timing_only(),
    );
    let configs = DesignSpace::standard().sample(30, ModelKind::Sage, 13);
    let db = profiler.profile(&dataset, &configs).expect("profile");
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    (dataset, est)
}

fn bench_dfs_budgets(c: &mut Criterion) {
    let (dataset, est) = setup();
    let platform = Platform::default_rtx4090();
    let mut group = c.benchmark_group("dfs_exploration");
    group.sample_size(10);
    for budget in [100usize, 500, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            let dfs = DfsExplorer::new(DesignSpace::standard(), budget, 1);
            b.iter(|| {
                dfs.run(
                    &est,
                    &dataset,
                    &platform,
                    ModelKind::Sage,
                    &RuntimeConstraints::none(),
                    &[],
                )
            });
        });
    }
    group.finish();
}

fn bench_pareto_and_decision(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<[f64; 3]> =
        (0..2000).map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), -rng.gen::<f64>()]).collect();
    let mut group = c.benchmark_group("pareto");
    group.sample_size(20);
    group.bench_function("front_2000_points", |b| {
        b.iter(|| pareto_front_indices(&points));
    });

    // Decision making over real evaluated candidates.
    let (dataset, est) = setup();
    let dfs = DfsExplorer::new(DesignSpace::standard(), 500, 7);
    let (cands, _) = dfs.run(
        &est,
        &dataset,
        &Platform::default_rtx4090(),
        ModelKind::Sage,
        &RuntimeConstraints::none(),
        &[],
    );
    group.bench_function("decide_over_500_candidates", |b| {
        b.iter(|| decide(&cands, Priority::Balance));
    });
    group.finish();
}

fn bench_search_strategy_ablation(c: &mut Criterion) {
    // DFS vs evolutionary search at the same evaluation budget — the
    // search-strategy design choice DESIGN.md calls out.
    use gnnav_explorer::{EvolutionParams, EvolutionarySearch};
    let (dataset, est) = setup();
    let platform = Platform::default_rtx4090();
    let mut group = c.benchmark_group("search_strategy_ablation");
    group.sample_size(10);
    group.bench_function("dfs_600", |b| {
        let dfs = DfsExplorer::new(DesignSpace::standard(), 600, 3);
        b.iter(|| {
            dfs.run(&est, &dataset, &platform, ModelKind::Sage, &RuntimeConstraints::none(), &[])
        });
    });
    group.bench_function("evolution_600", |b| {
        let search = EvolutionarySearch::new(
            DesignSpace::standard(),
            EvolutionParams { budget: 600, ..Default::default() },
        );
        b.iter(|| {
            search.run(
                &est,
                &dataset,
                &platform,
                ModelKind::Sage,
                Priority::Balance,
                &RuntimeConstraints::none(),
                &[],
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dfs_budgets,
    bench_pareto_and_decision,
    bench_search_strategy_ablation
);
criterion_main!(benches);
