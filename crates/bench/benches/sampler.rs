//! Criterion benches for the sampling substrate: throughput of the
//! three sampler families and a fanout ablation for the node-wise
//! sampler (the sampling axis of the design space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnav_graph::generators::barabasi_albert;
use gnnav_sampler::{
    LayerWiseSampler, LocalityBias, NodeWiseSampler, Sampler, SubgraphWiseSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampler_families(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, 1).expect("gen");
    let targets: Vec<u32> = (0..256).collect();
    let none = || LocalityBias::none(g.num_nodes());
    let mut group = c.benchmark_group("sampler_families");
    group.sample_size(20);
    group.bench_function("node_wise_25_10", |b| {
        let s = NodeWiseSampler::new(vec![25, 10], none());
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
    });
    group.bench_function("layer_wise_1600x2", |b| {
        let s = LayerWiseSampler::new(vec![1600, 1600], none());
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
    });
    group.bench_function("subgraph_wise_walk35", |b| {
        let s = SubgraphWiseSampler::new(35, none());
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
    });
    group.finish();
}

fn bench_fanout_ablation(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, 5).expect("gen");
    let targets: Vec<u32> = (0..256).collect();
    let mut group = c.benchmark_group("node_wise_fanout_ablation");
    group.sample_size(20);
    for k in [5usize, 10, 15, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let s = NodeWiseSampler::new(vec![k, k], LocalityBias::none(g.num_nodes()));
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
        });
    }
    group.finish();
}

fn bench_locality_bias_overhead(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, 7).expect("gen");
    let targets: Vec<u32> = (0..256).collect();
    let hot: Vec<u32> = (0..2000).collect();
    let mut group = c.benchmark_group("locality_bias_overhead");
    group.sample_size(20);
    group.bench_function("unbiased", |b| {
        let s = NodeWiseSampler::new(vec![10, 10], LocalityBias::none(g.num_nodes()));
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
    });
    group.bench_function("biased_eta_075", |b| {
        let s = NodeWiseSampler::new(vec![10, 10], LocalityBias::new(g.num_nodes(), &hot, 0.75));
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| s.sample(&g, &targets, &mut rng).expect("sample"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampler_families,
    bench_fanout_ablation,
    bench_locality_bias_overhead
);
criterion_main!(benches);
