//! Criterion benches for the device feature-cache policies: lookup +
//! update throughput per policy (the transmission axis of the design
//! space) and a cache-ratio ablation for the static cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnav_cache::{build_cache, CachePolicy};
use gnnav_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn access_batches(num_nodes: usize, batches: usize, batch: usize, seed: u64) -> Vec<Vec<u32>> {
    // Degree-skewed accesses: preferential to low ids (BA hubs).
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>();
                    ((u * u) * num_nodes as f64) as u32
                })
                .collect()
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let g = barabasi_albert(50_000, 6, 1).expect("gen");
    let batches = access_batches(g.num_nodes(), 50, 4096, 2);
    let mut group = c.benchmark_group("cache_policies");
    group.sample_size(20);
    for policy in CachePolicy::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &policy| {
            b.iter(|| {
                let mut cache = build_cache(policy, 10_000, &g);
                let mut hits = 0usize;
                for batch in &batches {
                    let out = cache.lookup(batch);
                    hits += out.hits.len();
                    cache.update(&out.misses);
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_static_cache_ratio_ablation(c: &mut Criterion) {
    let g = barabasi_albert(50_000, 6, 3).expect("gen");
    let batches = access_batches(g.num_nodes(), 50, 4096, 4);
    let mut group = c.benchmark_group("static_cache_ratio_ablation");
    group.sample_size(20);
    for ratio in [5usize, 20, 50] {
        let entries = g.num_nodes() * ratio / 100;
        group.bench_with_input(BenchmarkId::new("ratio_pct", ratio), &entries, |b, &entries| {
            b.iter(|| {
                let mut cache = build_cache(CachePolicy::StaticDegree, entries, &g);
                let mut hits = 0usize;
                for batch in &batches {
                    hits += cache.lookup(batch).hits.len();
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_static_cache_ratio_ablation);
criterion_main!(benches);
