//! Criterion benches for the reconfigurable runtime backend: one
//! timing-only epoch per baseline template plus a pipelining ablation
//! (the Eq. 4 `max`-vs-sum design choice DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, Template, TrainingConfig};

fn bench_templates(c: &mut Criterion) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions::timing_only();
    let mut group = c.benchmark_group("backend_templates");
    group.sample_size(10);
    for template in Template::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(template), &template, |b, &template| {
            let config = template.config(ModelKind::Sage);
            b.iter(|| backend.execute(&dataset, &config, &opts).expect("run"));
        });
    }
    group.finish();
}

fn bench_pipelining_ablation(c: &mut Criterion) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions::timing_only();
    let mut group = c.benchmark_group("pipelining_ablation");
    group.sample_size(10);
    for pipelined in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("pipelined", pipelined),
            &pipelined,
            |b, &pipelined| {
                let config = TrainingConfig { pipelined, ..TrainingConfig::default() };
                b.iter(|| backend.execute(&dataset, &config, &opts).expect("run"));
            },
        );
    }
    group.finish();
}

fn bench_training_step_included(c: &mut Criterion) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let mut group = c.benchmark_group("backend_with_training");
    group.sample_size(10);
    group.bench_function("one_epoch_trained", |b| {
        let config = TrainingConfig { batch_size: 128, hidden_dim: 32, ..Default::default() };
        let opts = ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(4),
            ..Default::default()
        };
        b.iter(|| backend.execute(&dataset, &config, &opts).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, bench_templates, bench_pipelining_ablation, bench_training_step_included);
criterion_main!(benches);
