//! Overhead of the gnnav-obs instrumentation compiled into
//! `RuntimeBackend::execute`.
//!
//! The disabled registry must be near-free (one relaxed atomic load
//! per instrumented site): the `disabled` and `enabled` groups time
//! the identical workload with the global registry off and on, and the
//! `registry_primitives` group pins the per-call cost of the disabled
//! recording paths themselves.
//!
//! The `enabled` primitive group pins the cost ceiling of the hot
//! recording paths: `observe` through the thread-local histogram-cell
//! cache (one global-lock acquisition per name per thread, amortized
//! to a TLS hash lookup), `observe` through a pre-registered
//! [`gnnav_obs::Histogram`] handle (no lookup at all), and the
//! name-keyed counter/span paths for comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};

fn bench_execute_disabled_vs_enabled(c: &mut Criterion) {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions::timing_only();
    let config = TrainingConfig::default();
    let mut group = c.benchmark_group("obs_overhead_execute");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        gnnav_obs::global().enable(false);
        b.iter(|| backend.execute(&dataset, &config, &opts).expect("run"));
    });
    group.bench_function("enabled", |b| {
        gnnav_obs::global().enable(true);
        b.iter(|| backend.execute(&dataset, &config, &opts).expect("run"));
        gnnav_obs::global().enable(false);
        gnnav_obs::global().reset();
    });
    group.finish();
}

fn bench_registry_primitives(c: &mut Criterion) {
    let registry = gnnav_obs::Registry::new();
    let mut group = c.benchmark_group("obs_registry_primitives");
    group.bench_function("disabled_counter_add", |b| {
        b.iter(|| registry.add(black_box("bench.counter"), black_box(1)));
    });
    group.bench_function("disabled_gauge_set", |b| {
        b.iter(|| registry.gauge_set(black_box("bench.gauge"), black_box(1.5)));
    });
    group.bench_function("disabled_span", |b| {
        b.iter(|| drop(registry.span(black_box("bench.span"))));
    });
    group.finish();
}

fn bench_registry_enabled_paths(c: &mut Criterion) {
    let registry = gnnav_obs::Registry::new();
    registry.enable(true);
    let mut group = c.benchmark_group("obs_registry_enabled");
    group.bench_function("enabled_counter_add", |b| {
        b.iter(|| registry.add(black_box("bench.counter"), black_box(1)));
    });
    group.bench_function("enabled_observe_tls_cached", |b| {
        // First call populates the thread-local cell cache; steady
        // state is a TLS HashMap hit plus one cell-mutex lock.
        b.iter(|| registry.observe(black_box("bench.hist"), black_box(1.5e-3)));
    });
    group.bench_function("enabled_observe_preregistered", |b| {
        let hist = registry.histogram("bench.hist.handle");
        b.iter(|| hist.observe(black_box(1.5e-3)));
    });
    group.bench_function("enabled_counter_preregistered", |b| {
        let counter = registry.counter("bench.counter.handle");
        b.iter(|| counter.add(black_box(1)));
    });
    group.bench_function("enabled_span", |b| {
        b.iter(|| drop(registry.span(black_box("bench.span"))));
    });
    group.finish();
}

fn bench_alloc_tracking(c: &mut Criterion) {
    // The counting global allocator wraps every workspace allocation,
    // so its passthrough (tracking off: one relaxed load) and
    // tracking (four atomic RMWs per alloc/free pair) costs bound
    // what `Registry::enable` adds to *all* code, not just
    // instrumented sites. The workload is one Vec round trip — the
    // hot-path shape the steady-state gate cares about.
    let mut group = c.benchmark_group("obs_alloc_tracking");
    group.bench_function("passthrough_alloc_free", |b| {
        gnnav_obs::alloc::set_tracking(false);
        b.iter(|| drop(black_box(Vec::<u8>::with_capacity(black_box(256)))));
    });
    group.bench_function("tracking_alloc_free", |b| {
        gnnav_obs::alloc::set_tracking(true);
        b.iter(|| drop(black_box(Vec::<u8>::with_capacity(black_box(256)))));
        gnnav_obs::alloc::set_tracking(false);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_execute_disabled_vs_enabled,
    bench_registry_primitives,
    bench_registry_enabled_paths,
    bench_alloc_tracking
);
criterion_main!(benches);
