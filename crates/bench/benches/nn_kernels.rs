//! Criterion benches for the NN substrate: dense matmul and per-model
//! forward+backward training steps (the computation axis the paper's
//! `f_compute` models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnnav_graph::generators::barabasi_albert;
use gnnav_nn::init::glorot_uniform;
use gnnav_nn::{train, Adam, GnnModel, Matrix, ModelKind};

/// Hard throughput gate, not a measurement: single-thread 256³ matmul
/// must clear [`gnnav_bench::MATMUL_GFLOPS_FLOOR`] GFLOP/s (set ~30%
/// below what the vectorized lane kernels measure, and above 2× the
/// scalar kernels they replaced). Takes the best of a few samples so
/// one descheduled run can't fail the gate; a genuine regression —
/// e.g. reintroducing bounds checks into the inner loops — still
/// lands far below the floor on every sample.
fn assert_matmul_throughput_floor(_c: &mut Criterion) {
    let gflops = gnnav_bench::best_matmul_gflops(256, 1, 3);
    println!(
        "matmul_floor/256x256x256 (1 thread): {gflops:.2} GFLOP/s (floor {:.1})",
        gnnav_bench::MATMUL_GFLOPS_FLOOR
    );
    assert!(
        gflops >= gnnav_bench::MATMUL_GFLOPS_FLOOR,
        "single-thread matmul throughput {gflops:.2} GFLOP/s fell below the \
         committed floor of {:.1} — the lane kernels regressed",
        gnnav_bench::MATMUL_GFLOPS_FLOOR
    );
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let a = glorot_uniform(n, n, 1);
        let b = glorot_uniform(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_train_step_per_model(c: &mut Criterion) {
    let g = barabasi_albert(2000, 6, 3).expect("gen");
    let feat_dim = 64;
    let classes = 8;
    let x = glorot_uniform(g.num_nodes(), feat_dim, 4);
    let labels: Vec<u16> = (0..g.num_nodes()).map(|v| (v % classes) as u16).collect();
    let targets: Vec<u32> = (0..256).collect();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |bench, &kind| {
            let mut model = GnnModel::new(kind, feat_dim, 32, classes, 2, 5);
            let mut opt = Adam::new(0.01);
            bench.iter(|| train::train_step(&mut model, &mut opt, &g, &x, &labels, &targets));
        });
    }
    group.finish();
}

/// The speedup axis: the same matmul and full training step at pool
/// widths 1/2/4/8. On a multi-core runner the wider variants should
/// approach `min(width, cores)`x; results stay bitwise identical
/// regardless (see `crates/nn/tests/parallel_identity.rs`).
fn bench_thread_sweep(c: &mut Criterion) {
    let n = 256usize;
    let a = glorot_uniform(n, n, 1);
    let b = glorot_uniform(n, n, 2);
    let mut group = c.benchmark_group("matmul_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| gnnav_par::with_thread_limit(t, || a.matmul(&b)));
        });
    }
    group.finish();

    let g = barabasi_albert(2000, 6, 3).expect("gen");
    let x = glorot_uniform(g.num_nodes(), 64, 4);
    let labels: Vec<u16> = (0..g.num_nodes()).map(|v| (v % 8) as u16).collect();
    let targets: Vec<u32> = (0..256).collect();
    let mut group = c.benchmark_group("train_step_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            let mut model = GnnModel::new(ModelKind::Gat, 64, 32, 8, 2, 5);
            let mut opt = Adam::new(0.01);
            bench.iter(|| {
                gnnav_par::with_thread_limit(t, || {
                    train::train_step(&mut model, &mut opt, &g, &x, &labels, &targets)
                })
            });
        });
    }
    group.finish();
}

fn bench_forward_only(c: &mut Criterion) {
    let g = barabasi_albert(2000, 6, 7).expect("gen");
    let x = glorot_uniform(g.num_nodes(), 64, 8);
    let mut group = c.benchmark_group("forward");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |bench, &kind| {
            let mut model = GnnModel::new(kind, 64, 32, 8, 2, 9);
            bench.iter(|| {
                let out: Matrix = model.forward(&g, &x);
                out
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    assert_matmul_throughput_floor,
    bench_matmul,
    bench_train_step_per_model,
    bench_thread_sweep,
    bench_forward_only
);
criterion_main!(benches);
