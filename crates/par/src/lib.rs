//! Deterministic fork-join parallelism for the compute kernels.
//!
//! Every helper in this crate partitions work into **fixed, static
//! chunks** whose boundaries do not depend on the number of worker
//! threads, and every chunk is processed by exactly one serial call of
//! the user closure. A kernel written on top of [`par_chunks`] or
//! [`par_map_indexed`] therefore produces *bitwise identical* results
//! whether it runs on 1 thread or 8 — the only thing the thread count
//! changes is which OS thread executes which chunk. This is the
//! property the determinism suite and the `(seed, plan)` fault
//! reproducibility contract rely on.
//!
//! # Pool sizing
//!
//! The worker budget is resolved per parallel region, in order:
//!
//! 1. `1` if the calling thread is itself a pool worker (nested
//!    regions degrade to serial instead of exploding thread counts);
//! 2. an explicit [`with_thread_limit`] override on the calling
//!    thread (used by tests and the perf baseline);
//! 3. the `GNNAV_THREADS` environment variable, read once, clamped to
//!    `1..=`[`MAX_POOL_THREADS`];
//! 4. `std::thread::available_parallelism()` otherwise.
//!
//! Independently, an active [`PoolClaim`] (registered by e.g. the
//! profiler before it fans out its own worker threads) divides the
//! budget so that `outer workers x inner kernel threads` never exceeds
//! the hardware parallelism.
//!
//! Threads are scoped (forked and joined per region) rather than kept
//! in a persistent pool: regions below the work threshold run inline
//! on the caller with zero scheduling overhead, and there is no global
//! mutable executor state to poison.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard upper bound on the per-region worker budget, whatever
/// `GNNAV_THREADS` says.
pub const MAX_POOL_THREADS: usize = 64;

thread_local! {
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Outer worker threads registered through [`PoolClaim`].
static OUTER_CLAIM: AtomicUsize = AtomicUsize::new(0);

static REGIONS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static HELPERS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Hardware parallelism (1 if it cannot be queried).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GNNAV_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map_or_else(hardware_threads, |n| n.clamp(1, MAX_POOL_THREADS))
            .clamp(1, MAX_POOL_THREADS)
    })
}

/// Runs `f` with the calling thread's worker budget overridden to `n`
/// (clamped to `1..=`[`MAX_POOL_THREADS`]), restoring the previous
/// override afterwards. The override may exceed the hardware thread
/// count — the determinism proptests use that to sweep 1/2/4/8 workers
/// on any machine.
pub fn with_thread_limit<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.clamp(1, MAX_POOL_THREADS);
    THREAD_LIMIT.with(|limit| {
        let prev = limit.replace(n);
        let out = f();
        limit.set(prev);
        out
    })
}

/// A registration of `workers` externally managed threads (e.g. the
/// profiler sweep) that will each call into the kernels. While any
/// claim is alive, per-region budgets are divided by the total claimed
/// worker count so the process never oversubscribes the hardware.
#[derive(Debug)]
pub struct PoolClaim {
    workers: usize,
}

impl PoolClaim {
    /// Registers `workers` outer threads; the claim is released on
    /// drop.
    pub fn register(workers: usize) -> Self {
        let workers = workers.max(1);
        OUTER_CLAIM.fetch_add(workers, Ordering::SeqCst);
        PoolClaim { workers }
    }

    /// Number of outer workers this claim registered.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for PoolClaim {
    fn drop(&mut self) {
        OUTER_CLAIM.fetch_sub(self.workers, Ordering::SeqCst);
    }
}

/// Total outer workers currently claimed (0 when no sweep is active).
pub fn claimed_workers() -> usize {
    OUTER_CLAIM.load(Ordering::SeqCst)
}

/// The worker budget a parallel region started on this thread would
/// get right now.
pub fn effective_threads() -> usize {
    if IN_POOL_WORKER.with(Cell::get) {
        return 1;
    }
    let base = {
        let explicit = THREAD_LIMIT.with(Cell::get);
        if explicit > 0 {
            explicit
        } else {
            env_threads()
        }
    };
    let claimed = claimed_workers();
    if claimed > 1 {
        // Keep outer x inner <= max(hardware, outer): each of the
        // `claimed` outer workers gets an equal share of the machine.
        base.min((hardware_threads() / claimed).max(1))
    } else {
        base
    }
}

/// Cumulative counters for observability; see [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Parallel regions entered (including ones that ran inline).
    pub regions: u64,
    /// Chunk-run tasks executed across all regions.
    pub tasks: u64,
    /// Helper threads actually spawned (0 when everything ran inline).
    pub helpers_spawned: u64,
}

/// Snapshot of the process-wide counters.
pub fn stats() -> Stats {
    Stats {
        regions: REGIONS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        helpers_spawned: HELPERS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// Marks the current thread as a pool worker until dropped, so nested
/// regions (including on the caller's own thread while it chews its
/// chunk) run inline.
struct WorkerFlagGuard {
    prev: bool,
}

impl WorkerFlagGuard {
    fn set() -> Self {
        WorkerFlagGuard { prev: IN_POOL_WORKER.with(|w| w.replace(true)) }
    }
}

impl Drop for WorkerFlagGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL_WORKER.with(|w| w.set(prev));
    }
}

/// Plans how many workers a region over `items` units (with at least
/// `grain` units per worker) should use.
fn plan_width(items: usize, grain: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    let budget = effective_threads();
    if budget <= 1 {
        return 1;
    }
    let max_useful = items / grain.max(1);
    budget.min(max_useful.max(1)).min(items)
}

/// Splits `0..len` into `parts` balanced contiguous ranges; part `t`.
fn split_range(len: usize, parts: usize, t: usize) -> Range<usize> {
    let base = len / parts;
    let rem = len % parts;
    let start = t * base + t.min(rem);
    let extra = usize::from(t < rem);
    start..start + base + extra
}

/// Processes `data` in contiguous `chunk_len`-sized pieces (the final
/// piece may be shorter), calling `f(item_offset, chunk)` once per
/// piece. Chunk boundaries depend only on `chunk_len`, never on the
/// thread count, so `f`'s view of the data is identical however many
/// workers run.
///
/// `grain` is the minimum number of chunks per worker before an extra
/// worker is worth spawning.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or if `f` panics on any chunk.
pub fn par_chunks<T, F>(data: &mut [T], chunk_len: usize, grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let nchunks = data.len().div_ceil(chunk_len);
    REGIONS.fetch_add(1, Ordering::Relaxed);
    let width = plan_width(nchunks, grain);
    if width <= 1 {
        TASKS.fetch_add(1, Ordering::Relaxed);
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci * chunk_len, chunk);
        }
        return;
    }
    TASKS.fetch_add(width as u64, Ordering::Relaxed);
    HELPERS_SPAWNED.fetch_add(width as u64 - 1, Ordering::Relaxed);

    // Carve the slice into `width` runs aligned to chunk boundaries.
    let mut runs: Vec<(usize, &mut [T])> = Vec::with_capacity(width);
    let mut rest = data;
    let mut offset = 0usize;
    for t in 0..width {
        let run_chunks = split_range(nchunks, width, t).len();
        let run_len = (run_chunks * chunk_len).min(rest.len());
        let (head, tail) = rest.split_at_mut(run_len);
        runs.push((offset, head));
        offset += run_len;
        rest = tail;
    }

    let f = &f;
    crossbeam::thread::scope(|s| {
        let mut runs = runs.into_iter();
        let (first_off, first_run) = runs.next().expect("width >= 1");
        for (off, run) in runs {
            s.spawn(move |_| {
                let _worker = WorkerFlagGuard::set();
                for (ci, chunk) in run.chunks_mut(chunk_len).enumerate() {
                    f(off + ci * chunk_len, chunk);
                }
            });
        }
        let _worker = WorkerFlagGuard::set();
        for (ci, chunk) in first_run.chunks_mut(chunk_len).enumerate() {
            f(first_off + ci * chunk_len, chunk);
        }
    })
    .expect("pool worker panicked");
}

/// Runs `f` over every task in `tasks`, in contiguous ascending runs
/// distributed across the worker budget. Each task is executed exactly
/// once; use this when a kernel needs pre-split disjoint mutable views
/// (e.g. two slices chunked on the same variable-width boundaries).
///
/// `grain` is the minimum number of tasks per worker.
pub fn par_for_tasks<T, F>(tasks: Vec<T>, grain: usize, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if tasks.is_empty() {
        return;
    }
    REGIONS.fetch_add(1, Ordering::Relaxed);
    let width = plan_width(tasks.len(), grain);
    if width <= 1 {
        TASKS.fetch_add(1, Ordering::Relaxed);
        for task in tasks {
            f(task);
        }
        return;
    }
    TASKS.fetch_add(width as u64, Ordering::Relaxed);
    HELPERS_SPAWNED.fetch_add(width as u64 - 1, Ordering::Relaxed);

    let total = tasks.len();
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(width);
    let mut iter = tasks.into_iter();
    for t in 0..width {
        let run_len = split_range(total, width, t).len();
        runs.push(iter.by_ref().take(run_len).collect());
    }

    let f = &f;
    crossbeam::thread::scope(|s| {
        let mut runs = runs.into_iter();
        let first = runs.next().expect("width >= 1");
        for run in runs {
            s.spawn(move |_| {
                let _worker = WorkerFlagGuard::set();
                for task in run {
                    f(task);
                }
            });
        }
        let _worker = WorkerFlagGuard::set();
        for task in first {
            f(task);
        }
    })
    .expect("pool worker panicked");
}

/// Runs `f` over every `(weight, task)` pair, in contiguous ascending
/// runs of roughly equal *total weight* distributed across the worker
/// budget. Weighted scheduling is what the degree-bucketed aggregation
/// schedules need: groups carry wildly uneven work (a hub row vs. a
/// batch of leaves), so splitting by task *count* would leave one
/// worker holding all the heavy groups.
///
/// Each task executes exactly once, serially, inside one worker — only
/// the run boundaries (never the task contents or any per-task
/// iteration order) depend on the worker budget, so kernels built on
/// this keep their bitwise thread-count invariance.
///
/// `grain_weight` is the minimum total weight per worker before an
/// extra worker is worth spawning. Zero-weight tasks are legal and run
/// with whichever run they land in.
pub fn par_for_weighted_tasks<T, F>(tasks: Vec<(u64, T)>, grain_weight: u64, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if tasks.is_empty() {
        return;
    }
    REGIONS.fetch_add(1, Ordering::Relaxed);
    let total: u64 = tasks.iter().map(|(w, _)| *w).sum();
    let budget = {
        let by_weight = (total / grain_weight.max(1)).max(1);
        let by_weight = usize::try_from(by_weight).unwrap_or(usize::MAX);
        plan_width(tasks.len(), 1).min(by_weight)
    };
    if budget <= 1 {
        TASKS.fetch_add(1, Ordering::Relaxed);
        for (_, task) in tasks {
            f(task);
        }
        return;
    }

    // Greedy contiguous carve: each run takes tasks until it reaches
    // its share of the remaining weight, so a single oversized task
    // simply becomes a run of its own.
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(budget);
    let mut run: Vec<T> = Vec::new();
    let mut run_weight = 0u64;
    let mut remaining = total;
    for (w, task) in tasks {
        let workers_left = budget - runs.len();
        let target = remaining.div_ceil(workers_left as u64);
        if !run.is_empty() && run_weight + w > target && workers_left > 1 {
            runs.push(std::mem::take(&mut run));
            run_weight = 0;
        }
        remaining = remaining.saturating_sub(w);
        run_weight += w;
        run.push(task);
    }
    if !run.is_empty() {
        runs.push(run);
    }
    let width = runs.len();
    TASKS.fetch_add(width as u64, Ordering::Relaxed);
    if width <= 1 {
        let _worker = ();
        for task in runs.remove(0) {
            f(task);
        }
        return;
    }
    HELPERS_SPAWNED.fetch_add(width as u64 - 1, Ordering::Relaxed);

    let f = &f;
    crossbeam::thread::scope(|s| {
        let mut runs = runs.into_iter();
        let first = runs.next().expect("width >= 1");
        for run in runs {
            s.spawn(move |_| {
                let _worker = WorkerFlagGuard::set();
                for task in run {
                    f(task);
                }
            });
        }
        let _worker = WorkerFlagGuard::set();
        for task in first {
            f(task);
        }
    })
    .expect("pool worker panicked");
}

/// Lazily built form of [`par_for_weighted_tasks`]: `build` streams
/// `(weight, task)` pairs in schedule order into the sink it is
/// handed. When the pool cannot go parallel at all (single-thread
/// budget or a nested region), each task runs inline as it is emitted
/// and nothing is collected — a serial weighted region performs zero
/// heap allocation, which the runtime's allocation-telemetry gate
/// measures. Otherwise the tasks are collected with `len_hint`
/// capacity and scheduled exactly as [`par_for_weighted_tasks`].
pub fn par_for_weighted_tasks_lazy<T, F>(
    len_hint: usize,
    build: impl FnOnce(&mut dyn FnMut(u64, T)),
    grain_weight: u64,
    f: F,
) where
    T: Send,
    F: Fn(T) + Sync,
{
    if plan_width(usize::MAX, 1) <= 1 {
        let mut any = false;
        build(&mut |_w, task| {
            any = true;
            f(task);
        });
        // Same counter footprint as the collected path at width 1.
        if any {
            REGIONS.fetch_add(1, Ordering::Relaxed);
            TASKS.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    let mut tasks = Vec::with_capacity(len_hint);
    build(&mut |w, task| tasks.push((w, task)));
    par_for_weighted_tasks(tasks, grain_weight, f);
}

/// Maps `f(index, &item)` over `items` in parallel, returning results
/// in input order. Like every helper here, the output is independent
/// of the worker count.
pub fn par_map_indexed<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    par_chunks(&mut out, 1, grain, |idx, slot| {
        slot[0] = Some(f(idx, &items[idx]));
    });
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The claim registry and stats counters are process-global, so
    /// tests that assert on them must not interleave.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        let _guard = serialize();
        let mut data = vec![0u32; 103];
        with_thread_limit(4, || {
            par_chunks(&mut data, 10, 1, |off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (off + i) as u32;
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _guard = serialize();
        let items: Vec<u64> = (0..257).collect();
        let reference = with_thread_limit(1, || {
            par_map_indexed(&items, 1, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64))
        });
        for threads in [2, 4, 8] {
            let got = with_thread_limit(threads, || {
                par_map_indexed(&items, 1, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64))
            });
            assert_eq!(got, reference, "thread count {threads} changed the result");
        }
    }

    #[test]
    fn nested_regions_run_inline() {
        let _guard = serialize();
        let before = stats();
        let mut outer = vec![0u8; 64];
        with_thread_limit(4, || {
            par_chunks(&mut outer, 16, 1, |_, chunk| {
                // Nested region inside a pool worker: must not spawn.
                let mut inner = vec![0u8; 64];
                par_chunks(&mut inner, 16, 1, |_, c| c.fill(1));
                chunk[0] = 1;
            });
        });
        let after = stats();
        // Outer spawned at most 3 helpers; nested regions spawned
        // none beyond those (4 inner regions, all inline).
        assert!(after.helpers_spawned - before.helpers_spawned <= 3);
        assert_eq!(after.regions - before.regions, 5);
    }

    #[test]
    fn claim_divides_budget() {
        let _guard = serialize();
        let hw = hardware_threads();
        let claim = PoolClaim::register(16);
        assert_eq!(claim.workers(), 16);
        let eff = effective_threads();
        assert_eq!(eff, (hw / 16).max(1).min(env_threads_for_test()));
        // outer x inner never exceeds max(hardware, outer).
        assert!(claim.workers() * eff <= 16.max(hw));
        drop(claim);
        assert_eq!(claimed_workers(), 0);
    }

    fn env_threads_for_test() -> usize {
        super::env_threads()
    }

    #[test]
    fn claim_beats_explicit_limit() {
        let _guard = serialize();
        let claim = PoolClaim::register(MAX_POOL_THREADS * 2);
        with_thread_limit(8, || {
            assert_eq!(effective_threads(), 1);
        });
        drop(claim);
    }

    #[test]
    fn small_regions_spawn_no_helpers() {
        let _guard = serialize();
        let before = stats();
        let mut data = vec![0u8; 8];
        with_thread_limit(8, || {
            // grain 8 means a second worker needs >= 16 chunks.
            par_chunks(&mut data, 1, 8, |_, c| c[0] = 1);
        });
        let after = stats();
        assert_eq!(after.helpers_spawned, before.helpers_spawned);
        assert_eq!(after.tasks - before.tasks, 1);
    }

    #[test]
    fn par_for_tasks_runs_each_task_once() {
        let _guard = serialize();
        let (tx, rx) = std::sync::mpsc::channel();
        let tasks: Vec<usize> = (0..37).collect();
        with_thread_limit(4, || {
            par_for_tasks(tasks, 1, |t| tx.send(t).expect("send"));
        });
        drop(tx);
        let mut seen: Vec<usize> = rx.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_tasks_run_each_exactly_once() {
        let _guard = serialize();
        let (tx, rx) = std::sync::mpsc::channel();
        // Skewed weights: one hub task dominating a tail of leaves.
        let tasks: Vec<(u64, usize)> =
            (0..53).map(|i| (if i == 0 { 10_000 } else { 3 }, i)).collect();
        with_thread_limit(4, || {
            par_for_weighted_tasks(tasks, 1, |t| tx.send(t).expect("send"));
        });
        drop(tx);
        let mut seen: Vec<usize> = rx.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..53).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_tasks_degenerate_inputs() {
        let _guard = serialize();
        // Empty task list, zero weights, fewer tasks than workers:
        // none of these may panic or drop a task.
        with_thread_limit(8, || {
            par_for_weighted_tasks(Vec::<(u64, usize)>::new(), 1, |_| unreachable!());
        });
        let (tx, rx) = std::sync::mpsc::channel();
        with_thread_limit(8, || {
            par_for_weighted_tasks(vec![(0u64, 1usize), (0, 2)], 1, |t| {
                tx.send(t).expect("send");
            });
        });
        drop(tx);
        let mut seen: Vec<usize> = rx.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        let hit = std::sync::atomic::AtomicUsize::new(0);
        with_thread_limit(8, || {
            par_for_weighted_tasks(vec![(7u64, ())], 1, |()| {
                hit.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn weighted_tasks_below_grain_stay_serial() {
        let _guard = serialize();
        let before = stats();
        with_thread_limit(8, || {
            par_for_weighted_tasks(vec![(1u64, 0usize), (1, 1), (1, 2)], 1_000, |_| {});
        });
        let after = stats();
        assert_eq!(after.helpers_spawned, before.helpers_spawned);
        assert_eq!(after.tasks - before.tasks, 1);
    }

    #[test]
    fn split_range_partitions_exactly() {
        for len in [0usize, 1, 7, 64, 103] {
            for parts in 1..=8 {
                let mut total = 0;
                let mut next = 0;
                for t in 0..parts {
                    let r = split_range(len, parts, t);
                    assert_eq!(r.start, next);
                    next = r.end;
                    total += r.len();
                }
                assert_eq!(total, len);
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn limit_is_restored_after_panic_free_use() {
        let _guard = serialize();
        with_thread_limit(2, || {
            assert_eq!(effective_threads(), 2);
            with_thread_limit(5, || assert_eq!(effective_threads(), 5));
            assert_eq!(effective_threads(), 2);
        });
    }
}
