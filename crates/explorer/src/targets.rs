//! Explore targets and runtime constraints (Step 1 of Fig. 2).
//!
//! User requirements are quantized into priority weights over the
//! `Perf{T, Γ, Acc}` triple ("explore targets") plus hard limits
//! ("runtime constraints") that prune the search.

use gnnav_estimator::PerfEstimate;

/// Scalarization weights over time, memory, and accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreTargets {
    /// Weight on (normalized) epoch time.
    pub w_time: f64,
    /// Weight on (normalized) peak memory.
    pub w_memory: f64,
    /// Weight on (normalized) accuracy.
    pub w_accuracy: f64,
}

impl ExploreTargets {
    /// Equal weights.
    pub fn balanced() -> Self {
        ExploreTargets { w_time: 1.0, w_memory: 1.0, w_accuracy: 1.0 }
    }
}

/// The priority presets of the paper's Tab. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Priority {
    /// "Bal": balance all three metrics.
    Balance,
    /// "Ex-TM": emphasize time and memory (accuracy may drop a bit).
    ExTimeMemory,
    /// "Ex-MA": emphasize memory and accuracy.
    ExMemoryAccuracy,
    /// "Ex-TA": emphasize time and accuracy (memory may grow).
    ExTimeAccuracy,
}

impl Priority {
    /// All presets in the paper's table order.
    pub const ALL: [Priority; 4] = [
        Priority::Balance,
        Priority::ExTimeMemory,
        Priority::ExMemoryAccuracy,
        Priority::ExTimeAccuracy,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Balance => "Bal",
            Priority::ExTimeMemory => "Ex-TM",
            Priority::ExMemoryAccuracy => "Ex-MA",
            Priority::ExTimeAccuracy => "Ex-TA",
        }
    }

    /// The scalarization weights: emphasized metrics get weight 1,
    /// de-emphasized ones 0.15 (never zero — "extreme" guidelines
    /// still avoid pathological collapse in the ignored metric).
    pub fn targets(self) -> ExploreTargets {
        const LOW: f64 = 0.15;
        match self {
            Priority::Balance => ExploreTargets::balanced(),
            Priority::ExTimeMemory => {
                ExploreTargets { w_time: 1.0, w_memory: 1.0, w_accuracy: LOW }
            }
            Priority::ExMemoryAccuracy => {
                ExploreTargets { w_time: LOW, w_memory: 1.0, w_accuracy: 1.0 }
            }
            Priority::ExTimeAccuracy => {
                ExploreTargets { w_time: 1.0, w_memory: LOW, w_accuracy: 1.0 }
            }
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hard application constraints; candidates predicted to violate them
/// are pruned during exploration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RuntimeConstraints {
    /// Maximum acceptable epoch time in seconds.
    pub max_time_s: Option<f64>,
    /// Maximum acceptable peak device memory in bytes.
    pub max_mem_bytes: Option<f64>,
    /// Minimum acceptable accuracy in `[0, 1]`.
    pub min_accuracy: Option<f64>,
}

impl RuntimeConstraints {
    /// No constraints.
    pub fn none() -> Self {
        RuntimeConstraints::default()
    }

    /// Whether an estimate satisfies every constraint.
    pub fn satisfied_by(&self, est: &PerfEstimate) -> bool {
        self.max_time_s.is_none_or(|t| est.time_s <= t)
            && self.max_mem_bytes.is_none_or(|m| est.mem_bytes <= m)
            && self.min_accuracy.is_none_or(|a| est.accuracy >= a)
    }

    /// The first constraint `est` violates, described with the
    /// predicted value and the limit — `None` when all are satisfied.
    /// Feeds the explorer's decision audit trail.
    pub fn violation(&self, est: &PerfEstimate) -> Option<String> {
        if let Some(t) = self.max_time_s {
            if est.time_s > t {
                return Some(format!("predicted epoch time {:.4}s > max {t:.4}s", est.time_s));
            }
        }
        if let Some(m) = self.max_mem_bytes {
            if est.mem_bytes > m {
                return Some(format!(
                    "predicted peak memory {:.2} MB > max {:.2} MB",
                    est.mem_bytes / 1e6,
                    m / 1e6
                ));
            }
        }
        if let Some(a) = self.min_accuracy {
            if est.accuracy < a {
                return Some(format!("predicted accuracy {:.4} < min {a:.4}", est.accuracy));
            }
        }
        None
    }

    /// Total constraint excess of `est`: 0 when every constraint is
    /// satisfied, otherwise the sum of each breached constraint's
    /// relative overshoot. Non-finite predictions score infinity.
    /// Ranks infeasible candidates for the explorer's nearest-feasible
    /// fallback — smaller is closer to feasible.
    pub fn excess(&self, est: &PerfEstimate) -> f64 {
        if !(est.time_s.is_finite() && est.mem_bytes.is_finite() && est.accuracy.is_finite()) {
            return f64::INFINITY;
        }
        // Relative overshoot; falls back to the absolute gap when the
        // limit is 0 (a relative measure would divide by zero).
        let over = |value: f64, limit: f64| {
            let gap = value - limit;
            if gap <= 0.0 {
                0.0
            } else if limit > 0.0 {
                gap / limit
            } else {
                gap
            }
        };
        let mut total = 0.0;
        if let Some(t) = self.max_time_s {
            total += over(est.time_s, t);
        }
        if let Some(m) = self.max_mem_bytes {
            total += over(est.mem_bytes, m);
        }
        if let Some(a) = self.min_accuracy {
            total += over(a, est.accuracy);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(t: f64, m: f64, a: f64) -> PerfEstimate {
        PerfEstimate { time_s: t, mem_bytes: m, accuracy: a, batch_nodes: 0.0, hit_rate: 0.0 }
    }

    #[test]
    fn priorities_have_distinct_labels_and_weights() {
        let labels: Vec<_> = Priority::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["Bal", "Ex-TM", "Ex-MA", "Ex-TA"]);
        let tm = Priority::ExTimeMemory.targets();
        assert!(tm.w_time > tm.w_accuracy);
        let ma = Priority::ExMemoryAccuracy.targets();
        assert!(ma.w_accuracy > ma.w_time);
    }

    #[test]
    fn no_priority_fully_ignores_a_metric() {
        for p in Priority::ALL {
            let t = p.targets();
            assert!(t.w_time > 0.0 && t.w_memory > 0.0 && t.w_accuracy > 0.0, "{p}");
        }
    }

    #[test]
    fn constraints_filtering() {
        let c = RuntimeConstraints {
            max_time_s: Some(1.0),
            max_mem_bytes: Some(100.0),
            min_accuracy: Some(0.8),
        };
        assert!(c.satisfied_by(&est(0.5, 50.0, 0.9)));
        assert!(!c.satisfied_by(&est(2.0, 50.0, 0.9)));
        assert!(!c.satisfied_by(&est(0.5, 200.0, 0.9)));
        assert!(!c.satisfied_by(&est(0.5, 50.0, 0.5)));
        assert!(RuntimeConstraints::none().satisfied_by(&est(1e9, 1e18, 0.0)));
    }

    #[test]
    fn violation_names_the_breached_constraint() {
        let c = RuntimeConstraints {
            max_time_s: Some(1.0),
            max_mem_bytes: Some(100e6),
            min_accuracy: Some(0.8),
        };
        assert_eq!(c.violation(&est(0.5, 50e6, 0.9)), None);
        assert!(c.violation(&est(2.0, 50e6, 0.9)).unwrap().contains("epoch time"));
        assert!(c.violation(&est(0.5, 200e6, 0.9)).unwrap().contains("peak memory"));
        assert!(c.violation(&est(0.5, 50e6, 0.5)).unwrap().contains("accuracy"));
        assert_eq!(RuntimeConstraints::none().violation(&est(1e9, 1e18, 0.0)), None);
        // Consistency with the boolean form.
        for e in [est(2.0, 50e6, 0.9), est(0.5, 50e6, 0.9)] {
            assert_eq!(c.satisfied_by(&e), c.violation(&e).is_none());
        }
    }

    #[test]
    fn excess_ranks_near_misses_below_far_misses() {
        let c = RuntimeConstraints {
            max_time_s: Some(1.0),
            max_mem_bytes: Some(100e6),
            min_accuracy: Some(0.8),
        };
        assert_eq!(c.excess(&est(0.5, 50e6, 0.9)), 0.0, "feasible means zero excess");
        let near = c.excess(&est(1.1, 50e6, 0.9));
        let far = c.excess(&est(5.0, 50e6, 0.9));
        assert!(near > 0.0 && near < far);
        // Violations on several axes accumulate.
        let multi = c.excess(&est(1.1, 200e6, 0.5));
        assert!(multi > near);
        // Non-finite predictions are never "nearest".
        assert_eq!(c.excess(&est(f64::NAN, 50e6, 0.9)), f64::INFINITY);
        assert_eq!(c.excess(&est(0.5, f64::INFINITY, 0.9)), f64::INFINITY);
        // Unconstrained: everything finite has zero excess.
        assert_eq!(RuntimeConstraints::none().excess(&est(1e9, 1e18, 0.0)), 0.0);
    }
}
