//! Application-driven design space exploration (GNNavigator §3.3).
//!
//! Automatic guideline generation: user requirements become
//! [`Priority`] weights and [`RuntimeConstraints`]; a [`DfsExplorer`]
//! walks the design space querying the gray-box estimator and pruning
//! infeasible subtrees; the decision maker reduces survivors to the
//! Pareto front over `(T, Γ, −Acc)` and scalarizes it into a
//! [`Guideline`]. [`Explorer`] wires the pipeline end to end and
//! seeds the search with the baseline templates so guidelines never
//! lose to the prior systems they generalize. [`ExploreCache`]
//! persists whole [`ExplorationResult`]s keyed by
//! [`explore_fingerprint`] so a repeated invocation skips the DSE
//! entirely.

#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod decision;
pub mod dfs;
pub mod evolution;
pub mod explorer;
pub mod pareto;
pub mod targets;

pub use audit::{audit_to_json, AuditAction, AuditRecord};
pub use cache::{explore_fingerprint, ExploreCache};
pub use decision::{decide, Guideline};
pub use dfs::{DfsExplorer, DfsOutcome, DfsStats, EvaluatedCandidate};
pub use evolution::{EvolutionParams, EvolutionarySearch};
pub use explorer::{ExplorationResult, Explorer};
pub use pareto::{dominates, objectives, pareto_front_indices, ParetoFront};
pub use targets::{ExploreTargets, Priority, RuntimeConstraints};

use std::error::Error;
use std::fmt;

/// Errors from guideline exploration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExplorerError {
    /// No evaluated candidate satisfied the runtime constraints.
    NoFeasibleCandidate,
    /// The estimator failed.
    Estimator(gnnav_estimator::EstimatorError),
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::NoFeasibleCandidate => {
                write!(f, "no candidate satisfies the runtime constraints")
            }
            ExplorerError::Estimator(e) => write!(f, "estimator error: {e}"),
        }
    }
}

impl Error for ExplorerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExplorerError::Estimator(e) => Some(e),
            ExplorerError::NoFeasibleCandidate => None,
        }
    }
}

impl From<gnnav_estimator::EstimatorError> for ExplorerError {
    fn from(e: gnnav_estimator::EstimatorError) -> Self {
        ExplorerError::Estimator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_impls() {
        fn assert_err<T: Error + Send>() {}
        assert_err::<ExplorerError>();
        assert!(ExplorerError::NoFeasibleCandidate.to_string().contains("no candidate"));
    }
}
