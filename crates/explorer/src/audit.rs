//! Decision audit trail for exploration runs.
//!
//! The DFS makes thousands of accept/reject/prune decisions per
//! exploration; aggregate counters say how many, the audit trail says
//! *why* — one [`AuditRecord`] per decision, with the candidate
//! configuration, its predicted `T`/`Γ`/`Acc` triple, and the reason
//! in plain words. The CLI dumps it via `gnnavigate --audit-out`.

use gnnav_estimator::PerfEstimate;
use gnnav_obs::json;

/// What the explorer did with a candidate (or subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditAction {
    /// Evaluated and kept: satisfies every runtime constraint.
    Accepted,
    /// Evaluated and discarded: violates a runtime constraint.
    Rejected,
    /// An entire subtree cut by an analytic bound, never evaluated.
    PrunedSubtree,
    /// Chosen as the final guideline by the decision maker.
    Selected,
    /// Chosen as the guideline *despite* violating a constraint: no
    /// candidate was feasible, so the explorer degraded to the
    /// nearest-feasible candidate instead of failing.
    Fallback,
    /// Adopted mid-training by the adaptive layer: the drift detector
    /// triggered a re-exploration and this candidate replaced the
    /// running guideline.
    Switched,
}

impl AuditAction {
    /// Stable lowercase label used in the JSON dump.
    pub fn label(self) -> &'static str {
        match self {
            AuditAction::Accepted => "accepted",
            AuditAction::Rejected => "rejected",
            AuditAction::PrunedSubtree => "pruned_subtree",
            AuditAction::Selected => "selected",
            AuditAction::Fallback => "fallback",
            AuditAction::Switched => "switched",
        }
    }
}

/// One explorer decision.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Human-readable candidate description (`TrainingConfig::summary`
    /// for evaluated leaves, the fixed axis assignment for pruned
    /// subtrees).
    pub config: String,
    /// The estimator's prediction (`None` for pruned subtrees, which
    /// are cut before estimation).
    pub estimate: Option<PerfEstimate>,
    /// What happened.
    pub action: AuditAction,
    /// Why, in plain words.
    pub reason: String,
    /// Whether the candidate came from the template seeds rather than
    /// the DFS traversal.
    pub seed_candidate: bool,
}

/// Serializes an audit trail as deterministic JSON:
///
/// ```json
/// {
///   "version": 1,
///   "records": [
///     {"action": "accepted", "config": "...", "reason": "...",
///      "seed": false,
///      "predicted": {"time_s": 0.1, "mem_bytes": 1e9,
///                    "accuracy": 0.91, "hit_rate": 0.4}}
///   ]
/// }
/// ```
pub fn audit_to_json(records: &[AuditRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 160);
    out.push_str("{\n  \"version\": 1,\n  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"action\": ");
        json::push_string(&mut out, r.action.label());
        out.push_str(", \"config\": ");
        json::push_string(&mut out, &r.config);
        out.push_str(", \"reason\": ");
        json::push_string(&mut out, &r.reason);
        out.push_str(&format!(", \"seed\": {}", r.seed_candidate));
        out.push_str(", \"predicted\": ");
        match &r.estimate {
            Some(est) => {
                out.push_str("{\"time_s\": ");
                json::push_f64(&mut out, est.time_s);
                out.push_str(", \"mem_bytes\": ");
                json::push_f64(&mut out, est.mem_bytes);
                out.push_str(", \"accuracy\": ");
                json::push_f64(&mut out, est.accuracy);
                out.push_str(", \"hit_rate\": ");
                json::push_f64(&mut out, est.hit_rate);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_json_is_parsable_and_complete() {
        let records = vec![
            AuditRecord {
                config: "batch=512 \"quoted\"".into(),
                estimate: Some(PerfEstimate {
                    time_s: 0.25,
                    mem_bytes: 1e9,
                    accuracy: 0.9,
                    batch_nodes: 100.0,
                    hit_rate: 0.5,
                }),
                action: AuditAction::Accepted,
                reason: "satisfies all constraints".into(),
                seed_candidate: true,
            },
            AuditRecord {
                config: "cache_ratio=0.5".into(),
                estimate: None,
                action: AuditAction::PrunedSubtree,
                reason: "cache lower bound exceeds memory budget".into(),
                seed_candidate: false,
            },
        ];
        let text = audit_to_json(&records);
        let doc = json::parse(&text).expect("valid JSON");
        let recs = doc.get("records").and_then(|r| r.as_arr()).expect("records");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("action").and_then(json::Value::as_str), Some("accepted"));
        assert_eq!(
            recs[0].get("predicted").and_then(|p| p.get("time_s")).and_then(json::Value::as_f64),
            Some(0.25)
        );
        assert_eq!(recs[0].get("seed"), Some(&json::Value::Bool(true)));
        assert_eq!(recs[1].get("predicted"), Some(&json::Value::Null));
        assert_eq!(recs[1].get("action").and_then(json::Value::as_str), Some("pruned_subtree"));
    }

    #[test]
    fn empty_trail_is_valid_json() {
        let text = audit_to_json(&[]);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("records").and_then(|r| r.as_arr()).map(<[_]>::len), Some(0));
    }
}
