//! Evolutionary design-space search — an alternative to DFS.
//!
//! The paper explores with DFS; its cited lineage (BOOM-Explorer)
//! uses surrogate-guided search. This module provides a third point
//! for ablations: a (μ + λ) evolutionary searcher over the axis grid,
//! scalarizing the estimator's predictions with the priority weights.
//! The ablation bench (`cargo bench -p gnnav-bench`) compares all
//! three on evaluations-to-quality.

use crate::dfs::EvaluatedCandidate;
use crate::pareto::objectives;
use crate::targets::{Priority, RuntimeConstraints};
use gnnav_estimator::{GrayBoxEstimator, PredictionContext};
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, TrainingConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the evolutionary searcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvolutionParams {
    /// Survivors per generation (μ).
    pub population: usize,
    /// Offspring per generation (λ).
    pub offspring: usize,
    /// Total estimator-evaluation budget.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolutionParams {
    fn default() -> Self {
        EvolutionParams { population: 16, offspring: 32, budget: 600, seed: 0xEE5 }
    }
}

/// (μ + λ) evolutionary search over the design-space axis grid.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    space: DesignSpace,
    params: EvolutionParams,
}

impl EvolutionarySearch {
    /// Creates a searcher over `space`.
    ///
    /// # Panics
    ///
    /// Panics if the population, offspring count, or budget is zero.
    pub fn new(space: DesignSpace, params: EvolutionParams) -> Self {
        assert!(params.population > 0, "population must be > 0");
        assert!(params.offspring > 0, "offspring must be > 0");
        assert!(params.budget > 0, "budget must be > 0");
        EvolutionarySearch { space, params }
    }

    /// Runs the search, returning every constraint-satisfying
    /// candidate evaluated (like the DFS engine) so the same decision
    /// maker applies downstream.
    #[allow(clippy::too_many_arguments)] // mirrors DfsExplorer::run
    pub fn run(
        &self,
        estimator: &GrayBoxEstimator,
        dataset: &Dataset,
        platform: &Platform,
        model: ModelKind,
        priority: Priority,
        constraints: &RuntimeConstraints,
        seeds: &[TrainingConfig],
    ) -> Vec<EvaluatedCandidate> {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let axes = self.space.num_axes();
        let mut evaluations = 0usize;
        let mut out: Vec<EvaluatedCandidate> = Vec::new();

        // Scalarization for selection pressure; uses raw objectives
        // with fixed normalizers learned from the first generation.
        let weights = priority.targets();
        let mut norms = [1.0f64; 3];

        let score = |cand: &EvaluatedCandidate, norms: &[f64; 3]| {
            let o = objectives(&cand.estimate);
            weights.w_time * o[0] / norms[0]
                + weights.w_memory * o[1] / norms[1]
                + weights.w_accuracy * o[2] / norms[2].abs().max(1e-12)
        };

        // Dataset statistics are hoisted once; repeat genomes (random
        // draws and mutations revisit points) are served from the
        // per-run prediction memo.
        let mut pctx = PredictionContext::new(dataset, platform);
        let evaluate = |indices: &[usize], pctx: &mut PredictionContext, evals: &mut usize| {
            self.space.config_at(indices, model).map(|config| {
                let estimate = estimator.predict_batch(pctx, std::slice::from_ref(&config))[0];
                *evals += 1;
                EvaluatedCandidate { config, estimate }
            })
        };

        let random_genome = |rng: &mut StdRng| -> Vec<usize> {
            (0..axes).map(|a| rng.gen_range(0..self.space.axis_len(a))).collect()
        };
        let genome_of = |config: &TrainingConfig| -> Option<Vec<usize>> {
            // Recover axis indices by value lookup; seeds outside the
            // grid are skipped.
            let mut g = vec![0usize; axes];
            g[0] = self.space.samplers.iter().position(|&s| s == config.sampler)?;
            g[1] = self.space.fanout_options.iter().position(|f| *f == config.fanouts)?;
            g[2] = self.space.etas.iter().position(|&e| e == config.locality_eta)?;
            g[3] = self.space.batch_sizes.iter().position(|&b| b == config.batch_size)?;
            g[4] = self.space.cache_ratios.iter().position(|&r| r == config.cache_ratio)?;
            g[5] = self.space.cache_policies.iter().position(|&p| p == config.cache_policy)?;
            g[6] = self.space.cache_updates.iter().position(|&u| u == config.cache_update)?;
            g[7] = self.space.pipelined.iter().position(|&p| p == config.pipelined)?;
            g[8] = self.space.precisions.iter().position(|&p| p == config.precision)?;
            g[9] = self.space.hidden_dims.iter().position(|&h| h == config.hidden_dim)?;
            g[10] = self.space.dropouts.iter().position(|&d| d == config.dropout)?;
            Some(g)
        };

        // Initial population: template seeds (when on-grid) plus
        // random genomes.
        let mut population: Vec<(Vec<usize>, EvaluatedCandidate)> = Vec::new();
        for seed_config in seeds {
            if let Some(g) = genome_of(seed_config) {
                if let Some(c) = evaluate(&g, &mut pctx, &mut evaluations) {
                    population.push((g, c));
                }
            }
        }
        while population.len() < self.params.population && evaluations < self.params.budget {
            let g = random_genome(&mut rng);
            if let Some(c) = evaluate(&g, &mut pctx, &mut evaluations) {
                population.push((g, c));
            }
        }
        if population.is_empty() {
            return out;
        }
        // Fix normalizers from the initial generation.
        for (d, norm) in norms.iter_mut().enumerate() {
            let m = population
                .iter()
                .map(|(_, c)| objectives(&c.estimate)[d].abs())
                .fold(0.0f64, f64::max);
            *norm = m.max(1e-12);
        }

        out.extend(
            population
                .iter()
                .filter(|(_, c)| constraints.satisfied_by(&c.estimate))
                .map(|(_, c)| c.clone()),
        );

        while evaluations < self.params.budget {
            // Offspring: mutate 1-3 axes of a random survivor. Genomes
            // are drawn serially (preserving the RNG stream), then the
            // estimator predictions — the expensive part — run through
            // the batched predictor, which fans fresh configs across
            // the thread pool and serves revisits from the memo.
            // `predict_batch` returns results in draw order and
            // `predict` is pure, so the candidate stream is identical
            // to the serial loop's at any thread count.
            let mut drawn: Vec<(Vec<usize>, TrainingConfig)> =
                Vec::with_capacity(self.params.offspring);
            for _ in 0..self.params.offspring {
                if evaluations >= self.params.budget {
                    break;
                }
                let parent = &population[rng.gen_range(0..population.len())].0;
                let mut child = parent.clone();
                for _ in 0..rng.gen_range(1..=3usize) {
                    let axis = rng.gen_range(0..axes);
                    child[axis] = rng.gen_range(0..self.space.axis_len(axis));
                }
                if let Some(config) = self.space.config_at(&child, model) {
                    evaluations += 1;
                    drawn.push((child, config));
                }
            }
            let configs: Vec<TrainingConfig> =
                drawn.iter().map(|(_, config)| config.clone()).collect();
            let estimates = estimator.predict_batch(&mut pctx, &configs);
            let mut offspring = Vec::with_capacity(drawn.len());
            for ((child, config), estimate) in drawn.into_iter().zip(estimates) {
                let c = EvaluatedCandidate { config, estimate };
                if constraints.satisfied_by(&c.estimate) {
                    out.push(c.clone());
                }
                offspring.push((child, c));
            }
            // (μ + λ) selection by scalarized score.
            population.extend(offspring);
            population.sort_by(|a, b| {
                score(&a.1, &norms).partial_cmp(&score(&b.1, &norms)).expect("finite scores")
            });
            population.truncate(self.params.population);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::decide;
    use gnnav_estimator::{ProfileDb, Profiler};
    use gnnav_graph::DatasetId;
    use gnnav_runtime::{ExecutionOptions, RuntimeBackend, Template};

    fn setup() -> (Dataset, GrayBoxEstimator) {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(25, ModelKind::Sage, 5);
        let db: ProfileDb = profiler.profile(&dataset, &cfgs).expect("profile");
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        (dataset, est)
    }

    #[test]
    fn evolution_respects_budget_and_returns_candidates() {
        let (dataset, est) = setup();
        let search = EvolutionarySearch::new(
            DesignSpace::standard(),
            EvolutionParams { budget: 120, ..Default::default() },
        );
        let cands = search.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &RuntimeConstraints::none(),
            &[],
        );
        assert!(!cands.is_empty());
        assert!(cands.len() <= 120);
        let g = decide(&cands, Priority::Balance).expect("non-empty");
        assert!(g.estimate.time_s.is_finite());
    }

    #[test]
    fn evolution_is_deterministic_given_seed() {
        let (dataset, est) = setup();
        let run = || {
            let search = EvolutionarySearch::new(
                DesignSpace::standard(),
                EvolutionParams { budget: 60, ..Default::default() },
            );
            search
                .run(
                    &est,
                    &dataset,
                    &Platform::default_rtx4090(),
                    ModelKind::Sage,
                    Priority::Balance,
                    &RuntimeConstraints::none(),
                    &[],
                )
                .iter()
                .map(|c| c.config.summary())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evolution_output_identical_across_thread_counts() {
        // Offspring predictions fan out across the pool; the candidate
        // stream must not depend on how many threads served them.
        let (dataset, est) = setup();
        let run = |threads: usize| {
            gnnav_par::with_thread_limit(threads, || {
                let search = EvolutionarySearch::new(
                    DesignSpace::standard(),
                    EvolutionParams { budget: 60, ..Default::default() },
                );
                search
                    .run(
                        &est,
                        &dataset,
                        &Platform::default_rtx4090(),
                        ModelKind::Sage,
                        Priority::Balance,
                        &RuntimeConstraints::none(),
                        &[],
                    )
                    .iter()
                    .map(|c| c.config.summary())
                    .collect::<Vec<_>>()
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn template_seeds_recoverable_when_on_grid() {
        let (dataset, est) = setup();
        // Pa-Full lives on the standard grid, so the seed must appear
        // among the evaluated candidates.
        let seed = Template::PaGraphFull.config(ModelKind::Sage);
        let search = EvolutionarySearch::new(
            DesignSpace::standard(),
            EvolutionParams { budget: 40, ..Default::default() },
        );
        let cands = search.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &RuntimeConstraints::none(),
            std::slice::from_ref(&seed),
        );
        assert!(cands.iter().any(|c| c.config == seed));
    }

    #[test]
    fn constraints_filter_reported_candidates() {
        let (dataset, est) = setup();
        let constraints =
            RuntimeConstraints { max_mem_bytes: Some(5e6), ..RuntimeConstraints::none() };
        let search = EvolutionarySearch::new(
            DesignSpace::standard(),
            EvolutionParams { budget: 80, ..Default::default() },
        );
        let cands = search.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &constraints,
            &[],
        );
        for c in &cands {
            assert!(c.estimate.mem_bytes <= 5e6);
        }
    }

    #[test]
    #[should_panic(expected = "budget must be > 0")]
    fn zero_budget_rejected() {
        let _ = EvolutionarySearch::new(
            DesignSpace::standard(),
            EvolutionParams { budget: 0, ..Default::default() },
        );
    }
}
