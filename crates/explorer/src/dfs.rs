//! DFS traversal of the design space with constraint pruning.
//!
//! The paper's explorer "travels across all configurable settings with
//! the depth-first-search (DFS) algorithm", querying the performance
//! estimator at candidates and pruning subtrees whose estimated
//! performance cannot satisfy the runtime constraints.
//!
//! # Wave-parallel evaluation
//!
//! The traversal itself is estimate-independent: pruning uses only the
//! analytic cache-ratio bound, and budget/visited accounting counts
//! leaves, not predictions. [`DfsExplorer::run_audited`] exploits that
//! by expanding each restart serially into an ordered *wave* of
//! decisions, batch-evaluating the wave's candidates through
//! [`GrayBoxEstimator::predict_batch`] (which fans out across the
//! `gnnav-par` pool), and then replaying the wave serially to emit
//! journal events, audit records, and accept/reject bookkeeping in
//! exactly the serial traversal's order. Predictions are pure given
//! the context and the pool's chunking is static, so the outcome is
//! byte-identical to a serial evaluation loop at every thread count.

use crate::audit::{AuditAction, AuditRecord};
use crate::pareto::{objectives, ParetoFront};
use crate::targets::RuntimeConstraints;
use gnnav_estimator::{GrayBoxEstimator, PerfEstimate, PredictionContext};
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_obs::names as metric;
use gnnav_runtime::{DesignSpace, TrainingConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A candidate evaluated by the estimator during exploration.
#[derive(Debug, Clone)]
pub struct EvaluatedCandidate {
    /// The configuration.
    pub config: TrainingConfig,
    /// Its estimated performance.
    pub estimate: PerfEstimate,
}

/// Everything one audited DFS run produced.
#[derive(Debug, Clone)]
pub struct DfsOutcome {
    /// Constraint-satisfying evaluated candidates.
    pub accepted: Vec<EvaluatedCandidate>,
    /// Evaluated candidates with finite predictions that violate a
    /// constraint — the material for the nearest-feasible fallback
    /// when nothing is accepted. Non-finite predictions are counted
    /// in [`DfsStats::rejected`] but never kept here.
    pub rejected: Vec<EvaluatedCandidate>,
    /// Indices (into `accepted`) of the estimated Pareto front over
    /// `(T, Γ, −Acc)`, maintained incrementally during the run.
    pub front: Vec<usize>,
    /// Traversal statistics.
    pub stats: DfsStats,
    /// One [`AuditRecord`] per decision.
    pub audit: Vec<AuditRecord>,
}

/// Traversal statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DfsStats {
    /// Leaves evaluated by the estimator.
    pub evaluated: usize,
    /// Leaves rejected by the runtime constraints after estimation.
    pub rejected: usize,
    /// Subtrees pruned by analytic lower bounds without estimation.
    pub pruned_subtrees: usize,
}

/// The DFS engine over one [`DesignSpace`].
#[derive(Debug, Clone)]
pub struct DfsExplorer {
    space: DesignSpace,
    budget: usize,
    seed: u64,
}

impl DfsExplorer {
    /// Creates an explorer evaluating at most `budget` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(space: DesignSpace, budget: usize, seed: u64) -> Self {
        assert!(budget > 0, "budget must be > 0");
        DfsExplorer { space, budget, seed }
    }

    /// The design space being searched.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Runs DFS from `seeds` (evaluated first, outside the budget) and
    /// then across the space, returning every constraint-satisfying
    /// evaluated candidate plus traversal stats.
    pub fn run(
        &self,
        estimator: &GrayBoxEstimator,
        dataset: &Dataset,
        platform: &Platform,
        model: ModelKind,
        constraints: &RuntimeConstraints,
        seeds: &[TrainingConfig],
    ) -> (Vec<EvaluatedCandidate>, DfsStats) {
        let outcome = self.run_audited(estimator, dataset, platform, model, constraints, seeds);
        (outcome.accepted, outcome.stats)
    }

    /// Like [`DfsExplorer::run`], additionally returning the rejected
    /// (but finitely predicted) candidates and one [`AuditRecord`] per
    /// decision — every evaluated candidate (accepted or rejected,
    /// with the violated constraint spelled out) and every pruned
    /// subtree. When the global journal is recording, each decision is
    /// also emitted as an instant event on the `explorer` track.
    pub fn run_audited(
        &self,
        estimator: &GrayBoxEstimator,
        dataset: &Dataset,
        platform: &Platform,
        model: ModelKind,
        constraints: &RuntimeConstraints,
        seeds: &[TrainingConfig],
    ) -> DfsOutcome {
        let mut stats = DfsStats::default();
        let mut out: Vec<EvaluatedCandidate> = Vec::new();
        let mut rejected_keep: Vec<EvaluatedCandidate> = Vec::new();
        let mut audit: Vec<AuditRecord> = Vec::new();
        let mut front = ParetoFront::new();
        let mut pctx = PredictionContext::new(dataset, platform);
        let mut wave: Vec<WaveStep> = Vec::new();

        // Wave 0 — the seeds: the templates of existing systems, so
        // guidelines never lose to the approaches the explorer knows
        // about.
        for seed_config in seeds {
            if seed_config.validate().is_ok() {
                wave.push(WaveStep::Eval { config: seed_config.clone(), seed_candidate: true });
            }
        }
        self.flush_wave(
            estimator,
            &mut pctx,
            constraints,
            &mut wave,
            &mut stats,
            &mut out,
            &mut rejected_keep,
            &mut front,
            &mut audit,
        );

        // Restarted, randomized-order DFS: a budgeted DFS from one
        // root only varies the deepest axes, so the budget is split
        // across restarts, each with a freshly shuffled axis order and
        // per-axis value orders. Every restart is a plain DFS; the
        // restarts make a bounded budget cover all axes. Each restart
        // expands into one wave, flushed at its end.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let per_restart = self.budget.div_ceil(DFS_RESTARTS).max(1);
        let mut visited = std::collections::HashSet::new();
        let mut spent = 0usize;
        while spent < self.budget {
            let mut axis_order: Vec<usize> = (0..self.space.num_axes()).collect();
            axis_order.shuffle(&mut rng);
            let orders: Vec<Vec<usize>> = (0..self.space.num_axes())
                .map(|a| {
                    let mut idx: Vec<usize> = (0..self.space.axis_len(a)).collect();
                    idx.shuffle(&mut rng);
                    idx
                })
                .collect();
            let mut assignment = vec![0usize; self.space.num_axes()];
            let restart_budget = (self.budget - spent).min(per_restart);
            let mut restart_evals = 0usize;
            self.expand(
                0,
                &mut assignment,
                &axis_order,
                &orders,
                dataset,
                model,
                constraints,
                restart_budget,
                &mut restart_evals,
                &mut visited,
                &mut wave,
            );
            self.flush_wave(
                estimator,
                &mut pctx,
                constraints,
                &mut wave,
                &mut stats,
                &mut out,
                &mut rejected_keep,
                &mut front,
                &mut audit,
            );
            if restart_evals == 0 {
                break; // space (or all unseen points) exhausted
            }
            spent += restart_evals;
        }
        DfsOutcome { accepted: out, rejected: rejected_keep, front: front.indices(), stats, audit }
    }

    /// Batch-evaluates one wave's candidates and replays its decision
    /// log serially — journal events, audit records, accept/reject
    /// bookkeeping, and the incremental Pareto front all advance in
    /// exactly the order the serial traversal recorded them.
    #[allow(clippy::too_many_arguments)]
    fn flush_wave(
        &self,
        estimator: &GrayBoxEstimator,
        pctx: &mut PredictionContext,
        constraints: &RuntimeConstraints,
        wave: &mut Vec<WaveStep>,
        stats: &mut DfsStats,
        out: &mut Vec<EvaluatedCandidate>,
        rejected_keep: &mut Vec<EvaluatedCandidate>,
        front: &mut ParetoFront,
        audit: &mut Vec<AuditRecord>,
    ) {
        if wave.is_empty() {
            return;
        }
        let configs: Vec<TrainingConfig> = wave
            .iter()
            .filter_map(|step| match step {
                WaveStep::Eval { config, .. } => Some(config.clone()),
                WaveStep::Prune { .. } => None,
            })
            .collect();
        let estimates = estimator.predict_batch(pctx, &configs);
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let mut next = 0usize;
        for step in wave.drain(..) {
            match step {
                WaveStep::Eval { config, seed_candidate } => {
                    let estimate = estimates[next];
                    next += 1;
                    stats.evaluated += 1;
                    // A degenerate estimator (NaN/inf prediction) must
                    // never crash or silently win the Pareto front:
                    // treat the candidate as rejected, with the defect
                    // spelled out.
                    let finite = estimate.time_s.is_finite()
                        && estimate.mem_bytes.is_finite()
                        && estimate.accuracy.is_finite();
                    let violation = if finite {
                        constraints.violation(&estimate)
                    } else {
                        if metrics.is_enabled() {
                            metrics.add(metric::EXPLORER_NONFINITE, 1);
                        }
                        Some(format!(
                            "estimator returned a non-finite prediction (time_s={}, \
                             mem_bytes={}, accuracy={})",
                            estimate.time_s, estimate.mem_bytes, estimate.accuracy
                        ))
                    };
                    let accepted = violation.is_none();
                    let reason = violation
                        .unwrap_or_else(|| "satisfies all runtime constraints".to_string());
                    if journal.is_enabled() {
                        journal.instant(
                            metric::EVENT_CANDIDATE,
                            metric::TRACK_EXPLORER,
                            None,
                            vec![
                                ("config".into(), config.summary().into()),
                                ("time_s".into(), estimate.time_s.into()),
                                ("mem_bytes".into(), estimate.mem_bytes.into()),
                                ("accuracy".into(), estimate.accuracy.into()),
                                ("accepted".into(), accepted.into()),
                                ("reason".into(), reason.as_str().into()),
                            ],
                        );
                    }
                    audit.push(AuditRecord {
                        config: config.summary(),
                        estimate: Some(estimate),
                        action: if accepted {
                            AuditAction::Accepted
                        } else {
                            AuditAction::Rejected
                        },
                        reason,
                        seed_candidate,
                    });
                    if accepted {
                        front.insert(objectives(&estimate));
                        out.push(EvaluatedCandidate { config, estimate });
                    } else {
                        stats.rejected += 1;
                        if finite {
                            rejected_keep.push(EvaluatedCandidate { config, estimate });
                        }
                    }
                }
                WaveStep::Prune { subtree, reason } => {
                    stats.pruned_subtrees += 1;
                    if journal.is_enabled() {
                        journal.instant(
                            metric::EVENT_PRUNE,
                            metric::TRACK_EXPLORER,
                            None,
                            vec![
                                ("subtree".into(), subtree.as_str().into()),
                                ("reason".into(), reason.as_str().into()),
                            ],
                        );
                    }
                    audit.push(AuditRecord {
                        config: subtree,
                        estimate: None,
                        action: AuditAction::PrunedSubtree,
                        reason,
                        seed_candidate: false,
                    });
                }
            }
        }
    }

    /// The serial frontier expansion of one restart: a plain DFS that
    /// records every decision — leaf to evaluate, subtree to prune —
    /// into `wave` without touching the estimator. Traversal order,
    /// pruning, visited-set, and budget accounting are identical to
    /// evaluating inline (none of them depend on estimates).
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        depth: usize,
        assignment: &mut Vec<usize>,
        axis_order: &[usize],
        orders: &[Vec<usize>],
        dataset: &Dataset,
        model: ModelKind,
        constraints: &RuntimeConstraints,
        budget: usize,
        evals: &mut usize,
        visited: &mut std::collections::HashSet<Vec<usize>>,
        wave: &mut Vec<WaveStep>,
    ) {
        if *evals >= budget {
            return;
        }
        if depth == self.space.num_axes() {
            if !visited.insert(assignment.clone()) {
                return; // already evaluated in a previous restart
            }
            if let Some(config) = self.space.config_at(assignment, model) {
                wave.push(WaveStep::Eval { config, seed_candidate: false });
                *evals += 1;
            }
            return;
        }
        let axis = axis_order[depth];
        for &value in &orders[axis] {
            assignment[axis] = value;
            // Analytic lower-bound pruning: once the cache-ratio axis
            // is fixed, Γ_cache alone already lower-bounds memory
            // (Eq. 10) — subtrees that must exceed the budget are cut
            // without querying the estimator.
            if axis == CACHE_RATIO_AXIS {
                if let Some(max_mem) = constraints.max_mem_bytes {
                    let ratio = self.space.cache_ratios[value];
                    let min_row_bytes = dataset.feat_dim() as f64 * 2.0; // FP16 floor
                    let cache_lb = ratio * dataset.num_nodes() as f64 * min_row_bytes;
                    if cache_lb > max_mem {
                        let subtree = format!("subtree {}={ratio}", self.space.axis_name(axis));
                        let reason = format!(
                            "cache memory lower bound {:.2} MB > max {:.2} MB",
                            cache_lb / 1e6,
                            max_mem / 1e6
                        );
                        wave.push(WaveStep::Prune { subtree, reason });
                        continue;
                    }
                }
            }
            self.expand(
                depth + 1,
                assignment,
                axis_order,
                orders,
                dataset,
                model,
                constraints,
                budget,
                evals,
                visited,
                wave,
            );
            if *evals >= budget {
                return;
            }
        }
    }
}

/// One decision recorded during serial wave expansion and replayed in
/// the same order after the wave's candidates are batch-evaluated.
#[derive(Debug, Clone)]
enum WaveStep {
    /// A leaf (or seed) to evaluate.
    Eval {
        /// The candidate configuration.
        config: TrainingConfig,
        /// Whether it came from the template seeds.
        seed_candidate: bool,
    },
    /// A subtree cut by the analytic bound.
    Prune {
        /// Human-readable subtree description.
        subtree: String,
        /// Why it was cut.
        reason: String,
    },
}

/// Number of DFS restarts a budget is split across.
const DFS_RESTARTS: usize = 16;

/// Index of the cache-ratio axis in [`DesignSpace`] (see
/// `DesignSpace::axis_name`).
const CACHE_RATIO_AXIS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_estimator::{ProfileDb, Profiler};
    use gnnav_graph::DatasetId;
    use gnnav_runtime::{ExecutionOptions, RuntimeBackend, Template};

    fn fitted(dataset: &Dataset) -> GrayBoxEstimator {
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(25, ModelKind::Sage, 5);
        let db: ProfileDb = profiler.profile(dataset, &cfgs).expect("profile");
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        est
    }

    #[test]
    fn dfs_respects_budget_and_returns_candidates() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let est = fitted(&dataset);
        let explorer = DfsExplorer::new(DesignSpace::standard(), 200, 1);
        let (cands, stats) = explorer.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            &RuntimeConstraints::none(),
            &[],
        );
        assert!(stats.evaluated <= 200);
        assert!(!cands.is_empty());
        assert_eq!(stats.rejected, 0, "no constraints, nothing rejected");
    }

    #[test]
    fn seeds_always_evaluated() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let est = fitted(&dataset);
        let explorer = DfsExplorer::new(DesignSpace::standard(), 10, 2);
        let seeds: Vec<_> = Template::ALL.iter().map(|t| t.config(ModelKind::Sage)).collect();
        let (cands, _) = explorer.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            &RuntimeConstraints::none(),
            &seeds,
        );
        for s in &seeds {
            assert!(
                cands.iter().any(|c| c.config == *s),
                "seed {} missing from results",
                s.summary()
            );
        }
    }

    #[test]
    fn memory_constraint_prunes_subtrees() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let est = fitted(&dataset);
        let explorer = DfsExplorer::new(DesignSpace::standard(), 300, 3);
        // Budget below the largest cache alone.
        let constraints = RuntimeConstraints {
            max_mem_bytes: Some(0.2 * dataset.num_nodes() as f64 * dataset.feat_dim() as f64 * 2.0),
            ..RuntimeConstraints::none()
        };
        let (cands, stats) = explorer.run(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            &constraints,
            &[],
        );
        assert!(stats.pruned_subtrees > 0, "large-cache subtrees should be pruned");
        for c in &cands {
            assert!(c.config.cache_ratio <= 0.2 + 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let est = fitted(&dataset);
        let explorer = DfsExplorer::new(DesignSpace::standard(), 50, 9);
        let run = || {
            explorer
                .run(
                    &est,
                    &dataset,
                    &Platform::default_rtx4090(),
                    ModelKind::Sage,
                    &RuntimeConstraints::none(),
                    &[],
                )
                .0
                .iter()
                .map(|c| c.config.summary())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "budget must be > 0")]
    fn zero_budget_rejected() {
        let _ = DfsExplorer::new(DesignSpace::standard(), 0, 1);
    }

    #[test]
    fn audit_covers_every_decision_with_a_reason() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let est = fitted(&dataset);
        let explorer = DfsExplorer::new(DesignSpace::standard(), 150, 7);
        // Tight memory budget: forces both pruned subtrees and
        // post-estimation rejections into the trail.
        let constraints = RuntimeConstraints {
            max_mem_bytes: Some(0.2 * dataset.num_nodes() as f64 * dataset.feat_dim() as f64 * 2.0),
            ..RuntimeConstraints::none()
        };
        let seeds = vec![gnnav_runtime::Template::Pyg.config(ModelKind::Sage)];
        let outcome = explorer.run_audited(
            &est,
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            &constraints,
            &seeds,
        );
        let DfsOutcome { accepted: cands, rejected: kept_rejected, front, stats, audit } = outcome;
        use crate::audit::AuditAction;
        // The incremental front matches the batch recompute over the
        // accepted candidates.
        let points: Vec<[f64; 3]> = cands.iter().map(|c| objectives(&c.estimate)).collect();
        assert_eq!(front, crate::pareto::pareto_front_indices(&points));
        // Every rejection in this test is a finite constraint
        // violation, so all of them are kept as fallback material.
        assert_eq!(kept_rejected.len(), stats.rejected);
        let accepted = audit.iter().filter(|r| r.action == AuditAction::Accepted).count();
        let rejected = audit.iter().filter(|r| r.action == AuditAction::Rejected).count();
        let pruned = audit.iter().filter(|r| r.action == AuditAction::PrunedSubtree).count();
        assert_eq!(accepted + rejected, stats.evaluated, "one record per evaluation");
        assert_eq!(accepted, cands.len());
        assert_eq!(rejected, stats.rejected);
        assert_eq!(pruned, stats.pruned_subtrees);
        assert!(pruned > 0, "tight budget should prune");
        for r in &audit {
            assert!(!r.reason.is_empty(), "decision without a reason: {r:?}");
            match r.action {
                AuditAction::PrunedSubtree => {
                    assert!(r.estimate.is_none());
                    assert!(r.reason.contains("lower bound"), "{}", r.reason);
                }
                AuditAction::Rejected => {
                    assert!(r.estimate.is_some());
                    assert!(r.reason.contains("peak memory"), "{}", r.reason);
                }
                _ => assert!(r.estimate.is_some()),
            }
        }
        // The seed template is flagged as such.
        assert!(audit.first().is_some_and(|r| r.seed_candidate));
        assert!(audit.iter().skip(1).filter(|r| r.seed_candidate).count() == 0);
    }
}
