//! The decision maker: Pareto filtering + priority-weighted selection.
//!
//! "With an awareness of application requirements, the explorer
//! emphasizes the specific performance metrics and leverages Pareto
//! front theory to obtain the most suitable candidates" (paper §3.3).

use crate::dfs::EvaluatedCandidate;
use crate::pareto::{objectives, pareto_front_indices};
use crate::targets::Priority;

/// A training guideline: the chosen configuration with its predicted
/// performance and the priority that selected it.
#[derive(Debug, Clone)]
pub struct Guideline {
    /// The recommended configuration.
    pub config: gnnav_runtime::TrainingConfig,
    /// The estimator's prediction for it.
    pub estimate: gnnav_estimator::PerfEstimate,
    /// The priority preset used for selection.
    pub priority: Priority,
}

/// Selects the guideline among `candidates` for `priority`.
///
/// Candidates are first reduced to the estimated Pareto front over
/// `(T, Γ, −Acc)`; the front is then scalarized with the priority's
/// weights over min–max-normalized objectives and the minimizer wins.
/// Returns `None` when `candidates` is empty.
pub fn decide(candidates: &[EvaluatedCandidate], priority: Priority) -> Option<Guideline> {
    if candidates.is_empty() {
        return None;
    }
    let points: Vec<[f64; 3]> = candidates.iter().map(|c| objectives(&c.estimate)).collect();
    let front = pareto_front_indices(&points);

    // Min–max normalization bounds over the whole candidate set (the
    // front alone can collapse a dimension).
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in &points {
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let norm = |v: f64, d: usize| {
        if hi[d] > lo[d] {
            (v - lo[d]) / (hi[d] - lo[d])
        } else {
            0.0
        }
    };
    let t = priority.targets();
    let best = front.into_iter().min_by(|&a, &b| {
        let score = |i: usize| {
            t.w_time * norm(points[i][0], 0)
                + t.w_memory * norm(points[i][1], 1)
                + t.w_accuracy * norm(points[i][2], 2)
        };
        score(a).partial_cmp(&score(b)).expect("finite scores")
    })?;
    Some(Guideline {
        config: candidates[best].config.clone(),
        estimate: candidates[best].estimate,
        priority,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_estimator::PerfEstimate;
    use gnnav_runtime::TrainingConfig;

    fn cand(t: f64, m: f64, a: f64) -> EvaluatedCandidate {
        EvaluatedCandidate {
            config: TrainingConfig::default(),
            estimate: PerfEstimate {
                time_s: t,
                mem_bytes: m,
                accuracy: a,
                batch_nodes: 0.0,
                hit_rate: 0.0,
            },
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(decide(&[], Priority::Balance).is_none());
    }

    #[test]
    fn dominated_candidate_never_chosen() {
        let cands = vec![
            cand(1.0, 100.0, 0.9),
            cand(2.0, 200.0, 0.8), // dominated
            cand(0.5, 300.0, 0.85),
        ];
        for p in Priority::ALL {
            let g = decide(&cands, p).expect("non-empty");
            assert_ne!(g.estimate.time_s, 2.0, "{p} picked a dominated point");
        }
    }

    #[test]
    fn priorities_pick_their_emphasis() {
        // Three extreme corners of the trade space.
        let fast = cand(0.1, 900.0, 0.70); // fastest, hungry, inaccurate
        let lean = cand(5.0, 100.0, 0.72); // slow, tiny, inaccurate
        let smart = cand(4.0, 800.0, 0.95); // slow, hungry, accurate
        let cands = vec![fast.clone(), lean.clone(), smart.clone()];

        let tm = decide(&cands, Priority::ExTimeMemory).expect("tm");
        assert!(
            tm.estimate.accuracy < 0.9,
            "Ex-TM should sacrifice accuracy, chose acc {}",
            tm.estimate.accuracy
        );
        let ta = decide(&cands, Priority::ExTimeAccuracy).expect("ta");
        assert!(ta.estimate.time_s < 5.0 || ta.estimate.accuracy > 0.9);
        let ma = decide(&cands, Priority::ExMemoryAccuracy).expect("ma");
        assert_ne!(ma.estimate.time_s, 0.1, "Ex-MA should not chase pure speed");
    }

    #[test]
    fn single_candidate_is_chosen() {
        let g = decide(&[cand(1.0, 1.0, 0.5)], Priority::Balance).expect("one");
        assert_eq!(g.priority, Priority::Balance);
    }
}
