//! Pareto-front extraction over `(T, Γ, −Acc)`.

use gnnav_estimator::PerfEstimate;

/// The minimization objective vector of an estimate:
/// `(time, memory, -accuracy)`.
pub fn objectives(est: &PerfEstimate) -> [f64; 3] {
    [est.time_s, est.mem_bytes, -est.accuracy]
}

/// Whether `a` Pareto-dominates `b` (no worse in every objective,
/// strictly better in at least one; both minimized).
pub fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points among `points` (minimization
/// in every coordinate). Duplicate points are all kept.
///
/// Reference O(n²) form; the explorers maintain the same front
/// incrementally with [`ParetoFront`] (property-tested equivalent).
pub fn pareto_front_indices(points: &[[f64; 3]]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// An incrementally maintained Pareto front (minimization in every
/// coordinate).
///
/// Feeding points in index order yields exactly
/// [`pareto_front_indices`] over the same sequence, but each insert
/// costs O(front) dominance checks instead of the O(n²) batch recompute
/// — front members dominated by a newcomer are evicted, a newcomer
/// dominated by the front is never admitted (dominance is transitive,
/// so checking the surviving front suffices), and duplicates all
/// survive (equal points never dominate each other).
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    seen: usize,
    front: Vec<(usize, [f64; 3])>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Inserts the next point (its index is the number of points
    /// inserted so far) and returns whether it joined the front.
    pub fn insert(&mut self, point: [f64; 3]) -> bool {
        let index = self.seen;
        self.seen += 1;
        if self.front.iter().any(|(_, q)| dominates(q, &point)) {
            return false;
        }
        self.front.retain(|(_, q)| !dominates(&point, q));
        self.front.push((index, point));
        true
    }

    /// Points inserted so far (front members and dominated alike).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Current front size.
    pub fn len(&self) -> usize {
        self.front.len()
    }

    /// Whether no point has made the front.
    pub fn is_empty(&self) -> bool {
        self.front.is_empty()
    }

    /// The front's indices in ascending insertion order — identical to
    /// `pareto_front_indices` over the inserted sequence.
    pub fn indices(&self) -> Vec<usize> {
        self.front.iter().map(|&(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 1.0, 1.0];
        assert!(!dominates(&a, &b));
        let c = [1.0, 0.5, 1.0];
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn dominance_fails_on_tradeoff() {
        let a = [1.0, 2.0, 0.0];
        let b = [2.0, 1.0, 0.0];
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn front_excludes_dominated() {
        let points = vec![
            [1.0, 1.0, 0.0], // front
            [2.0, 2.0, 0.0], // dominated by 0
            [0.5, 3.0, 0.0], // front (best time)
            [3.0, 0.5, 0.0], // front (best memory)
        ];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 2, 3]);
    }

    #[test]
    fn front_of_front_is_identity() {
        let points = vec![[1.0, 3.0, 0.0], [2.0, 2.0, 0.0], [3.0, 1.0, 0.0]];
        let front = pareto_front_indices(&points);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn duplicates_all_survive() {
        let points = vec![[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]];
        assert_eq!(pareto_front_indices(&points).len(), 2);
    }

    #[test]
    fn incremental_front_matches_batch() {
        let points = vec![
            [1.0, 1.0, 0.0],
            [2.0, 2.0, 0.0], // dominated by 0
            [0.5, 3.0, 0.0],
            [3.0, 0.5, 0.0],
            [1.0, 1.0, 0.0],   // duplicate of 0
            [0.25, 0.25, 0.0], // late arrival dominating the whole front
        ];
        let mut inc = ParetoFront::new();
        for &p in &points {
            inc.insert(p);
        }
        assert_eq!(inc.indices(), pareto_front_indices(&points));
        assert_eq!(inc.seen(), points.len());
        assert_eq!(inc.len(), inc.indices().len());
    }

    #[test]
    fn incremental_duplicates_survive() {
        let mut inc = ParetoFront::new();
        assert!(inc.insert([1.0, 1.0, 0.0]));
        assert!(inc.insert([1.0, 1.0, 0.0]));
        assert_eq!(inc.indices(), vec![0, 1]);
        assert!(!inc.is_empty());
    }

    #[test]
    fn objectives_negates_accuracy() {
        let est = PerfEstimate {
            time_s: 2.0,
            mem_bytes: 3.0,
            accuracy: 0.9,
            batch_nodes: 0.0,
            hit_rate: 0.0,
        };
        assert_eq!(objectives(&est), [2.0, 3.0, -0.9]);
    }
}
