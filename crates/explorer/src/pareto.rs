//! Pareto-front extraction over `(T, Γ, −Acc)`.

use gnnav_estimator::PerfEstimate;

/// The minimization objective vector of an estimate:
/// `(time, memory, -accuracy)`.
pub fn objectives(est: &PerfEstimate) -> [f64; 3] {
    [est.time_s, est.mem_bytes, -est.accuracy]
}

/// Whether `a` Pareto-dominates `b` (no worse in every objective,
/// strictly better in at least one; both minimized).
pub fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points among `points` (minimization
/// in every coordinate). Duplicate points are all kept.
pub fn pareto_front_indices(points: &[[f64; 3]]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 1.0, 1.0];
        assert!(!dominates(&a, &b));
        let c = [1.0, 0.5, 1.0];
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn dominance_fails_on_tradeoff() {
        let a = [1.0, 2.0, 0.0];
        let b = [2.0, 1.0, 0.0];
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn front_excludes_dominated() {
        let points = vec![
            [1.0, 1.0, 0.0], // front
            [2.0, 2.0, 0.0], // dominated by 0
            [0.5, 3.0, 0.0], // front (best time)
            [3.0, 0.5, 0.0], // front (best memory)
        ];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 2, 3]);
    }

    #[test]
    fn front_of_front_is_identity() {
        let points = vec![[1.0, 3.0, 0.0], [2.0, 2.0, 0.0], [3.0, 1.0, 0.0]];
        let front = pareto_front_indices(&points);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn duplicates_all_survive() {
        let points = vec![[1.0, 1.0, 0.0], [1.0, 1.0, 0.0]];
        assert_eq!(pareto_front_indices(&points).len(), 2);
    }

    #[test]
    fn objectives_negates_accuracy() {
        let est = PerfEstimate {
            time_s: 2.0,
            mem_bytes: 3.0,
            accuracy: 0.9,
            batch_nodes: 0.0,
            hit_rate: 0.0,
        };
        assert_eq!(objectives(&est), [2.0, 3.0, -0.9]);
    }
}
