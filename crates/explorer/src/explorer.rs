//! End-to-end guideline exploration (Step 2 of Fig. 2).

use crate::audit::{AuditAction, AuditRecord};
use crate::decision::{decide, Guideline};
use crate::dfs::{DfsExplorer, DfsStats, EvaluatedCandidate};
use crate::targets::{Priority, RuntimeConstraints};
use crate::ExplorerError;
use gnnav_estimator::GrayBoxEstimator;
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_obs::names as metric;
use gnnav_runtime::{DesignSpace, Template};

/// Everything one exploration produced.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// The selected guideline.
    pub guideline: Guideline,
    /// Every constraint-satisfying candidate the DFS evaluated.
    pub evaluated: Vec<EvaluatedCandidate>,
    /// Indices (into `evaluated`) of the estimated Pareto front.
    pub front: Vec<usize>,
    /// Traversal statistics.
    pub stats: DfsStats,
    /// The decision audit trail: one record per evaluated candidate
    /// and pruned subtree, plus the selected guideline (dumped via
    /// `gnnavigate --audit-out`).
    pub audit: Vec<AuditRecord>,
    /// `Some(reason)` when no candidate satisfied the constraints and
    /// the guideline is the nearest-feasible candidate instead of a
    /// constraint-satisfying one; `None` for a clean selection.
    pub fallback: Option<String>,
}

/// The guideline explorer: DFS + estimator + decision maker.
///
/// # Example
///
/// Profile a few configurations on a tiny synthetic slice, fit the
/// gray-box estimator, and explore (runs in a doctest):
///
/// ```
/// use gnnav_explorer::{Explorer, Priority, RuntimeConstraints};
/// use gnnav_estimator::{GrayBoxEstimator, Profiler};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
/// use gnnav_nn::ModelKind;
/// use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01)?;
/// let platform = Platform::default_rtx4090();
/// let profiler = Profiler::new(
///     RuntimeBackend::new(platform.clone()),
///     ExecutionOptions::timing_only(),
/// );
/// let configs = DesignSpace::reduced().sample(8, ModelKind::Sage, 5);
/// let db = profiler.profile(&dataset, &configs)?;
/// let mut estimator = GrayBoxEstimator::new();
/// estimator.fit(&db)?;
/// let explorer = Explorer::new(&estimator, 200);
/// let result = explorer.explore(&dataset, &platform, ModelKind::Sage,
///                               Priority::Balance, &RuntimeConstraints::none())?;
/// assert!(!result.evaluated.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Explorer<'a> {
    estimator: &'a GrayBoxEstimator,
    space: DesignSpace,
    budget: usize,
    seed: u64,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer over the standard design space with the
    /// given (fitted) estimator and leaf-evaluation budget.
    pub fn new(estimator: &'a GrayBoxEstimator, budget: usize) -> Self {
        Explorer { estimator, space: DesignSpace::standard(), budget, seed: 0xDF5 }
    }

    /// Replaces the design space.
    pub fn with_space(mut self, space: DesignSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the traversal seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Read access to the fitted estimator.
    pub fn estimator(&self) -> &GrayBoxEstimator {
        self.estimator
    }

    /// The traversal seed (part of the exploration-cache fingerprint).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The leaf-evaluation budget (part of the exploration-cache
    /// fingerprint).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Explores and returns the guideline for `priority` under
    /// `constraints`, seeding the search with the baseline templates.
    ///
    /// When no evaluated candidate satisfies the constraints the
    /// explorer degrades gracefully: it falls back to the evaluated
    /// candidate with the smallest total constraint excess, records
    /// the decision in the audit trail, and reports it in
    /// [`ExplorationResult::fallback`].
    ///
    /// # Errors
    ///
    /// Returns [`ExplorerError::NoFeasibleCandidate`] only when there
    /// is nothing to fall back to — no candidate was evaluated with a
    /// finite prediction at all.
    pub fn explore(
        &self,
        dataset: &Dataset,
        platform: &Platform,
        model: ModelKind,
        priority: Priority,
        constraints: &RuntimeConstraints,
    ) -> Result<ExplorationResult, ExplorerError> {
        let seeds: Vec<_> = Template::ALL.iter().map(|t| t.config(model)).collect();
        self.explore_from(dataset, platform, model, priority, constraints, &seeds)
    }

    /// Like [`explore`](Self::explore), but seeds the DFS with the
    /// given configurations instead of the baseline templates.
    ///
    /// This is the incremental re-exploration entry point used by
    /// adaptive training: seeding with the previous run's Pareto-front
    /// configurations (plus the currently running one) warm-starts the
    /// search near known-good regions, so a small budget suffices.
    ///
    /// # Errors
    ///
    /// Same contract as [`explore`](Self::explore).
    pub fn explore_from(
        &self,
        dataset: &Dataset,
        platform: &Platform,
        model: ModelKind,
        priority: Priority,
        constraints: &RuntimeConstraints,
        seeds: &[gnnav_runtime::TrainingConfig],
    ) -> Result<ExplorationResult, ExplorerError> {
        let metrics = gnnav_obs::global();
        let journal = metrics.journal();
        let _explore_span = metrics.span(metric::EXPLORER_EXPLORE_WALL);
        // Wall-time reporting rides the journal's monotonic clock —
        // one epoch for every explorer event, immune to wall-clock
        // adjustments and directly comparable across the trace.
        let explore_t0 = journal.is_enabled().then(|| journal.now_us());
        let dfs = DfsExplorer::new(self.space.clone(), self.budget, self.seed);
        let outcome = dfs.run_audited(self.estimator, dataset, platform, model, constraints, seeds);
        let (evaluated, rejected, front, stats) =
            (outcome.accepted, outcome.rejected, outcome.front, outcome.stats);
        let mut audit = outcome.audit;
        let decided = {
            // Recorded flat (not via `Registry::span`, which would
            // nest the series under the enclosing explore span as
            // `explorer.explore.explorer.decide`).
            let decide_t0 = std::time::Instant::now();
            let t0 = journal.is_enabled().then(|| journal.now_us());
            let decided = decide(&evaluated, priority);
            if let Some(t0) = t0 {
                journal.span_complete(
                    metric::EVENT_DECIDE,
                    metric::TRACK_EXPLORER,
                    t0,
                    Some(journal.now_us() - t0),
                    None,
                    None,
                    vec![("candidates".into(), (evaluated.len() as f64).into())],
                );
            }
            metrics.observe_duration(metric::EXPLORER_DECIDE_WALL, decide_t0.elapsed());
            decided
        };
        if metrics.is_enabled() {
            metrics.add(metric::EXPLORER_RUNS, 1);
            metrics.add(metric::EXPLORER_EVALUATED, stats.evaluated as u64);
            metrics.add(metric::EXPLORER_REJECTED, stats.rejected as u64);
            metrics.add(metric::EXPLORER_PRUNED, stats.pruned_subtrees as u64);
            // Zero-valued adds register the recovery counters so the
            // perf-gate baselines pin them at zero on clean runs.
            metrics.add(metric::EXPLORER_FALLBACKS, 0);
            metrics.add(metric::EXPLORER_NONFINITE, 0);
            metrics.gauge_set(metric::EXPLORER_FRONT_SIZE, front.len() as f64);
        }
        let (guideline, action, reason, fallback) = match decided {
            Some(g) => {
                let reason = format!(
                    "minimizes the {}-weighted scalarization over a {}-point Pareto front",
                    priority.label(),
                    front.len()
                );
                (g, AuditAction::Selected, reason, None)
            }
            None => {
                // Graceful degradation: constraints are unsatisfiable
                // within the budget, so hand back the least-infeasible
                // candidate rather than nothing.
                let best = rejected
                    .iter()
                    .min_by(|a, b| {
                        constraints
                            .excess(&a.estimate)
                            .partial_cmp(&constraints.excess(&b.estimate))
                            .expect("excess is never NaN")
                    })
                    .ok_or(ExplorerError::NoFeasibleCandidate)?;
                let excess = constraints.excess(&best.estimate);
                let reason = format!(
                    "no evaluated candidate satisfies the runtime constraints; nearest-feasible \
                     fallback (total constraint excess {excess:.4})"
                );
                if metrics.is_enabled() {
                    metrics.add(metric::EXPLORER_FALLBACKS, 1);
                }
                let g =
                    Guideline { config: best.config.clone(), estimate: best.estimate, priority };
                (g, AuditAction::Fallback, reason.clone(), Some(reason))
            }
        };
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_GUIDELINE,
                metric::TRACK_EXPLORER,
                None,
                vec![
                    ("config".into(), guideline.config.summary().into()),
                    ("priority".into(), priority.label().into()),
                    ("reason".into(), reason.as_str().into()),
                    ("fallback".into(), fallback.is_some().into()),
                ],
            );
        }
        audit.push(AuditRecord {
            config: guideline.config.summary(),
            estimate: Some(guideline.estimate),
            action,
            reason,
            seed_candidate: false,
        });
        if let Some(t0) = explore_t0 {
            journal.span_complete(
                metric::EVENT_EXPLORE,
                metric::TRACK_EXPLORER,
                t0,
                Some(journal.now_us() - t0),
                None,
                None,
                vec![
                    ("evaluated".into(), (stats.evaluated as f64).into()),
                    ("pruned".into(), (stats.pruned_subtrees as f64).into()),
                    ("front".into(), (front.len() as f64).into()),
                ],
            );
        }
        Ok(ExplorationResult { guideline, evaluated, front, stats, audit, fallback })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_estimator::{ProfileDb, Profiler};
    use gnnav_graph::DatasetId;
    use gnnav_runtime::{ExecutionOptions, RuntimeBackend};

    fn setup() -> (Dataset, GrayBoxEstimator) {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.03).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions {
                epochs: 1,
                train: true,
                train_batches_cap: Some(1),
                ..Default::default()
            },
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(30, ModelKind::Sage, 5);
        let db: ProfileDb = profiler.profile(&dataset, &cfgs).expect("profile");
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        (dataset, est)
    }

    #[test]
    fn exploration_produces_pareto_guideline() {
        let (dataset, est) = setup();
        let explorer = Explorer::new(&est, 400);
        let result = explorer
            .explore(
                &dataset,
                &Platform::default_rtx4090(),
                ModelKind::Sage,
                Priority::Balance,
                &RuntimeConstraints::none(),
            )
            .expect("explore");
        assert!(!result.evaluated.is_empty());
        assert!(!result.front.is_empty());
        assert!(result.stats.evaluated > 0);
        // The guideline must be on the estimated front.
        let g = &result.guideline;
        assert!(result.front.iter().any(|&i| result.evaluated[i].config == g.config));
    }

    #[test]
    fn different_priorities_can_differ() {
        let (dataset, est) = setup();
        let explorer = Explorer::new(&est, 400);
        let platform = Platform::default_rtx4090();
        let mut summaries = Vec::new();
        for p in Priority::ALL {
            let r = explorer
                .explore(&dataset, &platform, ModelKind::Sage, p, &RuntimeConstraints::none())
                .expect("explore");
            summaries.push((p, r.guideline.estimate));
        }
        // Ex-TM's pick must be no slower than Ex-MA's pick.
        let tm = summaries[1].1;
        let ma = summaries[2].1;
        assert!(
            tm.time_s <= ma.time_s + 1e-9,
            "Ex-TM ({}) slower than Ex-MA ({})",
            tm.time_s,
            ma.time_s
        );
    }

    #[test]
    fn infeasible_constraints_fall_back_to_nearest_candidate() {
        let (dataset, est) = setup();
        let explorer = Explorer::new(&est, 400);
        let impossible =
            RuntimeConstraints { max_time_s: Some(1e-12), ..RuntimeConstraints::none() };
        let result = explorer
            .explore(
                &dataset,
                &Platform::default_rtx4090(),
                ModelKind::Sage,
                Priority::Balance,
                &impossible,
            )
            .expect("unsatisfiable constraints degrade, they do not fail");
        assert!(result.evaluated.is_empty(), "nothing satisfies 1 ps per epoch");
        let reason = result.fallback.as_deref().expect("fallback recorded");
        assert!(reason.contains("nearest-feasible"), "{reason}");
        // The audit trail ends with the fallback decision.
        let last = result.audit.last().expect("non-empty trail");
        assert_eq!(last.action, AuditAction::Fallback);
        assert_eq!(last.config, result.guideline.config.summary());
        // The fallback pick is the fastest evaluated candidate: with
        // only the time constraint violated, excess is monotone in
        // predicted time.
        let audit_times: Vec<f64> = result
            .audit
            .iter()
            .filter(|r| r.action == AuditAction::Rejected)
            .filter_map(|r| r.estimate.map(|e| e.time_s))
            .collect();
        let min_time = audit_times.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(result.guideline.estimate.time_s, min_time);
    }

    #[test]
    fn feasible_exploration_reports_no_fallback() {
        let (dataset, est) = setup();
        let explorer = Explorer::new(&est, 400);
        let result = explorer
            .explore(
                &dataset,
                &Platform::default_rtx4090(),
                ModelKind::Sage,
                Priority::Balance,
                &RuntimeConstraints::none(),
            )
            .expect("explore");
        assert!(result.fallback.is_none());
        assert_eq!(result.audit.last().map(|r| r.action), Some(AuditAction::Selected));
    }
}
