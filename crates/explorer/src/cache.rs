//! Durable exploration-result caching for sub-millisecond repeat
//! navigation.
//!
//! A design-space exploration is the most expensive step of a
//! navigator invocation, and it is pure: the DFS is seeded
//! deterministically and the estimator's predictions are functions of
//! the (dataset, platform, estimator) triple, so the same exploration
//! inputs always produce the same [`ExplorationResult`] — guideline,
//! candidate list, Pareto front, stats, and audit trail alike.
//! [`ExploreCache`] persists each result to an append-only write-ahead
//! log keyed by a canonical *fingerprint* of every input the search
//! conditions on, so a repeated invocation skips the DSE entirely and
//! hands back a byte-identical result.
//!
//! Durability semantics match the profile store's: torn tails are
//! truncated and checksum-failed frames dropped at WAL open; a
//! CRC-valid frame that fails result decoding (a foreign format
//! version, say) is skipped and counted in
//! [`ExploreCache::undecodable`] — the exploration then simply reruns.
//!
//! Hits, misses, and inserts are metered both on the cache instance
//! (for tests, immune to the shared global registry) and under
//! `explorer.cache.*` in the global registry, with `explore.cache`
//! instants on the explorer journal track.

use crate::audit::{AuditAction, AuditRecord};
use crate::decision::Guideline;
use crate::dfs::{DfsStats, EvaluatedCandidate};
use crate::explorer::ExplorationResult;
use crate::targets::{Priority, RuntimeConstraints};
use gnnav_estimator::PerfEstimate;
use gnnav_graph::Dataset;
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_obs::names as metric;
use gnnav_runtime::checkpoint::{get_config, put_config};
use gnnav_runtime::DesignSpace;
use gnnav_store::{ByteReader, ByteWriter, StoreError, Wal};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Leading byte of every cached-result frame; bumped on layout changes
/// so old caches are skipped (and re-explored) rather than misread.
pub const EXPLORE_RESULT_TAG: u8 = 1;

fn priority_tag(p: Priority) -> u8 {
    match p {
        Priority::Balance => 0,
        Priority::ExTimeMemory => 1,
        Priority::ExMemoryAccuracy => 2,
        Priority::ExTimeAccuracy => 3,
    }
}

fn priority_from_tag(t: u8) -> Result<Priority, StoreError> {
    Ok(match t {
        0 => Priority::Balance,
        1 => Priority::ExTimeMemory,
        2 => Priority::ExMemoryAccuracy,
        3 => Priority::ExTimeAccuracy,
        t => return Err(StoreError::decode(format!("unknown priority tag {t}"))),
    })
}

fn action_tag(a: AuditAction) -> u8 {
    match a {
        AuditAction::Accepted => 0,
        AuditAction::Rejected => 1,
        AuditAction::PrunedSubtree => 2,
        AuditAction::Selected => 3,
        AuditAction::Fallback => 4,
        AuditAction::Switched => 5,
    }
}

fn action_from_tag(t: u8) -> Result<AuditAction, StoreError> {
    Ok(match t {
        0 => AuditAction::Accepted,
        1 => AuditAction::Rejected,
        2 => AuditAction::PrunedSubtree,
        3 => AuditAction::Selected,
        4 => AuditAction::Fallback,
        5 => AuditAction::Switched,
        t => return Err(StoreError::decode(format!("unknown audit-action tag {t}"))),
    })
}

fn put_estimate(w: &mut ByteWriter, e: &PerfEstimate) {
    w.put_f64(e.time_s);
    w.put_f64(e.mem_bytes);
    w.put_f64(e.accuracy);
    w.put_f64(e.batch_nodes);
    w.put_f64(e.hit_rate);
}

fn get_estimate(r: &mut ByteReader) -> Result<PerfEstimate, StoreError> {
    Ok(PerfEstimate {
        time_s: r.get_f64()?,
        mem_bytes: r.get_f64()?,
        accuracy: r.get_f64()?,
        batch_nodes: r.get_f64()?,
        hit_rate: r.get_f64()?,
    })
}

/// FNV-1a over canonical key bytes — stable across runs and platforms
/// (everything is encoded little-endian with raw float bits).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The canonical fingerprint of one exploration: everything the search
/// conditions on must be covered, or two different explorations would
/// collide and serve each other's results.
///
/// Covered: the dataset's identity and shape statistics, the platform,
/// the model, the full design space, the runtime-constraint bucket,
/// the priority, the traversal seed and leaf budget, and an opaque
/// `estimator_salt` describing how the estimator was fitted (sample
/// counts, augmentation, profiling mode) — the predictions themselves
/// depend on the fit, so the salt keeps differently-fitted estimators
/// from sharing entries.
#[allow(clippy::too_many_arguments)] // the fingerprint *is* the full input list
pub fn explore_fingerprint(
    dataset: &Dataset,
    platform: &Platform,
    model: ModelKind,
    space: &DesignSpace,
    priority: Priority,
    constraints: &RuntimeConstraints,
    budget: usize,
    seed: u64,
    estimator_salt: &str,
) -> u64 {
    let mut w = ByteWriter::new();
    let stats = dataset.stats();
    w.put_str(&format!("{:?}", dataset.id()));
    w.put_f64(stats.num_nodes as f64);
    w.put_f64(stats.num_edges as f64);
    w.put_f64(stats.degrees.mean);
    w.put_f64(stats.degrees.skew);
    w.put_f64(stats.intra_community_fraction.unwrap_or(0.0));
    w.put_f64(dataset.feat_dim() as f64);
    w.put_f64(dataset.num_classes() as f64);
    w.put_f64(dataset.split().train.len() as f64);
    let p = platform;
    w.put_str(&p.host.name);
    w.put_f64(p.host.sample_mvps);
    w.put_f64(p.host.mem_bandwidth_gbs);
    w.put_f64(p.host.iteration_overhead_us);
    w.put_str(&p.device.name);
    w.put_f64(p.device.compute_tflops);
    w.put_f64(p.device.mem_bandwidth_gbs);
    w.put_usize(p.device.mem_capacity_bytes);
    w.put_f64(p.device.launch_overhead_us);
    w.put_f64(p.device.fp16_speedup);
    w.put_str(&p.link.name);
    w.put_f64(p.link.bandwidth_gbs);
    w.put_f64(p.link.latency_us);
    w.put_str(&format!("{model:?}"));
    // The design space and constraints are structs of plain values with
    // derived Debug — the rendering is canonical and covers every axis
    // list exactly (floats print exhaustively via `{:?}`).
    w.put_str(&format!("{space:?}"));
    w.put_str(&format!("{constraints:?}"));
    w.put_u8(priority_tag(priority));
    w.put_u64(budget as u64);
    w.put_u64(seed);
    w.put_str(estimator_salt);
    fnv1a64(&w.finish())
}

fn encode_result(fingerprint: u64, result: &ExplorationResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(EXPLORE_RESULT_TAG);
    w.put_u64(fingerprint);
    put_config(&mut w, &result.guideline.config);
    put_estimate(&mut w, &result.guideline.estimate);
    w.put_u8(priority_tag(result.guideline.priority));
    w.put_usize(result.evaluated.len());
    for c in &result.evaluated {
        put_config(&mut w, &c.config);
        put_estimate(&mut w, &c.estimate);
    }
    w.put_usize_slice(&result.front);
    w.put_usize(result.stats.evaluated);
    w.put_usize(result.stats.rejected);
    w.put_usize(result.stats.pruned_subtrees);
    w.put_usize(result.audit.len());
    for r in &result.audit {
        w.put_str(&r.config);
        w.put_bool(r.estimate.is_some());
        if let Some(e) = &r.estimate {
            put_estimate(&mut w, e);
        }
        w.put_u8(action_tag(r.action));
        w.put_str(&r.reason);
        w.put_bool(r.seed_candidate);
    }
    w.put_bool(result.fallback.is_some());
    if let Some(f) = &result.fallback {
        w.put_str(f);
    }
    w.finish()
}

fn decode_result(payload: &[u8]) -> Result<(u64, ExplorationResult), StoreError> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8()?;
    if tag != EXPLORE_RESULT_TAG {
        return Err(StoreError::decode(format!(
            "frame tag {tag} is not an exploration result (want {EXPLORE_RESULT_TAG})"
        )));
    }
    let fingerprint = r.get_u64()?;
    let config = get_config(&mut r)?;
    let estimate = get_estimate(&mut r)?;
    let priority = priority_from_tag(r.get_u8()?)?;
    let guideline = Guideline { config, estimate, priority };
    let n = r.get_usize()?;
    let mut evaluated = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let config = get_config(&mut r)?;
        let estimate = get_estimate(&mut r)?;
        evaluated.push(EvaluatedCandidate { config, estimate });
    }
    let front = r.get_usize_vec()?;
    let stats = DfsStats {
        evaluated: r.get_usize()?,
        rejected: r.get_usize()?,
        pruned_subtrees: r.get_usize()?,
    };
    let n = r.get_usize()?;
    let mut audit = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let config = r.get_str()?;
        let estimate = if r.get_bool()? { Some(get_estimate(&mut r)?) } else { None };
        let action = action_from_tag(r.get_u8()?)?;
        let reason = r.get_str()?;
        let seed_candidate = r.get_bool()?;
        audit.push(AuditRecord { config, estimate, action, reason, seed_candidate });
    }
    let fallback = if r.get_bool()? { Some(r.get_str()?) } else { None };
    if !r.is_exhausted() {
        return Err(StoreError::decode(format!(
            "{} trailing bytes after exploration result",
            r.remaining()
        )));
    }
    Ok((fingerprint, ExplorationResult { guideline, evaluated, front, stats, audit, fallback }))
}

/// A WAL-backed, fingerprint-indexed cache of exploration results.
///
/// # Example
///
/// ```no_run
/// use gnnav_explorer::ExploreCache;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = ExploreCache::open("explore.wal")?;
/// println!("{} cached explorations survived recovery", cache.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExploreCache {
    wal: Wal,
    index: HashMap<u64, usize>,
    results: Vec<(u64, ExplorationResult)>,
    undecodable: usize,
    hits: u64,
    misses: u64,
    inserts: u64,
}

impl ExploreCache {
    /// Opens (or creates) the cache at `path`, replaying its log.
    ///
    /// Frame-level damage (torn tail, CRC failure) is handled by the
    /// WAL recovery scan; CRC-valid frames that fail result decoding
    /// are skipped and counted in [`undecodable`](Self::undecodable).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] with the offending path when the log cannot
    /// be read, or [`StoreError::BadMagic`] /
    /// [`StoreError::VersionMismatch`] on an alien file header.
    pub fn open(path: impl Into<PathBuf>) -> Result<ExploreCache, StoreError> {
        let wal = Wal::open(path)?;
        let mut index = HashMap::new();
        let mut results = Vec::with_capacity(wal.len());
        let mut undecodable = 0usize;
        for frame in wal.records() {
            match decode_result(frame) {
                Ok((fp, result)) => {
                    index.insert(fp, results.len());
                    results.push((fp, result));
                }
                Err(_) => undecodable += 1,
            }
        }
        Ok(ExploreCache { wal, index, results, undecodable, hits: 0, misses: 0, inserts: 0 })
    }

    /// The backing log's path.
    pub fn path(&self) -> &Path {
        self.wal.path()
    }

    /// Number of cached explorations.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// CRC-valid frames that failed result decoding at open (foreign
    /// format versions); their explorations will simply rerun.
    pub fn undecodable(&self) -> usize {
        self.undecodable
    }

    /// The WAL recovery scan's outcome (torn-tail truncation, CRC
    /// drops) from open.
    pub fn recovery(&self) -> gnnav_store::RecoveryStats {
        self.wal.recovery()
    }

    /// Lookups served from the cache since open.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing since open.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Results appended since open.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    fn meter(&self, outcome: &str, fingerprint: u64, counter: &'static str) {
        let metrics = gnnav_obs::global();
        if metrics.is_enabled() {
            metrics.add(counter, 1);
        }
        let journal = metrics.journal();
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_EXPLORE_CACHE,
                metric::TRACK_EXPLORER,
                None,
                vec![
                    ("outcome".into(), outcome.into()),
                    ("fingerprint".into(), format!("{fingerprint:016x}").into()),
                ],
            );
        }
    }

    /// The cached result for `fingerprint`, if any; meters the hit or
    /// miss.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<&ExplorationResult> {
        match self.index.get(&fingerprint) {
            Some(&i) => {
                self.hits += 1;
                self.meter("hit", fingerprint, metric::EXPLORER_CACHE_HITS);
                Some(&self.results[i].1)
            }
            None => {
                self.misses += 1;
                self.meter("miss", fingerprint, metric::EXPLORER_CACHE_MISSES);
                None
            }
        }
    }

    /// Durably appends `result` under `fingerprint`. A fingerprint
    /// already cached is skipped (exploration is deterministic, so the
    /// stored result is identical); returns whether an append happened.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the log cannot be written.
    pub fn insert(
        &mut self,
        fingerprint: u64,
        result: &ExplorationResult,
    ) -> Result<bool, StoreError> {
        if self.index.contains_key(&fingerprint) {
            return Ok(false);
        }
        self.wal.append(&encode_result(fingerprint, result))?;
        self.index.insert(fingerprint, self.results.len());
        self.results.push((fingerprint, result.clone()));
        self.inserts += 1;
        self.meter("insert", fingerprint, metric::EXPLORER_CACHE_INSERTS);
        Ok(true)
    }

    /// Rewrites the log with only the frames that decode as exploration
    /// results, purging dead bytes and undecodable frames. Returns the
    /// number of frames dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the rewrite fails.
    pub fn compact(&mut self) -> Result<usize, StoreError> {
        let dropped = self.wal.compact(|_, frame| decode_result(frame).is_ok())?;
        self.undecodable = 0;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_estimator::{GrayBoxEstimator, Profiler};
    use gnnav_graph::DatasetId;
    use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gnnav-ec-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("explore.wal");
        let _ = std::fs::remove_file(&path);
        path
    }

    fn explored() -> (Dataset, ExplorationResult) {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let profiler = Profiler::new(
            RuntimeBackend::new(Platform::default_rtx4090()),
            ExecutionOptions::timing_only(),
        )
        .with_threads(4);
        let cfgs = DesignSpace::standard().sample(25, ModelKind::Sage, 5);
        let db = profiler.profile(&dataset, &cfgs).expect("profile");
        let mut est = GrayBoxEstimator::new();
        est.fit(&db).expect("fit");
        let explorer = crate::Explorer::new(&est, 150);
        // Tight memory bound so the result exercises prunes, rejects,
        // and estimate-free audit records.
        let constraints = RuntimeConstraints {
            max_mem_bytes: Some(0.2 * dataset.num_nodes() as f64 * dataset.feat_dim() as f64 * 2.0),
            ..RuntimeConstraints::none()
        };
        let result = explorer
            .explore(
                &dataset,
                &Platform::default_rtx4090(),
                ModelKind::Sage,
                Priority::Balance,
                &constraints,
            )
            .expect("explore");
        (dataset, result)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (dataset, result) = explored();
        let fp = explore_fingerprint(
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            &DesignSpace::standard(),
            Priority::Balance,
            &RuntimeConstraints::none(),
            150,
            0xDF5,
            "salt",
        );
        let path = temp_wal("rt");
        {
            let mut cache = ExploreCache::open(&path).expect("open");
            assert!(cache.insert(fp, &result).expect("insert"));
            assert!(!cache.insert(fp, &result).expect("dup skipped"));
            assert_eq!(cache.inserts(), 1);
        }
        let mut cache = ExploreCache::open(&path).expect("reopen");
        assert_eq!(cache.len(), 1);
        assert!(cache.recovery().is_clean());
        assert_eq!(cache.undecodable(), 0);
        assert!(cache.lookup(fp ^ 1).is_none());
        let got = cache.lookup(fp).expect("present");
        // Bit-exact round trip: identical Debug rendering covers every
        // f64 payload (floats print exhaustively via {:?}) and every
        // audit string.
        assert_eq!(format!("{got:?}"), format!("{result:?}"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_distinguishes_every_input() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let platform = Platform::default_rtx4090();
        let space = DesignSpace::standard();
        let none = RuntimeConstraints::none();
        let fp = |priority, constraints: &RuntimeConstraints, budget, seed, salt: &str| {
            explore_fingerprint(
                &dataset,
                &platform,
                ModelKind::Sage,
                &space,
                priority,
                constraints,
                budget,
                seed,
                salt,
            )
        };
        let base = fp(Priority::Balance, &none, 200, 7, "s");
        assert_eq!(base, fp(Priority::Balance, &none, 200, 7, "s"), "deterministic");
        assert_ne!(base, fp(Priority::ExTimeMemory, &none, 200, 7, "s"));
        let tight = RuntimeConstraints { max_time_s: Some(1.0), ..none };
        assert_ne!(base, fp(Priority::Balance, &tight, 200, 7, "s"));
        assert_ne!(base, fp(Priority::Balance, &none, 201, 7, "s"));
        assert_ne!(base, fp(Priority::Balance, &none, 200, 8, "s"));
        assert_ne!(base, fp(Priority::Balance, &none, 200, 7, "other"));
        let other = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.01).expect("load");
        assert_ne!(
            base,
            explore_fingerprint(
                &other,
                &platform,
                ModelKind::Sage,
                &space,
                Priority::Balance,
                &none,
                200,
                7,
                "s",
            )
        );
        assert_ne!(
            base,
            explore_fingerprint(
                &dataset,
                &Platform::default_m90(),
                ModelKind::Sage,
                &space,
                Priority::Balance,
                &none,
                200,
                7,
                "s",
            )
        );
        assert_ne!(
            base,
            explore_fingerprint(
                &dataset,
                &platform,
                ModelKind::Sage,
                &DesignSpace::reduced(),
                Priority::Balance,
                &none,
                200,
                7,
                "s",
            )
        );
    }

    #[test]
    fn foreign_frames_are_skipped_not_fatal() {
        let path = temp_wal("alien");
        {
            let mut wal = Wal::open(&path).expect("open");
            wal.append(b"\xFFnot an exploration result").expect("append");
        }
        let cache = ExploreCache::open(&path).expect("open survives");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.undecodable(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_drops_damaged_results_only() {
        let (dataset, result) = explored();
        let mut results = Vec::new();
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            let mut r = result.clone();
            r.guideline.config = TrainingConfig { batch_size: 64 << i, ..r.guideline.config };
            let fp = explore_fingerprint(
                &dataset,
                &Platform::default_rtx4090(),
                ModelKind::Sage,
                &DesignSpace::standard(),
                Priority::Balance,
                &RuntimeConstraints::none(),
                150,
                *seed,
                "salt",
            );
            results.push((fp, r));
        }
        let path = temp_wal("corrupt");
        {
            let mut cache = ExploreCache::open(&path).expect("open");
            for (fp, r) in &results {
                assert!(cache.insert(*fp, r).expect("insert"));
            }
        }
        // Torn tail: the last frame loses bytes and is truncated away.
        gnnav_store::corrupt::torn_write(&path, 5).expect("tear");
        let mut cache = ExploreCache::open(&path).expect("recover");
        assert_eq!(cache.len(), results.len() - 1, "only the torn result is lost");
        assert_eq!(cache.recovery().torn_truncated, 1);
        for (fp, _) in &results[..results.len() - 1] {
            assert!(cache.lookup(*fp).is_some());
        }
        std::fs::remove_file(&path).ok();
    }
}
