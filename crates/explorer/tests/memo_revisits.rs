//! Per-run prediction memoization: a configuration seen twice within
//! one exploration is served from the memo, so `estimator.predictions`
//! drops while the results stay unchanged.
//!
//! Lives in its own integration-test binary: the assertions read the
//! process-global metrics registry, which unit tests running on
//! parallel threads would perturb.

use gnnav_estimator::{GrayBoxEstimator, Profiler};
use gnnav_explorer::{AuditAction, Explorer, Priority, RuntimeConstraints};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, Template};

fn counter(name: &str) -> u64 {
    gnnav_obs::global().snapshot().counters.get(name).copied().unwrap_or(0)
}

#[test]
fn duplicate_seeds_are_memoized_not_repredicted() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions::timing_only(),
    )
    .with_threads(4);
    let cfgs = DesignSpace::standard().sample(25, ModelKind::Sage, 5);
    let db = profiler.profile(&dataset, &cfgs).expect("profile");
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");

    let metrics = gnnav_obs::global();
    metrics.enable(true);

    // The same seed handed in three times: one prediction, two memo
    // hits. (DFS leaves are deduplicated by the visited set, so seeds
    // are the only same-wave revisit source; the memo also spans
    // waves, covering seed configs the traversal reaches again.)
    let seed = Template::Pyg.config(ModelKind::Sage);
    let seeds = vec![seed.clone(), seed.clone(), seed.clone()];
    let explorer = Explorer::new(&est, 150);

    let predictions_before = counter("estimator.predictions");
    let memoized_before = counter("estimator.predictions.memoized");
    let result = explorer
        .explore_from(
            &dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            Priority::Balance,
            &RuntimeConstraints::none(),
            &seeds,
        )
        .expect("explore");
    let predictions = counter("estimator.predictions") - predictions_before;
    let memoized = counter("estimator.predictions.memoized") - memoized_before;

    assert!(result.stats.evaluated >= 3, "all three seed copies count as evaluations");
    assert!(
        memoized >= 2,
        "two of the three identical seeds must be served from the memo (got {memoized})"
    );
    assert_eq!(
        predictions + memoized,
        result.stats.evaluated as u64,
        "every evaluation is either a fresh prediction or a memo hit"
    );
    assert!(
        predictions < result.stats.evaluated as u64,
        "predictions must drop below evaluations on a run with revisits"
    );

    // Results unchanged: the three duplicate-seed audit records carry
    // bit-identical estimates.
    let seed_records: Vec<_> = result.audit.iter().filter(|r| r.seed_candidate).collect();
    assert_eq!(seed_records.len(), 3);
    let rendered: Vec<String> =
        seed_records.iter().map(|r| format!("{:?}", r.estimate.expect("evaluated"))).collect();
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[0], rendered[2]);
    assert!(seed_records.iter().all(|r| r.action != AuditAction::PrunedSubtree));
}
