//! Wave-parallel DFS bitwise-identity harness.
//!
//! The wave restructuring's contract: the full [`DfsOutcome`] —
//! accepted/rejected candidate order, incremental Pareto front,
//! stats, and every audit record with its reason string — is
//! byte-identical to the serial evaluation at every thread width.

use gnnav_estimator::{GrayBoxEstimator, Profiler};
use gnnav_explorer::{DfsExplorer, RuntimeConstraints};
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, Template};

fn fitted(dataset: &Dataset) -> GrayBoxEstimator {
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions::timing_only(),
    )
    .with_threads(4);
    let cfgs = DesignSpace::standard().sample(25, ModelKind::Sage, 5);
    let db = profiler.profile(dataset, &cfgs).expect("profile");
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    est
}

/// Debug formatting prints every f64 exhaustively and every audit
/// string verbatim, so equal renderings mean a bit-exact outcome.
fn outcome_at(
    threads: usize,
    est: &GrayBoxEstimator,
    dataset: &Dataset,
    constraints: &RuntimeConstraints,
) -> String {
    gnnav_par::with_thread_limit(threads, || {
        let explorer = DfsExplorer::new(DesignSpace::standard(), 200, 11);
        let seeds = vec![
            Template::Pyg.config(ModelKind::Sage),
            Template::PaGraphFull.config(ModelKind::Sage),
        ];
        let outcome = explorer.run_audited(
            est,
            dataset,
            &Platform::default_rtx4090(),
            ModelKind::Sage,
            constraints,
            &seeds,
        );
        format!("{outcome:?}")
    })
}

#[test]
fn dfs_outcome_identical_at_thread_widths_1_2_4_8() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let est = fitted(&dataset);
    let serial = outcome_at(1, &est, &dataset, &RuntimeConstraints::none());
    assert!(serial.contains("Accepted"), "run produced accepted candidates");
    for threads in [2usize, 4, 8] {
        let parallel = outcome_at(threads, &est, &dataset, &RuntimeConstraints::none());
        assert_eq!(serial, parallel, "outcome diverged at {threads} threads");
    }
}

#[test]
fn dfs_outcome_identical_under_pruning_and_rejection() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let est = fitted(&dataset);
    // Tight memory bound: the waves now interleave Eval and Prune
    // steps and route candidates to the rejected list too.
    let constraints = RuntimeConstraints {
        max_mem_bytes: Some(0.2 * dataset.num_nodes() as f64 * dataset.feat_dim() as f64 * 2.0),
        ..RuntimeConstraints::none()
    };
    let serial = outcome_at(1, &est, &dataset, &constraints);
    assert!(serial.contains("PrunedSubtree"), "tight budget should prune");
    for threads in [2usize, 4, 8] {
        let parallel = outcome_at(threads, &est, &dataset, &constraints);
        assert_eq!(serial, parallel, "outcome diverged at {threads} threads");
    }
}
