//! Property-based tests for Pareto dominance and the decision maker.

use gnnav_estimator::PerfEstimate;
use gnnav_explorer::{decide, dominates, pareto_front_indices, EvaluatedCandidate, Priority};
use gnnav_runtime::TrainingConfig;
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0, -1.0f64..0.0).prop_map(|(a, b, c)| [a, b, c]),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn front_members_are_mutually_non_dominated(pts in points()) {
        let front = pareto_front_indices(&pts);
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&pts[i], &pts[j]),
                        "front member {i} dominates front member {j}");
                }
            }
        }
    }

    #[test]
    fn every_non_front_point_is_dominated(pts in points()) {
        let front = pareto_front_indices(&pts);
        for (i, p) in pts.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(
                    pts.iter().any(|q| dominates(q, p)),
                    "point {i} excluded from the front but undominated"
                );
            }
        }
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in (0.0f64..10.0, 0.0f64..10.0, -1.0f64..0.0),
        b in (0.0f64..10.0, 0.0f64..10.0, -1.0f64..0.0),
    ) {
        let a = [a.0, a.1, a.2];
        let b = [b.0, b.1, b.2];
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn decision_always_picks_from_front(pts in points()) {
        let candidates: Vec<EvaluatedCandidate> = pts
            .iter()
            .map(|p| EvaluatedCandidate {
                config: TrainingConfig::default(),
                estimate: PerfEstimate {
                    time_s: p[0],
                    mem_bytes: p[1],
                    accuracy: -p[2],
                    batch_nodes: 0.0,
                    hit_rate: 0.0,
                },
            })
            .collect();
        let front = pareto_front_indices(&pts);
        for priority in Priority::ALL {
            let g = decide(&candidates, priority).expect("non-empty");
            let chosen = [g.estimate.time_s, g.estimate.mem_bytes, -g.estimate.accuracy];
            prop_assert!(
                front.iter().any(|&i| pts[i] == chosen),
                "{priority} picked a dominated candidate"
            );
        }
    }
}
