//! Property-based tests for Pareto dominance, the incremental front,
//! the decision maker, and the exploration-cache codec.

use gnnav_estimator::PerfEstimate;
use gnnav_explorer::{
    decide, dominates, pareto_front_indices, AuditAction, AuditRecord, DfsStats,
    EvaluatedCandidate, ExplorationResult, ExploreCache, Guideline, ParetoFront, Priority,
};
use gnnav_runtime::TrainingConfig;
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0, -1.0f64..0.0).prop_map(|(a, b, c)| [a, b, c]),
        1..60,
    )
}

/// Points drawn off a coarse grid: duplicates and exact ties across
/// all three coordinates are common, exercising the equal-point paths
/// of dominance.
fn coarse_points() -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(
        (0u8..4, 0u8..4, 0u8..4).prop_map(|(a, b, c)| [a as f64, b as f64, -(c as f64)]),
        1..40,
    )
}

fn estimates() -> impl Strategy<Value = PerfEstimate> {
    (1e-6f64..1e3, 1e3f64..1e12, 0.0f64..1.0, 0.0f64..1e6, 0.0f64..1.0).prop_map(
        |(time_s, mem_bytes, accuracy, batch_nodes, hit_rate)| PerfEstimate {
            time_s,
            mem_bytes,
            accuracy,
            batch_nodes,
            hit_rate,
        },
    )
}

fn configs() -> impl Strategy<Value = TrainingConfig> {
    (4u32..4096, 8u32..512, 0.0f64..1.0).prop_map(|(batch_size, hidden_dim, cache_ratio)| {
        TrainingConfig {
            batch_size: batch_size as usize,
            hidden_dim: hidden_dim as usize,
            cache_ratio,
            ..TrainingConfig::default()
        }
    })
}

/// Short strings covering the interesting payload classes: empty,
/// plain ASCII, punctuation-heavy, and multi-byte UTF-8.
fn strings() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| {
        ["", "cfg batch=512", "mem 1.50 MB > max 0.20 MB (excess 7.5e0)", "Γ_cache ✓ ∞"][i]
            .to_string()
    })
}

fn audit_actions() -> impl Strategy<Value = AuditAction> {
    (0u8..6).prop_map(|t| match t {
        0 => AuditAction::Accepted,
        1 => AuditAction::Rejected,
        2 => AuditAction::PrunedSubtree,
        3 => AuditAction::Selected,
        4 => AuditAction::Fallback,
        _ => AuditAction::Switched,
    })
}

fn audit_records() -> impl Strategy<Value = AuditRecord> {
    (strings(), (any::<bool>(), estimates()), audit_actions(), strings(), any::<bool>()).prop_map(
        |(config, (has_estimate, estimate), action, reason, seed_candidate)| AuditRecord {
            config,
            estimate: has_estimate.then_some(estimate),
            action,
            reason,
            seed_candidate,
        },
    )
}

fn priorities() -> impl Strategy<Value = Priority> {
    (0u8..4).prop_map(|t| match t {
        0 => Priority::Balance,
        1 => Priority::ExTimeMemory,
        2 => Priority::ExMemoryAccuracy,
        _ => Priority::ExTimeAccuracy,
    })
}

fn exploration_results() -> impl Strategy<Value = ExplorationResult> {
    (
        (configs(), estimates(), priorities()),
        proptest::collection::vec((configs(), estimates()), 0..8),
        proptest::collection::vec(0usize..64, 0..8),
        (0usize..500, 0usize..500, 0usize..500),
        proptest::collection::vec(audit_records(), 0..8),
        (any::<bool>(), strings()),
    )
        .prop_map(|(g, evaluated, front, stats, audit, fallback)| ExplorationResult {
            guideline: Guideline { config: g.0, estimate: g.1, priority: g.2 },
            evaluated: evaluated
                .into_iter()
                .map(|(config, estimate)| EvaluatedCandidate { config, estimate })
                .collect(),
            front,
            stats: DfsStats { evaluated: stats.0, rejected: stats.1, pruned_subtrees: stats.2 },
            audit,
            fallback: fallback.0.then_some(fallback.1),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn front_members_are_mutually_non_dominated(pts in points()) {
        let front = pareto_front_indices(&pts);
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&pts[i], &pts[j]),
                        "front member {i} dominates front member {j}");
                }
            }
        }
    }

    #[test]
    fn every_non_front_point_is_dominated(pts in points()) {
        let front = pareto_front_indices(&pts);
        for (i, p) in pts.iter().enumerate() {
            if !front.contains(&i) {
                prop_assert!(
                    pts.iter().any(|q| dominates(q, p)),
                    "point {i} excluded from the front but undominated"
                );
            }
        }
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in (0.0f64..10.0, 0.0f64..10.0, -1.0f64..0.0),
        b in (0.0f64..10.0, 0.0f64..10.0, -1.0f64..0.0),
    ) {
        let a = [a.0, a.1, a.2];
        let b = [b.0, b.1, b.2];
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn incremental_front_equals_batch_on_random_points(pts in points()) {
        let mut inc = ParetoFront::new();
        for &p in &pts {
            inc.insert(p);
        }
        prop_assert_eq!(inc.indices(), pareto_front_indices(&pts));
        prop_assert_eq!(inc.seen(), pts.len());
    }

    #[test]
    fn incremental_front_equals_batch_with_duplicates(pts in coarse_points()) {
        let mut inc = ParetoFront::new();
        for &p in &pts {
            inc.insert(p);
        }
        prop_assert_eq!(inc.indices(), pareto_front_indices(&pts));
        prop_assert_eq!(inc.len(), inc.indices().len());
    }

    #[test]
    fn cache_round_trip_preserves_result_byte_for_byte(result in exploration_results()) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("gnnav-ec-prop-{}-{case}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("explore.wal");
        let fingerprint = 0x9E3779B97F4A7C15u64.wrapping_mul(case + 1);
        {
            let mut cache = ExploreCache::open(&path).expect("open");
            prop_assert!(cache.insert(fingerprint, &result).expect("insert"));
        }
        // Reopen: the result must survive the durable round trip with
        // every f64 payload, audit string, and enum tag intact.
        let mut cache = ExploreCache::open(&path).expect("reopen");
        prop_assert!(cache.recovery().is_clean());
        prop_assert_eq!(cache.undecodable(), 0);
        let got = cache.lookup(fingerprint).expect("present");
        prop_assert_eq!(format!("{got:?}"), format!("{result:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decision_always_picks_from_front(pts in points()) {
        let candidates: Vec<EvaluatedCandidate> = pts
            .iter()
            .map(|p| EvaluatedCandidate {
                config: TrainingConfig::default(),
                estimate: PerfEstimate {
                    time_s: p[0],
                    mem_bytes: p[1],
                    accuracy: -p[2],
                    batch_nodes: 0.0,
                    hit_rate: 0.0,
                },
            })
            .collect();
        let front = pareto_front_indices(&pts);
        for priority in Priority::ALL {
            let g = decide(&candidates, priority).expect("non-empty");
            let chosen = [g.estimate.time_s, g.estimate.mem_bytes, -g.estimate.accuracy];
            prop_assert!(
                front.iter().any(|&i| pts[i] == chosen),
                "{priority} picked a dominated candidate"
            );
        }
    }
}
