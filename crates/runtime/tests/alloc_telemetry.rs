//! End-to-end allocation telemetry: after the warm-up epoch, the
//! per-batch training hot path must perform zero heap allocations,
//! and the backend must surface that as the gated
//! `alloc.steady_state_allocs_per_epoch` counter plus `alloc.*`
//! gauges and an `alloc` journal instant.
//!
//! This lives in its own integration-test binary (own process):
//! allocator counters are process-wide, and unit tests running in
//! parallel threads would bleed into the measurement windows.

use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_obs::names as metric;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};

#[test]
fn steady_state_training_performs_zero_allocations_per_epoch() {
    // Single-threaded so no worker thread allocates inside the
    // metered windows — the same pin the perf baselines use.
    std::env::set_var("GNNAV_THREADS", "1");
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
    let config = TrainingConfig {
        batch_size: 64,
        fanouts: vec![5, 5],
        hidden_dim: 16,
        ..TrainingConfig::default()
    };
    let opts = ExecutionOptions { epochs: 3, ..Default::default() };

    let obs = gnnav_obs::global();
    obs.enable(true);
    obs.journal().enable(true);
    assert!(gnnav_obs::alloc::is_tracking(), "global enable must switch alloc tracking on");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    backend.execute(&dataset, &config, &opts).expect("run");
    obs.enable(false);
    obs.journal().enable(false);

    let snap = obs.snapshot();
    let steady = snap
        .counters
        .get(metric::ALLOC_STEADY_PER_EPOCH)
        .expect("steady-state alloc counter emitted");
    assert_eq!(*steady, 0, "steady-state epochs must not allocate in the training hot path");
    // The run as a whole does allocate (warm-up, sampling, caches…):
    // the gauges must show real traffic, proving the windows measured
    // a live allocator rather than a stubbed one.
    let allocs = snap.gauges.get(metric::ALLOC_ALLOCS).expect("alloc.allocs gauge");
    assert!(*allocs > 0.0, "whole-run allocation gauge should be nonzero, got {allocs}");
    let peak = snap.gauges.get(metric::ALLOC_PEAK_BYTES).expect("alloc.peak_bytes gauge");
    assert!(*peak > 0.0, "peak live bytes should be nonzero, got {peak}");

    // The journal carries the per-run `alloc` instant on the backend
    // track with the warmup/steady split.
    let journal = obs.journal().snapshot();
    let instant = journal
        .events
        .iter()
        .find(|e| e.name == metric::EVENT_ALLOC && e.track == metric::TRACK_BACKEND)
        .expect("alloc journal instant");
    let steady_arg = instant
        .args
        .iter()
        .find(|(k, _)| k.as_ref() == "steady_allocs")
        .map(|(_, v)| v.clone())
        .expect("steady_allocs arg");
    assert_eq!(
        steady_arg,
        gnnav_obs::journal::ArgValue::U64(0),
        "steady_allocs arg should be zero"
    );
}
