//! Property-based tests for the runtime configuration layer.

use gnnav_cache::CachePolicy;
use gnnav_graph::generators::barabasi_albert;
use gnnav_hwsim::Precision;
use gnnav_nn::ModelKind;
use gnnav_runtime::{DesignSpace, SamplerKind, TrainingConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = TrainingConfig> {
    (
        0usize..3,
        proptest::collection::vec(1usize..30, 1..4),
        0.0f64..=1.0,
        1usize..2048,
        0usize..5,
        0.0f64..=1.0,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(s, fanouts, eta, batch, policy, ratio, update, pipelined)| {
            let policy = CachePolicy::ALL[policy];
            let ratio = if policy == CachePolicy::None { 0.0 } else { ratio };
            TrainingConfig {
                sampler: SamplerKind::ALL[s],
                fanouts,
                locality_eta: eta,
                batch_size: batch,
                cache_ratio: ratio,
                cache_policy: policy,
                cache_update: update,
                pipelined,
                precision: Precision::Fp32,
                model: ModelKind::Sage,
                hidden_dim: 16,
                dropout: 0.0,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_configs_validate_and_build_samplers(config in config_strategy()) {
        prop_assert!(config.validate().is_ok(), "{}", config.summary());
        let g = barabasi_albert(200, 3, 1).expect("gen");
        let sampler = config.build_sampler(&g).expect("build sampler");
        prop_assert!(sampler.num_layers() >= 1);
        prop_assert!(sampler.expansion_skeleton() >= 1.0);
    }

    #[test]
    fn cache_entries_bounded_by_nodes(config in config_strategy(), n in 1usize..100_000) {
        prop_assert!(config.cache_entries(n) <= n);
    }

    #[test]
    fn hot_set_size_tracks_cache_ratio(ratio in 0.01f64..1.0) {
        let g = barabasi_albert(500, 3, 2).expect("gen");
        let config = TrainingConfig {
            cache_ratio: ratio,
            cache_policy: CachePolicy::StaticDegree,
            ..TrainingConfig::default()
        };
        let hot = config.hot_set(&g);
        prop_assert_eq!(hot.len(), config.cache_entries(500));
    }

    #[test]
    fn space_config_at_roundtrips_indices(seed in 0u64..50) {
        let space = DesignSpace::standard();
        let configs = space.sample(5, ModelKind::Sage, seed);
        for c in configs {
            prop_assert!(c.validate().is_ok());
        }
    }
}
