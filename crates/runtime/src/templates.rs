//! Configuration templates reproducing prior systems.
//!
//! Fig. 3 of the paper shows that existing frameworks fall out of the
//! reconfigurable backend as specific settings ("configuration setting
//! templates"), and §4.1 reproduces PyG, PaGraph, and 2PGraph exactly
//! this way. The explorer also seeds its search with these templates
//! so generated guidelines never lose to the prior systems they knew
//! about.

use crate::config::{SamplerKind, TrainingConfig};
use gnnav_cache::CachePolicy;
use gnnav_hwsim::Precision;
use gnnav_nn::ModelKind;

/// Identifier of a baseline template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Template {
    /// Vanilla PyG: node-wise `[25, 10]` sampling, no cache, no
    /// host/device pipelining. (Batch sizes are scaled with the
    /// 1:10-scale dataset stand-ins so that `|V_i|/|V|` stays in the
    /// regime the original systems were measured in.)
    Pyg,
    /// PaGraph with ample memory (Pa-Full): static degree-ordered
    /// cache at `r = 0.5`, pipelined.
    PaGraphFull,
    /// PaGraph under memory pressure (Pa-Low): same design, cache
    /// squeezed to `r = 0.05`.
    PaGraphLow,
    /// 2PGraph: locality-aware (cache-biased) sampling `η = 0.75`
    /// over a modest static cache, pipelined.
    TwoPGraph,
}

impl Template {
    /// All templates in the order the paper's tables list them.
    pub const ALL: [Template; 4] =
        [Template::Pyg, Template::PaGraphFull, Template::PaGraphLow, Template::TwoPGraph];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Template::Pyg => "PyG",
            Template::PaGraphFull => "Pa-Full",
            Template::PaGraphLow => "Pa-Low",
            Template::TwoPGraph => "2P",
        }
    }

    /// Instantiates the template for a given model architecture.
    pub fn config(self, model: ModelKind) -> TrainingConfig {
        let base = TrainingConfig {
            sampler: SamplerKind::NodeWise,
            fanouts: vec![25, 10],
            locality_eta: 0.0,
            batch_size: 256,
            cache_ratio: 0.0,
            cache_policy: CachePolicy::None,
            cache_update: false,
            pipelined: false,
            precision: Precision::Fp32,
            model,
            hidden_dim: 64,
            dropout: 0.0,
        };
        match self {
            Template::Pyg => base,
            Template::PaGraphFull => TrainingConfig {
                cache_ratio: 0.5,
                cache_policy: CachePolicy::StaticDegree,
                pipelined: true,
                ..base
            },
            Template::PaGraphLow => TrainingConfig {
                cache_ratio: 0.05,
                cache_policy: CachePolicy::StaticDegree,
                pipelined: true,
                ..base
            },
            Template::TwoPGraph => TrainingConfig {
                cache_ratio: 0.15,
                cache_policy: CachePolicy::StaticDegree,
                locality_eta: 0.75,
                pipelined: true,
                ..base
            },
        }
    }
}

impl std::fmt::Display for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_validate() {
        for t in Template::ALL {
            let c = t.config(ModelKind::Sage);
            c.validate().unwrap_or_else(|e| panic!("{t}: {e}"));
        }
    }

    #[test]
    fn pyg_has_no_cache_or_pipeline() {
        let c = Template::Pyg.config(ModelKind::Gcn);
        assert_eq!(c.cache_policy, CachePolicy::None);
        assert_eq!(c.cache_ratio, 0.0);
        assert!(!c.pipelined);
        assert_eq!(c.locality_eta, 0.0);
    }

    #[test]
    fn pagraph_variants_differ_only_in_cache_ratio() {
        let full = Template::PaGraphFull.config(ModelKind::Sage);
        let low = Template::PaGraphLow.config(ModelKind::Sage);
        assert!(full.cache_ratio > low.cache_ratio);
        assert_eq!(full.cache_policy, low.cache_policy);
        assert_eq!(full.pipelined, low.pipelined);
    }

    #[test]
    fn two_pgraph_is_biased() {
        let c = Template::TwoPGraph.config(ModelKind::Sage);
        assert!(c.locality_eta > 0.5);
        assert_eq!(c.cache_policy, CachePolicy::StaticDegree);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Template::Pyg.to_string(), "PyG");
        assert_eq!(Template::PaGraphFull.label(), "Pa-Full");
        assert_eq!(Template::TwoPGraph.label(), "2P");
    }

    #[test]
    fn model_is_threaded_through() {
        assert_eq!(Template::Pyg.config(ModelKind::Gat).model, ModelKind::Gat);
    }
}
