//! Result export: CSV and JSON-lines emitters for measured
//! performance.
//!
//! The evaluation binaries print human tables; downstream analysis
//! (plotting the paper's figures, regression tracking) wants
//! machine-readable output. Both emitters are dependency-free and
//! take `W: Write` by value, so `&mut` writers work too.

use crate::config::TrainingConfig;
use crate::perf::Perf;
use std::io::Write;

/// The CSV header matching [`write_perf_csv`]'s rows.
pub const PERF_CSV_HEADER: &str = "label,epoch_time_s,peak_mem_bytes,accuracy,hit_rate,\
                                   avg_batch_nodes,avg_batch_edges,n_iter,t_sample_s,\
                                   t_transfer_s,t_replace_s,t_compute_s,config";

/// Writes labeled performance rows as CSV (header + one line per
/// entry). Config summaries are quoted; labels must not contain
/// commas or quotes.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_perf_csv<W: Write>(
    mut writer: W,
    rows: &[(String, TrainingConfig, Perf)],
) -> std::io::Result<()> {
    writeln!(writer, "{PERF_CSV_HEADER}")?;
    for (label, config, perf) in rows {
        writeln!(
            writer,
            "{label},{:.9},{},{:.6},{:.6},{:.2},{:.2},{},{:.9},{:.9},{:.9},{:.9},\"{}\"",
            perf.epoch_time.as_secs(),
            perf.peak_mem_bytes,
            perf.accuracy,
            perf.hit_rate,
            perf.avg_batch_nodes,
            perf.avg_batch_edges,
            perf.n_iter,
            perf.phases.sample.as_secs(),
            perf.phases.transfer.as_secs(),
            perf.phases.replace.as_secs(),
            perf.phases.compute.as_secs(),
            config.summary().replace('"', "'"),
        )?;
    }
    Ok(())
}

/// Writes one JSON object per line (JSON-lines), suitable for `jq`
/// pipelines and append-only experiment logs.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_perf_jsonl<W: Write>(
    mut writer: W,
    rows: &[(String, TrainingConfig, Perf)],
) -> std::io::Result<()> {
    for (label, config, perf) in rows {
        writeln!(
            writer,
            "{{\"label\":\"{}\",\"epoch_time_s\":{:.9},\"peak_mem_bytes\":{},\
             \"accuracy\":{:.6},\"hit_rate\":{:.6},\"avg_batch_nodes\":{:.2},\
             \"n_iter\":{},\"config\":\"{}\"}}",
            json_escape(label),
            perf.epoch_time.as_secs(),
            perf.peak_mem_bytes,
            perf.accuracy,
            perf.hit_rate,
            perf.avg_batch_nodes,
            perf.n_iter,
            json_escape(&config.summary()),
        )?;
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PhaseBreakdown;
    use gnnav_hwsim::SimTime;

    fn sample_rows() -> Vec<(String, TrainingConfig, Perf)> {
        let perf = Perf {
            epoch_time: SimTime::from_millis(12.5),
            peak_mem_bytes: 1_000_000,
            accuracy: 0.789,
            hit_rate: 0.5,
            avg_batch_nodes: 1234.5,
            avg_batch_edges: 5678.9,
            n_iter: 42,
            phases: PhaseBreakdown {
                sample: SimTime::from_millis(1.0),
                transfer: SimTime::from_millis(2.0),
                replace: SimTime::ZERO,
                compute: SimTime::from_millis(3.0),
            },
        };
        vec![("PyG".to_string(), TrainingConfig::default(), perf)]
    }

    #[test]
    fn csv_has_header_and_matching_columns() {
        let mut buf = Vec::new();
        write_perf_csv(&mut buf, &sample_rows()).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        let row = lines.next().expect("row");
        assert_eq!(header.split(',').count(), 13);
        // The config summary is quoted (it contains commas itself), so
        // count the unquoted columns: everything before the final
        // quoted field.
        let before_config = row.split(",\"").next().expect("unquoted prefix");
        assert_eq!(before_config.split(',').count(), 12, "{row}");
        assert!(row.starts_with("PyG,0.0125"));
        assert!(row.ends_with('"'));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut buf = Vec::new();
        write_perf_jsonl(&mut buf, &sample_rows()).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().expect("line");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"label\":\"PyG\""));
        assert!(line.contains("\"n_iter\":42"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_rows_still_write_csv_header() {
        let mut buf = Vec::new();
        write_perf_csv(&mut buf, &[]).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 1);
    }
}
