//! Epoch-at-a-time execution sessions.
//!
//! [`ExecutionSession`] is the resumable form of
//! [`RuntimeBackend::execute`](crate::RuntimeBackend::execute): the
//! backend's whole epoch loop, opened up so a caller can drive it one
//! epoch at a time, observe per-epoch statistics ([`EpochStats`]), and
//! — between epochs — switch to a different [`TrainingConfig`] without
//! losing the model weights ([`ExecutionSession::switch_config`]).
//! `execute` itself is a thin wrapper (`new` → N × `run_epoch` →
//! `finish`), so a session driven straight through produces a report
//! byte-identical to the one-shot path. The adaptive layer
//! (`gnnav-adapt`) builds its drift-reexplore-switch loop on this API.

use crate::backend::{
    DegradationStep, ExecutionOptions, ExecutionReport, RecoveryLog, LINK_STALL_FACTOR,
    MAX_MICRO_BATCH, TARGET_SWAP_AT_FULL_ETA,
};
use crate::config::TrainingConfig;
use crate::perf::{Perf, PhaseBreakdown};
use crate::RuntimeError;
use gnnav_cache::{build_cache, Cache, CacheStats};
use gnnav_faults::{FaultInjector, FaultKind, FaultPlan};
use gnnav_graph::Dataset;
use gnnav_hwsim::{CostModel, MemoryLedger, Platform, SimTime};
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{train, Adam, GnnModel};
use gnnav_obs::alloc::AllocStats;
use gnnav_obs::names as metric;
use gnnav_obs::{Journal, Registry, Span};
use gnnav_sampler::{batch_targets, Sampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// What one [`ExecutionSession::run_epoch`] call observed — the
/// per-epoch slice of the quantities the estimator predicts, in the
/// same units the profiler records them.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based index of the epoch that just ran.
    pub epoch: usize,
    /// Simulated time this epoch consumed, in seconds (includes any
    /// recovery backoff and migration charges that landed in it).
    pub sim_s: f64,
    /// Cache hit rate over this epoch's lookups (0 when the epoch had
    /// no lookups).
    pub hit_rate: f64,
    /// Peak device memory of the run so far, in bytes (the ledger
    /// tracks a cumulative high-water mark).
    pub peak_mem_bytes: usize,
    /// Mini-batches executed this epoch.
    pub batches: usize,
    /// Sampled nodes summed over this epoch's mini-batches.
    pub nodes: usize,
    /// Sampled edges summed over this epoch's mini-batches.
    pub edges: usize,
    /// Per-phase simulated seconds `[sample, transfer, replace,
    /// compute]` this epoch.
    pub phase_s: [f64; 4],
    /// Iterations this epoch (same as `batches` unless sampling was
    /// aborted mid-epoch).
    pub n_iter: usize,
}

/// Owned fault state: the injector proper borrows its plan, so the
/// session keeps the plan and a running injection count and rebinds
/// the (stateless) injector per query.
#[derive(Debug)]
struct OwnedInjector {
    plan: FaultPlan,
    injected: u64,
}

/// Locality-aware hot sets for a config (empty when `η = 0`).
fn hot_sets(config: &TrainingConfig, dataset: &Dataset) -> (Vec<bool>, Vec<u32>) {
    let graph = dataset.graph();
    if config.locality_eta <= 0.0 {
        return (Vec::new(), Vec::new());
    }
    let mut mask = vec![false; graph.num_nodes()];
    for v in config.hot_set(graph) {
        mask[v as usize] = true;
    }
    let hot_train: Vec<u32> =
        dataset.split().train.iter().copied().filter(|&v| mask[v as usize]).collect();
    (mask, hot_train)
}

/// A paused-between-epochs backend execution.
///
/// Create with [`new`](Self::new), advance with
/// [`run_epoch`](Self::run_epoch), optionally redirect with
/// [`switch_config`](Self::switch_config), and close with
/// [`finish`](Self::finish). Driving a session straight through is
/// exactly [`RuntimeBackend::execute`](crate::RuntimeBackend::execute).
#[derive(Debug)]
pub struct ExecutionSession<'d> {
    platform: Platform,
    dataset: &'d Dataset,
    opts: ExecutionOptions,
    injector: Option<OwnedInjector>,
    cost: CostModel,
    ledger: MemoryLedger,
    model: GnnModel,
    opt: Adam,
    rng: StdRng,
    cache: Box<dyn Cache>,
    sampler: Box<dyn Sampler>,
    /// The currently requested config (becomes the report's config).
    config: TrainingConfig,
    /// The config in effect after degradation-ladder steps.
    eff_config: TrainingConfig,
    row_bytes: usize,
    bytes_per_scalar: usize,
    cache_entries: usize,
    micro_batch: usize,
    fanout_reduced: bool,
    stats_carry: CacheStats,
    hot_mask: Vec<bool>,
    hot_train: Vec<u32>,
    x_buf: Vec<f32>,
    label_buf: Vec<u16>,
    target_locals_buf: Vec<u32>,
    alloc_run_start: AllocStats,
    alloc_warmup_allocs: u64,
    alloc_steady_allocs: u64,
    kernel_stats_start: gnnav_nn::tensor::KernelStats,
    par_stats_start: gnnav_par::Stats,
    phases: PhaseBreakdown,
    epoch_time_total: SimTime,
    total_nodes: usize,
    total_edges: usize,
    total_batches: usize,
    n_iter: usize,
    loss_history: Vec<f32>,
    recovery: RecoveryLog,
    evictions: usize,
    wall_sample: Duration,
    wall_train: Duration,
    epochs_run: usize,
    train_steps: u64,
    metrics: &'static Registry,
    journal: &'static Journal,
    observing: bool,
    journaling: bool,
    _execute_span: Span<'static>,
}

impl<'d> ExecutionSession<'d> {
    /// Validates `config`/`opts` and allocates the whole training
    /// state (model, cache, sampler, ledger) without running any
    /// epoch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for inconsistent
    /// configurations or fault plans, and [`RuntimeError::Hw`] if the
    /// model plus cache already exceed device memory.
    pub fn new(
        platform: Platform,
        dataset: &'d Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
    ) -> Result<Self, RuntimeError> {
        config.validate()?;
        if opts.epochs == 0 {
            return Err(RuntimeError::InvalidConfig("epochs must be > 0".into()));
        }
        if let Some(plan) = &opts.fault_plan {
            plan.validate().map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
        }
        let policy = &opts.recovery;
        if !policy.backoff_base_ms.is_finite() || policy.backoff_base_ms < 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "recovery backoff_base_ms {} must be finite and >= 0",
                policy.backoff_base_ms
            )));
        }
        let injector = opts
            .fault_plan
            .as_ref()
            .filter(|p| !p.is_empty())
            .map(|p| OwnedInjector { plan: p.clone(), injected: 0 });
        let metrics = gnnav_obs::global();
        let execute_span = metrics.span(metric::EXECUTE_WALL);
        let observing = metrics.is_enabled();
        let journal = metrics.journal();
        let journaling = journal.is_enabled() && opts.journal;
        let graph = dataset.graph();
        let feats = dataset.features();
        let cost = CostModel::new(platform.clone());
        let mut ledger = MemoryLedger::new(platform.device.mem_capacity_bytes);

        // Model + static memory Γ_model.
        let mut model = GnnModel::new(
            config.model,
            feats.dim(),
            config.hidden_dim,
            feats.num_classes(),
            config.num_layers(),
            opts.seed,
        );
        model.set_dropout(config.dropout as f32);
        let bytes_per_scalar = config.precision.bytes();
        ledger.set_model_bytes(model.param_count() * bytes_per_scalar)?;

        // Cache + Γ_cache.
        let row_bytes = feats.dim() * bytes_per_scalar;
        let entries = config.cache_entries(graph.num_nodes());
        ledger.set_cache_bytes(entries * row_bytes)?;
        let cache = build_cache(config.cache_policy, entries, graph);

        let sampler = config.build_sampler(graph)?;
        let (hot_mask, hot_train) = hot_sets(config, dataset);

        Ok(ExecutionSession {
            cost,
            ledger,
            model,
            opt: Adam::new(opts.learning_rate),
            rng: StdRng::seed_from_u64(opts.seed),
            cache,
            sampler,
            config: config.clone(),
            eff_config: config.clone(),
            row_bytes,
            bytes_per_scalar,
            cache_entries: entries,
            micro_batch: 1,
            fanout_reduced: false,
            stats_carry: CacheStats::default(),
            hot_mask,
            hot_train,
            x_buf: Vec::new(),
            label_buf: Vec::new(),
            target_locals_buf: Vec::new(),
            alloc_run_start: gnnav_obs::alloc::stats(),
            alloc_warmup_allocs: 0,
            alloc_steady_allocs: 0,
            kernel_stats_start: gnnav_nn::kernel_stats(),
            par_stats_start: gnnav_par::stats(),
            phases: PhaseBreakdown::default(),
            epoch_time_total: SimTime::ZERO,
            total_nodes: 0,
            total_edges: 0,
            total_batches: 0,
            n_iter: 0,
            loss_history: Vec::new(),
            recovery: RecoveryLog::default(),
            evictions: 0,
            wall_sample: Duration::ZERO,
            wall_train: Duration::ZERO,
            epochs_run: 0,
            train_steps: 0,
            metrics,
            journal,
            observing,
            journaling,
            _execute_span: execute_span,
            platform,
            dataset,
            opts: opts.clone(),
            injector,
        })
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// The config currently in effect (post any
    /// [`switch_config`](Self::switch_config)).
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Total simulated time accumulated so far.
    pub fn sim_time_total(&self) -> SimTime {
        self.epoch_time_total
    }

    /// Recovery actions absorbed so far.
    pub fn recovery(&self) -> &RecoveryLog {
        &self.recovery
    }

    /// Exponential backoff, charged to simulated time (the shift is
    /// clamped so a large retry budget cannot overflow).
    fn backoff(&self, attempt: u32) -> SimTime {
        SimTime::from_millis(self.opts.recovery.backoff_base_ms * (1u64 << attempt.min(20)) as f64)
    }

    /// Queries (and records) the fault schedule at the current
    /// simulated time.
    fn inject_fault(&mut self, kind: FaultKind, site: u64, attempt: u32) -> Option<f64> {
        let sim_us = self.epoch_time_total.as_micros();
        let inj = self.injector.as_mut()?;
        let magnitude = FaultInjector::new(&inj.plan).inject(kind, site, attempt, Some(sim_us));
        if magnitude.is_some() {
            inj.injected += 1;
        }
        magnitude
    }

    /// Cumulative cache stats including carries from caches replaced
    /// by ladder shrinks or config switches.
    fn cache_stats_total(&self) -> CacheStats {
        CacheStats {
            lookups: self.stats_carry.lookups + self.cache.stats().lookups,
            hits: self.stats_carry.hits + self.cache.stats().hits,
        }
    }

    /// True when `new` can be switched to without re-initializing the
    /// model: the architecture-shaping fields (model kind, hidden
    /// width, layer count, precision) must match so the trained
    /// weights remain valid.
    pub fn compatible(&self, new: &TrainingConfig) -> bool {
        new.model == self.config.model
            && new.hidden_dim == self.config.hidden_dim
            && new.num_layers() == self.config.num_layers()
            && new.precision == self.config.precision
    }

    /// Switches the session to `new` between epochs, preserving the
    /// model weights and optimizer state.
    ///
    /// The old cache's hit statistics are carried over, the new cache
    /// is rebuilt (its population charged to simulated time as a
    /// replace-phase migration), the sampler and locality hot sets are
    /// rebuilt, and the degradation ladder is reset. Returns the
    /// simulated migration cost, which has already been added to the
    /// session's total.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when `new` is invalid
    /// or not [`compatible`](Self::compatible), and
    /// [`RuntimeError::Hw`] if the new cache does not fit.
    pub fn switch_config(&mut self, new: &TrainingConfig) -> Result<SimTime, RuntimeError> {
        new.validate()?;
        if !self.compatible(new) {
            return Err(RuntimeError::InvalidConfig(format!(
                "switch_config requires an architecture-compatible config \
                 (model/hidden_dim/layers/precision); have {}, got {}",
                self.config.summary(),
                new.summary()
            )));
        }
        let dataset = self.dataset;
        let graph = dataset.graph();

        // Carry hit accounting across the cache swap, then rebuild.
        let old = self.cache.stats();
        self.stats_carry.lookups += old.lookups;
        self.stats_carry.hits += old.hits;
        let entries = new.cache_entries(graph.num_nodes());
        self.ledger.set_cache_bytes(entries * self.row_bytes)?;
        self.cache = build_cache(new.cache_policy, entries, graph);
        let migration = self.cost.t_replace(entries * self.row_bytes, entries.max(1));
        if self.journaling {
            // The migration charge as a sim span on its own phase
            // track, so trace analytics can attribute switch cost.
            self.journal.span_complete(
                metric::EVENT_MIGRATION,
                format!("{}migration", metric::TRACK_PHASE_PREFIX),
                self.journal.now_us(),
                None,
                Some(self.epoch_time_total.as_micros()),
                Some(migration.as_micros()),
                vec![("to".into(), new.summary().into()), ("cache_entries".into(), entries.into())],
            );
        }
        self.epoch_time_total += migration;

        self.sampler = new.build_sampler(graph)?;
        let (hot_mask, hot_train) = hot_sets(new, dataset);
        self.hot_mask = hot_mask;
        self.hot_train = hot_train;
        self.model.set_dropout(new.dropout as f32);

        // A switch resets the degradation ladder: the new guideline is
        // expected to fit, and if it does not, the ladder will walk
        // again from the top.
        self.config = new.clone();
        self.eff_config = new.clone();
        self.cache_entries = entries;
        self.micro_batch = 1;
        self.fanout_reduced = false;
        Ok(migration)
    }

    /// Captures the session's complete mutable state at the current
    /// epoch boundary (see [`SessionCheckpoint`](crate::SessionCheckpoint)
    /// for the determinism contract). `&mut` only because flattening
    /// the model parameters walks them through `for_each_param_mut`;
    /// observable state is unchanged.
    pub fn checkpoint(&mut self) -> crate::SessionCheckpoint {
        crate::SessionCheckpoint {
            config: self.config.clone(),
            eff_config: self.eff_config.clone(),
            cache_entries: self.cache_entries,
            micro_batch: self.micro_batch,
            fanout_reduced: self.fanout_reduced,
            params: self.model.param_vector(),
            dropout_rng: self.model.dropout_rng_state(),
            opt: self.opt.state(),
            rng: self.rng.state(),
            cache: self.cache.snapshot(),
            stats_carry: self.stats_carry,
            peak_mem_bytes: self.ledger.peak_bytes(),
            phases: self.phases,
            epoch_time_total: self.epoch_time_total,
            total_nodes: self.total_nodes,
            total_edges: self.total_edges,
            total_batches: self.total_batches,
            n_iter: self.n_iter,
            loss_history: self.loss_history.clone(),
            recovery: self.recovery.clone(),
            evictions: self.evictions,
            epochs_run: self.epochs_run,
            train_steps: self.train_steps,
            faults_injected: self.injector.as_ref().map_or(0, |inj| inj.injected),
        }
    }

    /// Reconstructs a session from a checkpoint: builds a fresh
    /// session for the checkpointed config, then overwrites every
    /// piece of mutable state the checkpoint captured. The resumed
    /// session continues exactly where [`checkpoint`](Self::checkpoint)
    /// left off.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`new`](Self::new), plus
    /// [`RuntimeError::InvalidConfig`] when the checkpoint does not
    /// fit `dataset` (wrong parameter count, out-of-range cache
    /// nodes).
    pub fn resume(
        platform: Platform,
        dataset: &'d Dataset,
        opts: &ExecutionOptions,
        ckpt: &crate::SessionCheckpoint,
    ) -> Result<Self, RuntimeError> {
        let mut s = ExecutionSession::new(platform, dataset, &ckpt.config, opts)?;
        let graph = dataset.graph();
        s.model.load_param_vector(&ckpt.params).map_err(RuntimeError::InvalidConfig)?;
        s.model.set_dropout_rng_state(ckpt.dropout_rng);
        s.opt.restore(ckpt.opt.clone());
        s.rng = StdRng::from_state(ckpt.rng);
        s.eff_config = ckpt.eff_config.clone();
        // Ladder state: the cache may have been shrunk below the
        // config's nominal size, and fanouts may have been reduced.
        if ckpt.cache_entries != s.cache_entries {
            s.ledger.set_cache_bytes(ckpt.cache_entries * s.row_bytes)?;
            s.cache = build_cache(s.config.cache_policy, ckpt.cache_entries, graph);
            s.cache_entries = ckpt.cache_entries;
        }
        s.cache.restore(&ckpt.cache).map_err(RuntimeError::InvalidConfig)?;
        if ckpt.fanout_reduced {
            s.sampler = s.eff_config.build_sampler(graph)?;
        }
        s.micro_batch = ckpt.micro_batch;
        s.fanout_reduced = ckpt.fanout_reduced;
        s.stats_carry = ckpt.stats_carry;
        s.ledger.restore_peak(ckpt.peak_mem_bytes);
        s.phases = ckpt.phases;
        s.epoch_time_total = ckpt.epoch_time_total;
        s.total_nodes = ckpt.total_nodes;
        s.total_edges = ckpt.total_edges;
        s.total_batches = ckpt.total_batches;
        s.n_iter = ckpt.n_iter;
        s.loss_history = ckpt.loss_history.clone();
        s.recovery = ckpt.recovery.clone();
        s.evictions = ckpt.evictions;
        s.epochs_run = ckpt.epochs_run;
        s.train_steps = ckpt.train_steps;
        if let Some(inj) = s.injector.as_mut() {
            inj.injected = ckpt.faults_injected;
        }
        Ok(s)
    }

    /// Runs one epoch (sampling, transfer, cache update, compute, and
    /// — when enabled — training) and returns what it observed.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RetriesExhausted`] when a fault exceeds
    /// its retry/recovery budget and [`RuntimeError::Graph`] on
    /// sampling failures.
    pub fn run_epoch(&mut self) -> Result<EpochStats, RuntimeError> {
        let epoch = self.epochs_run;
        let dataset = self.dataset;
        let graph = dataset.graph();
        let feats = dataset.features();
        let observing = self.observing;
        let journaling = self.journaling;

        // Per-epoch bookkeeping for the journal and the epoch
        // histograms: snapshot the cumulative phase/cache state at
        // epoch entry and diff it at epoch exit, so the hot batch
        // loop itself stays untouched.
        let epoch_span = observing.then(|| self.metrics.span(metric::EVENT_EPOCH));
        let epoch_wall_us = journaling.then(|| self.journal.now_us());
        let epoch_recovery_us_start = self.recovery.recovery_sim.as_micros();
        let epoch_sim_start = self.epoch_time_total;
        let epoch_phases_start = self.phases;
        let epoch_stats_start = self.cache_stats_total();
        let epoch_batches_start = self.total_batches;
        let epoch_nodes_start = self.total_nodes;
        let epoch_edges_start = self.total_edges;

        let mut epoch_targets = dataset.split().train.clone();
        if self.config.locality_eta > 0.0 && !self.hot_train.is_empty() {
            use rand::Rng;
            let swap_p = TARGET_SWAP_AT_FULL_ETA * self.config.locality_eta;
            for t in epoch_targets.iter_mut() {
                if !self.hot_mask[*t as usize] && self.rng.gen::<f64>() < swap_p {
                    *t = self.hot_train[self.rng.gen_range(0..self.hot_train.len())];
                }
            }
        }
        let batches = batch_targets(&epoch_targets, self.config.batch_size, &mut self.rng);
        self.n_iter = batches.len();
        // Grow the loss history outside the metered hot window so a
        // steady-state epoch never reallocates it mid-batch.
        if self.opts.train {
            self.loss_history.reserve(batches.len());
        }
        for (bi, targets) in batches.iter().enumerate() {
            let batch_site = self.total_batches as u64;

            // The whole batch attempt — sampling through the
            // transient memory claim — can be aborted and
            // restarted by the degradation ladder, so phase times
            // are only accumulated after the claim succeeds.
            let (mb, t_sample, t_transfer, t_replace, t_compute) = 'batch: loop {
                // Host: sampling, with bounded retry of injected
                // sampler failures.
                let mut attempt = 0u32;
                let mb = loop {
                    let failed =
                        self.inject_fault(FaultKind::SamplerFailure, batch_site, attempt).is_some();
                    if !failed {
                        let sample_started = observing.then(Instant::now);
                        let mb = self.sampler.sample(graph, targets, &mut self.rng)?;
                        if let Some(t0) = sample_started {
                            self.wall_sample += t0.elapsed();
                        }
                        break mb;
                    }
                    if attempt >= self.opts.recovery.max_retries {
                        return Err(RuntimeError::RetriesExhausted {
                            what: "mini-batch sampling".into(),
                            attempts: attempt + 1,
                            last_error: "injected sampler failure".into(),
                        });
                    }
                    let pause = self.backoff(attempt);
                    self.epoch_time_total += pause;
                    self.recovery.recovery_sim += pause;
                    self.recovery.retries += 1;
                    attempt += 1;
                };
                let t_sample = self.cost.t_sample(mb.expansion(), mb.num_edges());

                // Device cache: split hits/misses, transfer the
                // misses — through a possibly degraded link. A
                // stalled link (factor >= LINK_STALL_FACTOR) is
                // retried with backoff; a slow one just stretches
                // the transfer.
                let outcome = self.cache.lookup(&mb.nodes);
                let miss_bytes = outcome.misses.len() * self.row_bytes;
                let mut t_transfer = self.cost.t_transfer(miss_bytes);
                let mut attempt = 0u32;
                loop {
                    match self.inject_fault(FaultKind::LinkDegrade, batch_site, attempt) {
                        Some(factor) if factor >= LINK_STALL_FACTOR => {
                            if attempt >= self.opts.recovery.max_retries {
                                return Err(RuntimeError::RetriesExhausted {
                                    what: "miss transfer (stalled link)".into(),
                                    attempts: attempt + 1,
                                    last_error: format!(
                                        "link stalled (degradation factor {factor})"
                                    ),
                                });
                            }
                            let pause = self.backoff(attempt);
                            self.epoch_time_total += pause;
                            self.recovery.recovery_sim += pause;
                            self.recovery.retries += 1;
                            attempt += 1;
                        }
                        Some(factor) => {
                            t_transfer = t_transfer * factor.max(1.0);
                            break;
                        }
                        None => break,
                    }
                }

                // Cache update per policy (frozen dynamic caches
                // stop replacing once full).
                let may_update =
                    self.config.cache_update || self.cache.len() < self.cache.capacity();
                let replaced = if may_update { self.cache.update(&outcome.misses) } else { 0 };
                self.evictions += replaced;
                let t_replace = self.cost.t_replace(replaced * self.row_bytes, self.cache.len());

                // Device compute; micro-batching pays one extra
                // kernel launch per additional micro-step.
                let flops = self.model.flops_per_batch(mb.num_nodes(), mb.num_edges());
                let mut t_compute =
                    self.cost.t_compute(flops, mb.num_nodes(), self.config.precision);
                if self.micro_batch > 1 {
                    t_compute += SimTime::from_micros(
                        self.platform.device.launch_overhead_us * (self.micro_batch - 1) as f64,
                    );
                }

                // Transient memory Γ_runtime: bounded retry with
                // backoff, then the degradation ladder.
                let base_claim = self.model.activation_bytes(mb.num_nodes(), self.bytes_per_scalar)
                    + mb.num_nodes() * self.row_bytes;
                let mut attempt = 0u32;
                let claim_err = loop {
                    let claim = base_claim.div_ceil(self.micro_batch);
                    let requested =
                        match self.inject_fault(FaultKind::TransientOom, batch_site, attempt) {
                            // A spike multiplies the claim; the cast
                            // saturates at usize::MAX for extreme
                            // magnitudes.
                            Some(spike) => (claim as f64 * spike.max(1.0)).ceil() as usize,
                            None => claim,
                        };
                    match self.ledger.begin_batch(requested) {
                        Ok(()) => break None,
                        Err(_) if attempt < self.opts.recovery.max_retries => {
                            let pause = self.backoff(attempt);
                            self.epoch_time_total += pause;
                            self.recovery.recovery_sim += pause;
                            self.recovery.retries += 1;
                            attempt += 1;
                        }
                        Err(e) => break Some(e),
                    }
                };
                let oom = match claim_err {
                    None => {
                        self.ledger.end_batch();
                        break 'batch (mb, t_sample, t_transfer, t_replace, t_compute);
                    }
                    Some(e) => e,
                };

                // Retries exhausted: walk the ladder one rung and
                // re-run the batch under the degraded setup. Each
                // rung strictly shrinks remaining headroom to
                // consume (cache halvings are finite, micro-batch
                // is capped, fanout reduction fires once), so this
                // loop terminates.
                let step = if self.cache_entries > 0 {
                    let to_entries = self.cache_entries / 2;
                    let old = self.cache.stats();
                    self.stats_carry.lookups += old.lookups;
                    self.stats_carry.hits += old.hits;
                    self.cache = build_cache(self.config.cache_policy, to_entries, graph);
                    self.ledger.set_cache_bytes(to_entries * self.row_bytes)?;
                    let rebuild =
                        self.cost.t_replace(to_entries * self.row_bytes, to_entries.max(1));
                    self.epoch_time_total += rebuild;
                    self.recovery.recovery_sim += rebuild;
                    let step = DegradationStep::ShrinkCache {
                        from_entries: self.cache_entries,
                        to_entries,
                    };
                    self.cache_entries = to_entries;
                    step
                } else if self.micro_batch < MAX_MICRO_BATCH {
                    self.micro_batch *= 2;
                    let pause = SimTime::from_micros(self.platform.device.launch_overhead_us);
                    self.epoch_time_total += pause;
                    self.recovery.recovery_sim += pause;
                    DegradationStep::MicroBatch { factor: self.micro_batch }
                } else if !self.fanout_reduced {
                    self.fanout_reduced = true;
                    for f in self.eff_config.fanouts.iter_mut() {
                        *f = (*f / 2).max(1);
                    }
                    self.sampler = self.eff_config.build_sampler(graph)?;
                    DegradationStep::ReduceFanout { fanouts: self.eff_config.fanouts.clone() }
                } else {
                    return Err(RuntimeError::RetriesExhausted {
                        what: "transient memory claim (degradation ladder exhausted)".into(),
                        attempts: attempt + 1,
                        last_error: oom.to_string(),
                    });
                };
                if journaling {
                    self.journal.instant(
                        metric::EVENT_RECOVERY,
                        metric::TRACK_BACKEND,
                        Some(self.epoch_time_total.as_micros()),
                        vec![
                            ("action".into(), step.label().into()),
                            ("batch".into(), batch_site.into()),
                            ("detail".into(), format!("{step:?}").into()),
                        ],
                    );
                }
                self.recovery.degradations.push(step);
            };

            self.phases.sample += t_sample;
            self.phases.transfer += t_transfer;
            self.phases.replace += t_replace;
            self.phases.compute += t_compute;
            self.epoch_time_total += self.cost.iteration_time(
                t_sample,
                t_transfer,
                t_replace,
                t_compute,
                self.config.pipelined,
            );

            self.total_nodes += mb.num_nodes();
            self.total_edges += mb.num_edges();
            self.total_batches += 1;

            // The actual training step (Algorithm 1 lines 4–8).
            let train_this =
                self.opts.train && self.opts.train_batches_cap.is_none_or(|cap| bi < cap);
            if train_this {
                let train_started = observing.then(Instant::now);
                // Batch preparation: build the subgraph's cached kernel
                // structures (transpose + degree schedule) eagerly so
                // the lazy init doesn't land inside the allocation-
                // metered hot path below. GCN additionally reads the
                // cached degree norms.
                mb.subgraph.agg_schedule();
                if self.config.model == gnnav_nn::ModelKind::Gcn {
                    mb.subgraph.gcn_inv_sqrt();
                }
                // Allocator window around the per-batch hot path:
                // epoch 0 is warm-up (buffers grow to shape), later
                // epochs must stay allocation-free — the delta feeds
                // the gated `alloc.steady_state_allocs_per_epoch`.
                let alloc_t0 = gnnav_obs::alloc::is_tracking().then(gnnav_obs::alloc::stats);
                feats.gather_into(&mb.nodes, &mut self.x_buf);
                let x =
                    Matrix::from_vec(mb.num_nodes(), feats.dim(), std::mem::take(&mut self.x_buf));
                feats.gather_labels_into(&mb.nodes, &mut self.label_buf);
                self.target_locals_buf.clear();
                self.target_locals_buf.extend(0..mb.targets_len as u32);
                let step_site = self.train_steps;
                self.train_steps += 1;
                let mut loss = train::train_step(
                    &mut self.model,
                    &mut self.opt,
                    &mb.subgraph,
                    &x,
                    &self.label_buf,
                    &self.target_locals_buf,
                );
                self.x_buf = x.into_vec();
                if self.inject_fault(FaultKind::NanLoss, step_site, 0).is_some() {
                    loss = f32::NAN;
                }
                if !loss.is_finite() && self.opts.recovery.nan_guard {
                    // NaN guard: drop the poisoned step from the
                    // history and anneal the LR; a bounded number
                    // of halvings separates a recoverable blip
                    // from a divergent run.
                    self.recovery.nan_steps_skipped += 1;
                    if self.recovery.lr_halvings >= self.opts.recovery.max_lr_halvings {
                        return Err(RuntimeError::RetriesExhausted {
                            what: "NaN-loss recovery (learning-rate floor reached)".into(),
                            attempts: self.recovery.nan_steps_skipped,
                            last_error: format!("non-finite loss at training step {step_site}"),
                        });
                    }
                    self.opt.set_lr(self.opt.lr() * 0.5);
                    self.recovery.lr_halvings += 1;
                    if journaling {
                        self.journal.instant(
                            metric::EVENT_RECOVERY,
                            metric::TRACK_BACKEND,
                            Some(self.epoch_time_total.as_micros()),
                            vec![
                                ("action".into(), "nan_guard".into()),
                                ("step".into(), step_site.into()),
                                ("lr".into(), (self.opt.lr() as f64).into()),
                            ],
                        );
                    }
                } else {
                    self.loss_history.push(loss);
                }
                if let Some(t0) = alloc_t0 {
                    let d = gnnav_obs::alloc::stats().delta_since(&t0);
                    if epoch == 0 {
                        self.alloc_warmup_allocs += d.allocs;
                    } else {
                        self.alloc_steady_allocs += d.allocs;
                    }
                }
                if let Some(t0) = train_started {
                    self.wall_train += t0.elapsed();
                }
            }
        }

        // The epoch's observed slice, computed unconditionally (a few
        // subtractions) so the adaptive layer can watch even when the
        // metrics registry is off.
        let epoch_sim_s = self.epoch_time_total.as_secs() - epoch_sim_start.as_secs();
        let stats = self.cache_stats_total();
        let epoch_lookups = stats.lookups - epoch_stats_start.lookups;
        let epoch_hits = stats.hits - epoch_stats_start.hits;
        let epoch_hit_rate =
            if epoch_lookups > 0 { epoch_hits as f64 / epoch_lookups as f64 } else { 0.0 };
        let phase_s = [
            self.phases.sample.as_secs() - epoch_phases_start.sample.as_secs(),
            self.phases.transfer.as_secs() - epoch_phases_start.transfer.as_secs(),
            self.phases.replace.as_secs() - epoch_phases_start.replace.as_secs(),
            self.phases.compute.as_secs() - epoch_phases_start.compute.as_secs(),
        ];

        if observing {
            self.metrics.observe(metric::EPOCH_SIM, epoch_sim_s);
            self.metrics.observe(metric::EPOCH_HIT_RATE, epoch_hit_rate);
            if journaling {
                let wall0 = epoch_wall_us.unwrap_or(0.0);
                let wall_dur = self.journal.now_us() - wall0;
                let sim0 = epoch_sim_start.as_micros();
                let sim_dur = epoch_sim_s * 1e6;
                self.journal.span_complete(
                    metric::EVENT_EPOCH,
                    metric::TRACK_BACKEND,
                    wall0,
                    Some(wall_dur),
                    Some(sim0),
                    Some(sim_dur),
                    vec![
                        ("epoch".into(), epoch.into()),
                        ("batches".into(), (self.total_batches - epoch_batches_start).into()),
                        ("hit_rate".into(), epoch_hit_rate.into()),
                    ],
                );
                // One sim-only span per phase, each on its own
                // track, anchored at the epoch's simulated start:
                // the phases overlap inside the epoch window, so
                // side-by-side tracks read as a per-epoch phase
                // breakdown rather than a serial schedule.
                for (phase_name, sim_delta) in [
                    ("sample", phase_s[0]),
                    ("transfer", phase_s[1]),
                    ("replace", phase_s[2]),
                    ("compute", phase_s[3]),
                ] {
                    self.journal.span_complete(
                        phase_name,
                        format!("{}{}", metric::TRACK_PHASE_PREFIX, phase_name),
                        wall0,
                        None,
                        Some(sim0),
                        Some(sim_delta * 1e6),
                        Vec::new(),
                    );
                }
                // Backoff pauses and ladder work get their own phase
                // track so recovery time is attributed, not residual.
                let recovery_us = self.recovery.recovery_sim.as_micros() - epoch_recovery_us_start;
                if recovery_us > 0.0 {
                    self.journal.span_complete(
                        metric::EVENT_RECOVERY,
                        format!("{}recovery", metric::TRACK_PHASE_PREFIX),
                        wall0,
                        None,
                        Some(sim0),
                        Some(recovery_us),
                        Vec::new(),
                    );
                }
                self.journal.counter(
                    metric::EPOCH_HIT_RATE,
                    metric::TRACK_BACKEND,
                    epoch_hit_rate,
                    Some(sim0 + sim_dur),
                );
            }
        }
        drop(epoch_span);

        self.epochs_run += 1;
        Ok(EpochStats {
            epoch,
            sim_s: epoch_sim_s,
            hit_rate: epoch_hit_rate,
            peak_mem_bytes: self.ledger.peak_bytes(),
            batches: self.total_batches - epoch_batches_start,
            nodes: self.total_nodes - epoch_nodes_start,
            edges: self.total_edges - epoch_edges_start,
            phase_s,
            n_iter: self.n_iter,
        })
    }

    /// Evaluates accuracy, averages the accumulated totals over the
    /// epochs that ran, flushes the metric accumulators, and produces
    /// the final [`ExecutionReport`].
    pub fn finish(mut self) -> Result<ExecutionReport, RuntimeError> {
        let dataset = self.dataset;
        let graph = dataset.graph();
        let feats = dataset.features();
        let accuracy = if self.opts.train {
            let x = Matrix::from_vec(graph.num_nodes(), feats.dim(), feats.matrix().to_vec());
            train::evaluate(&mut self.model, graph, &x, feats.labels(), &dataset.split().test)
        } else {
            0.0
        };

        let epochs_f = self.epochs_run.max(1) as f64;
        let inv_epochs = 1.0 / epochs_f;
        let total_stats = self.cache_stats_total();
        self.recovery.faults_injected = self.injector.as_ref().map_or(0, |inj| inj.injected);
        let perf = Perf {
            epoch_time: self.epoch_time_total * inv_epochs,
            peak_mem_bytes: self.ledger.peak_bytes(),
            accuracy,
            hit_rate: total_stats.hit_rate(),
            avg_batch_nodes: self.total_nodes as f64 / self.total_batches.max(1) as f64,
            avg_batch_edges: self.total_edges as f64 / self.total_batches.max(1) as f64,
            n_iter: self.n_iter,
            phases: PhaseBreakdown {
                sample: self.phases.sample * inv_epochs,
                transfer: self.phases.transfer * inv_epochs,
                replace: self.phases.replace * inv_epochs,
                compute: self.phases.compute * inv_epochs,
            },
        };

        if self.observing {
            let metrics = self.metrics;
            let stats = total_stats;
            metrics.add(metric::BACKEND_RUNS, 1);
            metrics.add(metric::BACKEND_BATCHES, self.total_batches as u64);
            metrics.add(metric::CACHE_HITS, stats.hits as u64);
            metrics.add(metric::CACHE_MISSES, (stats.lookups - stats.hits) as u64);
            metrics.add(metric::CACHE_EVICTIONS, self.evictions as u64);
            // Recovery counters are added even when zero so the
            // perf-gate baselines pin them at zero on the clean path.
            metrics.add(metric::FAULTS_INJECTED, 0);
            metrics.add(metric::BACKEND_RETRIES, self.recovery.retries as u64);
            metrics.add(metric::BACKEND_DEGRADATIONS, self.recovery.degradations.len() as u64);
            metrics.add(metric::BACKEND_NAN_SKIPS, self.recovery.nan_steps_skipped as u64);
            metrics.gauge_set(metric::PHASE_SAMPLE, perf.phases.sample.as_secs());
            metrics.gauge_set(metric::PHASE_TRANSFER, perf.phases.transfer.as_secs());
            metrics.gauge_set(metric::PHASE_REPLACE, perf.phases.replace.as_secs());
            metrics.gauge_set(metric::PHASE_COMPUTE, perf.phases.compute.as_secs());
            metrics.gauge_set(metric::EPOCH_TIME, perf.epoch_time.as_secs());
            metrics.gauge_set(metric::PEAK_MEM_BYTES, perf.peak_mem_bytes as f64);
            metrics.gauge_set(metric::WALL_SAMPLE, self.wall_sample.as_secs_f64());
            metrics.gauge_set(metric::WALL_TRAIN, self.wall_train.as_secs_f64());
            if let Some(&last) = self.loss_history.last() {
                let mean = self.loss_history.iter().sum::<f32>() / self.loss_history.len() as f32;
                metrics.gauge_set(metric::LOSS_LAST, last as f64);
                metrics.gauge_set(metric::LOSS_MEAN, mean as f64);
            }
            // Kernel-level counters: deltas of the process-global nn /
            // gnnav-par stats across this execution (concurrent
            // executions may interleave into each other's deltas; the
            // perf baselines run serially, where the deltas are exact).
            let kernel_stats = gnnav_nn::kernel_stats();
            let par_stats = gnnav_par::stats();
            let matmul_calls = kernel_stats.matmul_calls - self.kernel_stats_start.matmul_calls;
            let matmul_flops = kernel_stats.matmul_flops - self.kernel_stats_start.matmul_flops;
            let par_tasks = par_stats.tasks - self.par_stats_start.tasks;
            let par_regions = par_stats.regions - self.par_stats_start.regions;
            metrics.add(metric::NN_MATMUL_CALLS, matmul_calls);
            metrics.add(metric::NN_MATMUL_FLOPS, matmul_flops);
            metrics.add(metric::NN_KERNEL_PAR_TASKS, par_tasks);
            metrics.add(metric::NN_KERNEL_PAR_REGIONS, par_regions);
            metrics.gauge_set(metric::PAR_POOL_THREADS, gnnav_par::effective_threads() as f64);
            let train_wall = self.wall_train.as_secs_f64();
            if train_wall > 0.0 {
                metrics.gauge_set(metric::NN_MATMUL_GFLOPS, matmul_flops as f64 / train_wall / 1e9);
            }
            if self.journaling {
                self.journal.instant(
                    metric::EVENT_KERNELS,
                    metric::TRACK_BACKEND,
                    Some(self.epoch_time_total.as_micros()),
                    vec![
                        ("matmul_calls".into(), matmul_calls.into()),
                        ("matmul_flops".into(), matmul_flops.into()),
                        ("par_tasks".into(), par_tasks.into()),
                        ("par_regions".into(), par_regions.into()),
                    ],
                );
            }
            if gnnav_obs::alloc::is_tracking() {
                let d = gnnav_obs::alloc::stats().delta_since(&self.alloc_run_start);
                metrics.gauge_set(metric::ALLOC_ALLOCS, d.allocs as f64);
                metrics.gauge_set(metric::ALLOC_FREES, d.frees as f64);
                metrics.gauge_set(metric::ALLOC_BYTES, d.alloc_bytes as f64);
                metrics.gauge_set(metric::ALLOC_PEAK_BYTES, d.peak_bytes as f64);
                // Ceiling division so even a single steady-state
                // allocation trips the zero-pinned perf gate.
                let steady_epochs = self.epochs_run.saturating_sub(1).max(1) as u64;
                metrics.add(
                    metric::ALLOC_STEADY_PER_EPOCH,
                    self.alloc_steady_allocs.div_ceil(steady_epochs),
                );
                if self.journaling {
                    self.journal.instant(
                        metric::EVENT_ALLOC,
                        metric::TRACK_BACKEND,
                        Some(self.epoch_time_total.as_micros()),
                        vec![
                            ("allocs".into(), d.allocs.into()),
                            ("frees".into(), d.frees.into()),
                            ("alloc_bytes".into(), d.alloc_bytes.into()),
                            ("peak_bytes".into(), d.peak_bytes.into()),
                            ("warmup_allocs".into(), self.alloc_warmup_allocs.into()),
                            ("steady_allocs".into(), self.alloc_steady_allocs.into()),
                        ],
                    );
                }
            }
        }
        Ok(ExecutionReport {
            perf,
            loss_history: self.loss_history,
            config: self.config,
            recovery: self.recovery,
        })
    }
}
